#![forbid(unsafe_code)]
//! Offline vendored shim for the `parking_lot` crate.
//!
//! The Ingot build image has no network access and no cargo registry cache, so
//! the handful of external crates the workspace depends on are vendored as
//! minimal local shims (see DESIGN.md §10.4 on the offline image). This one
//! provides the subset of `parking_lot` that Ingot actually uses — `Mutex`,
//! `RwLock`, `Condvar` with `wait_for`, and their guard types — implemented
//! over `std::sync`.
//!
//! Semantic differences from the real crate that matter here:
//!
//! * **No poisoning.** `parking_lot` locks are not poisoned by panicking
//!   holders; this shim matches that by unwrapping `PoisonError` into the
//!   inner guard, so a panicked test thread does not cascade.
//! * **Guards are plain wrappers.** `MutexGuard` wraps an
//!   `Option<std::sync::MutexGuard>` so `Condvar::wait_for` can take the std
//!   guard out and put the re-acquired one back, preserving the
//!   `&mut MutexGuard` calling convention of the real API.
//!
//! Fairness and performance characteristics of the real crate are *not*
//! reproduced; correctness-wise this is a strict std mutex, which is all the
//! engine's lock-order and liveness invariants assume.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive (std-backed, non-poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait_for can move the std guard out and back.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex in an unlocked state.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_deref()
            .unwrap_or_else(|| unreachable!("guard taken"))
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_deref_mut()
            .unwrap_or_else(|| unreachable!("guard taken"))
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable (std-backed).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().unwrap_or_else(|| unreachable!());
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(reacquired);
    }

    /// Block until notified or `timeout` elapses, releasing `guard` while
    /// waiting. Returns whether the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().unwrap_or_else(|| unreachable!());
        let (reacquired, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.guard = Some(reacquired);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// A reader-writer lock (std-backed, non-poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock in an unlocked state.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic_lock_unlock() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
        drop(g);
        let _relocked = m.lock();
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                let res = cv.wait_for(&mut g, Duration::from_secs(5));
                assert!(!res.timed_out(), "waiter should be woken, not time out");
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn poisoned_mutex_is_recovered() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
