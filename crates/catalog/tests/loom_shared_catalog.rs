#![cfg(loom)]
//! Model tests for [`SharedCatalog`] publish/read under perturbed schedules.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p ingot-catalog --test
//! loom_shared_catalog`. Each body executes under `loom::model`, which
//! re-runs it across many seeded interleavings (see the loom-shim crate).

use ingot_catalog::{Catalog, SharedCatalog};
use ingot_common::{Column, DataType, EngineConfig, Schema, SimClock};
use ingot_storage::StorageEngine;
use loom::sync::Arc;
use loom::thread;

fn shared() -> SharedCatalog {
    let cfg = EngineConfig::default();
    let storage = StorageEngine::in_memory(&cfg, SimClock::new());
    SharedCatalog::new(Catalog::new(Arc::clone(storage.pool()), 2))
}

fn schema() -> Schema {
    Schema::new(vec![
        Column::not_null("id", DataType::Int),
        Column::new("v", DataType::Int),
    ])
}

/// Two concurrent DDL writers must both land (the DDL mutex serialises
/// clone-modify-publish; without it one create would be lost), and every
/// reader snapshot must be coherent with a monotonically growing schema.
#[test]
fn concurrent_ddl_never_loses_updates_and_readers_stay_coherent() {
    loom::model(|| {
        let sc = Arc::new(shared());
        let writers: Vec<_> = (0..2)
            .map(|w| {
                let sc = Arc::clone(&sc);
                thread::spawn(move || {
                    sc.write()
                        .create_table(&format!("t{w}"), schema(), vec![0])
                        .unwrap();
                })
            })
            .collect();
        let reader = {
            let sc = Arc::clone(&sc);
            thread::spawn(move || {
                let mut last = 0;
                for _ in 0..8 {
                    let snap = sc.read();
                    let n = snap.tables().count();
                    assert!(n >= last, "snapshot regressed from {last} to {n} tables");
                    assert!(n <= 2, "phantom table in snapshot");
                    last = n;
                    thread::yield_now();
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(
            sc.read().tables().count(),
            2,
            "a DDL update was lost in publish"
        );
    });
}

/// A snapshot taken before a drop keeps resolving the dropped table; the
/// published catalog stops resolving it — under every interleaving.
#[test]
fn snapshot_isolation_across_drop() {
    loom::model(|| {
        let sc = Arc::new(shared());
        sc.write().create_table("t", schema(), vec![0]).unwrap();
        let snap = sc.read();
        let dropper = {
            let sc = Arc::clone(&sc);
            thread::spawn(move || {
                sc.write().drop_table("t").unwrap();
            })
        };
        // The held snapshot is immutable regardless of when the drop lands.
        assert!(snap.resolve_table("t").is_ok());
        dropper.join().unwrap();
        assert!(snap.resolve_table("t").is_ok());
        assert!(sc.read().resolve_table("t").is_err());
    });
}
