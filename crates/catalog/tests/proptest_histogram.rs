//! Property-based tests of histogram invariants — the selectivity numbers
//! the whole cost model rests on.

use ingot_catalog::Histogram;
use ingot_common::Value;
use proptest::prelude::*;

fn arb_ints() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-10_000i64..10_000, 1..800)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn selectivities_are_probabilities(values in arb_ints(), probe in -12_000i64..12_000) {
        let vals: Vec<Value> = values.iter().copied().map(Value::Int).collect();
        let h = Histogram::build(&vals, 16);
        let p = Value::Int(probe);
        for s in [
            h.selectivity_eq(&p),
            h.selectivity_le(&p),
            h.selectivity_lt(&p),
        ] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "selectivity {s}");
        }
    }

    #[test]
    fn le_is_monotone(values in arb_ints(), a in -12_000i64..12_000, b in -12_000i64..12_000) {
        let vals: Vec<Value> = values.iter().copied().map(Value::Int).collect();
        let h = Histogram::build(&vals, 16);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            h.selectivity_le(&Value::Int(lo)) <= h.selectivity_le(&Value::Int(hi)) + 1e-9
        );
    }

    #[test]
    fn eq_estimate_tracks_truth_for_point_probes(values in arb_ints(), idx in any::<prop::sample::Index>()) {
        // Probe a value that definitely exists; the estimate must be within
        // a generous factor of the true frequency (equi-depth guarantee).
        let probe = values[idx.index(values.len())];
        let vals: Vec<Value> = values.iter().copied().map(Value::Int).collect();
        let h = Histogram::build(&vals, 32);
        let truth = values.iter().filter(|&&v| v == probe).count() as f64 / values.len() as f64;
        let est = h.selectivity_eq(&Value::Int(probe));
        prop_assert!(est > 0.0, "existing value must have non-zero selectivity");
        // Within one bucket of slack either way.
        let slack = 1.0 / 16.0 + truth;
        prop_assert!(est <= truth + slack, "est {est} truth {truth}");
    }

    #[test]
    fn between_covers_full_range(values in arb_ints()) {
        let vals: Vec<Value> = values.iter().copied().map(Value::Int).collect();
        let h = Histogram::build(&vals, 16);
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        let s = h.selectivity_between(&Value::Int(min), &Value::Int(max));
        prop_assert!(s > 0.9, "full range must cover ~everything, got {s}");
    }

    #[test]
    fn ndv_is_exact(values in arb_ints()) {
        let vals: Vec<Value> = values.iter().copied().map(Value::Int).collect();
        let h = Histogram::build(&vals, 16);
        let truth: std::collections::HashSet<i64> = values.iter().copied().collect();
        prop_assert_eq!(h.distinct_count(), truth.len() as u64);
        prop_assert_eq!(h.row_count(), values.len() as u64);
    }

    #[test]
    fn string_histograms_behave(ids in prop::collection::vec(0u64..100_000, 1..500)) {
        // NREF-style shared-prefix ids: the collapse detection must keep eq
        // selectivity near uniform.
        let vals: Vec<Value> = ids.iter().map(|i| Value::Str(format!("NF{i:08}"))).collect();
        let h = Histogram::build(&vals, 32);
        let truth: std::collections::HashSet<&u64> = ids.iter().collect();
        prop_assert_eq!(h.distinct_count(), truth.len() as u64);
        let s = h.selectivity_eq(&Value::Str(format!("NF{:08}", ids[0])));
        prop_assert!(s > 0.0 && s <= 1.0);
        // Roughly uniform: within 10x of 1/ndv scaled by duplicates.
        let uniform = 1.0 / truth.len() as f64;
        prop_assert!(s <= uniform * 20.0, "s {s} vs uniform {uniform}");
    }

    #[test]
    fn nulls_never_match(values in arb_ints(), null_count in 0usize..100) {
        let mut vals: Vec<Value> = values.iter().copied().map(Value::Int).collect();
        vals.extend(std::iter::repeat_n(Value::Null, null_count));
        let h = Histogram::build(&vals, 16);
        prop_assert_eq!(h.selectivity_eq(&Value::Null), 0.0);
        prop_assert_eq!(h.null_count(), null_count as u64);
        // col <= max misses exactly the NULLs.
        let max = *values.iter().max().unwrap();
        let expected = values.len() as f64 / (values.len() + null_count) as f64;
        let got = h.selectivity_le(&Value::Int(max));
        prop_assert!((got - expected).abs() < 0.02, "got {got} expected {expected}");
    }
}
