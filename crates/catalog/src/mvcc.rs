//! MVCC row mutation: version-chain maintenance across the heap, the
//! clustered primary tree and every secondary index.
//!
//! The protocol (PR 8) replaces the old single-writer-per-table discipline:
//!
//! * every DML statement appends **new versions** instead of rewriting rows
//!   in place, stamped either with a transaction marker ([`WriteAs::Txn`])
//!   or a final commit timestamp ([`WriteAs::Committed`]);
//! * each mutation returns a [`VersionChange`] the engine keeps per
//!   transaction — commit stamps the markers with the real commit
//!   timestamp, abort applies the changes in reverse to erase them;
//! * secondary indexes hold **one entry per version** (the stored key embeds
//!   the version's row id), so probes land on exact physical versions and
//!   only need a visibility filter — no chain walks on index paths;
//! * the clustered primary tree keeps a **single entry per key** pointing at
//!   the chain head; old snapshots walk `prev` pointers backwards from it
//!   (see [`crate::table::TableEntry::fetch_visible`]).
//!
//! Callers serialise writers per *row* (the engine's lock manager hands out
//! row-exclusive locks keyed on the chain root); the constraint checks here
//! are check-then-act under that discipline, exactly as the table-level
//! variants were under the old table-exclusive one.

use ingot_common::mvcc::{is_txn_mark, mark_owner, txn_mark, TS_INF};
use ingot_common::{Error, Result, Row, TableId, TxnId, Value};
use ingot_storage::{RowId, VersionMeta};

use crate::catalog::Catalog;
use crate::table::{IndexEntry, TableEntry};

/// How a version write is stamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteAs {
    /// Already durable at this timestamp: bulk loads write `0` ("committed
    /// before tracked history"), WAL replay writes the logged commit
    /// timestamp so recovered chains agree with pre-crash snapshots.
    Committed(u64),
    /// An open transaction: versions carry the owner's marker until the
    /// commit protocol stamps the real timestamp.
    Txn(TxnId),
}

impl WriteAs {
    /// The raw stamp written into begin/end header fields.
    fn stamp(self) -> u64 {
        match self {
            WriteAs::Committed(ts) => ts,
            WriteAs::Txn(t) => txn_mark(t),
        }
    }

    /// The owning transaction, when uncommitted.
    fn owner(self) -> Option<TxnId> {
        match self {
            WriteAs::Committed(_) => None,
            WriteAs::Txn(t) => Some(t),
        }
    }
}

/// One physical consequence of a versioned DML statement.
///
/// The engine accumulates these per transaction: `apply_version_commit`
/// stamps the markers with the commit timestamp (in list order),
/// `apply_version_undo` erases the transaction's versions (in reverse
/// order). The same list doubles as the write set for first-committer-wins
/// validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VersionChange {
    /// A fresh chain was started.
    Insert {
        /// The mutated table.
        table: TableId,
        /// The new version (chain root).
        new: RowId,
        /// Previous clustered-tree value displaced by this key, present when
        /// the insert reused the primary key of a committed-dead chain. Undo
        /// restores it; old snapshots probing the key meanwhile resolve to
        /// the new chain and miss the dead one — a documented limitation
        /// until GC reclaims the dead chain.
        displaced: Option<Vec<u8>>,
    },
    /// A chain head was superseded by a new version.
    Update {
        /// The mutated table.
        table: TableId,
        /// The superseded version (previous head).
        old: RowId,
        /// The new head.
        new: RowId,
    },
    /// A chain head was delete-marked.
    Delete {
        /// The mutated table.
        table: TableId,
        /// The marked version.
        old: RowId,
    },
}

impl VersionChange {
    /// The table this change mutated.
    pub fn table(&self) -> TableId {
        match self {
            VersionChange::Insert { table, .. }
            | VersionChange::Update { table, .. }
            | VersionChange::Delete { table, .. } => *table,
        }
    }
}

/// Does a version with this `end` stamp block a duplicate-key writer?
///
/// Live versions (`end == INF`, which includes other transactions'
/// uncommitted inserts) always do. Delete-marked versions block unless the
/// mark is the writer's own (it deleted the row itself) — another
/// transaction's delete may still abort, so pessimistically it counts.
/// Committed-dead versions never block.
fn blocks_duplicate(end: u64, writer: Option<TxnId>) -> bool {
    if end == TS_INF {
        return true;
    }
    if is_txn_mark(end) {
        return writer != Some(mark_owner(end));
    }
    false
}

fn col_values(row: &Row, columns: &[usize]) -> Vec<Value> {
    columns.iter().map(|&c| row.get(c).clone()).collect()
}

fn decode_rid(v: &[u8]) -> RowId {
    RowId::unpack(u64::from_le_bytes(v.try_into().expect("packed row id")))
}

impl Catalog {
    /// Insert a row as a new single-version chain, maintaining the clustered
    /// tree and all secondary indexes.
    pub fn insert_row_v(&self, table: TableId, row: &Row, write: WriteAs) -> Result<VersionChange> {
        let entry = self.table(table)?;
        let row = entry.meta.schema.check_row(row)?;
        for idx in self.indexes_of(table) {
            if idx.meta.unique && !idx.meta.is_virtual {
                let vals = col_values(&row, &idx.meta.columns);
                self.check_unique(entry, idx, &vals, None, write.owner())?;
            }
        }
        let pk_key = match &entry.primary {
            Some(primary) => {
                let key = ingot_storage::encode_key(&entry.pk_values(&row));
                if let Some(v) = primary.get(&key)? {
                    let head = entry.heap.meta(decode_rid(&v))?;
                    if blocks_duplicate(head.end, write.owner()) {
                        return Err(Error::constraint(format!(
                            "duplicate primary key in '{}'",
                            entry.meta.name
                        )));
                    }
                }
                Some(key)
            }
            None => None,
        };
        let rid = entry
            .heap
            .insert_version(&row, VersionMeta::base(write.stamp()))?;
        let mut displaced = None;
        if let (Some(primary), Some(key)) = (&entry.primary, &pk_key) {
            displaced = primary.insert(key, &rid.pack().to_le_bytes())?;
        }
        self.index_insert_all(table, &row, rid)?;
        entry.heap.adjust_rows(1);
        Ok(VersionChange::Insert {
            table,
            new: rid,
            displaced,
        })
    }

    /// Supersede the chain head at `head` with a new version holding
    /// `new_row`. A primary-key change splits into delete-mark + fresh
    /// insert (a chain is keyed by its row identity). Returns the changes
    /// in application order.
    pub fn update_row_v(
        &self,
        table: TableId,
        head: RowId,
        new_row: &Row,
        write: WriteAs,
    ) -> Result<Vec<VersionChange>> {
        let entry = self.table(table)?;
        let new_row = entry.meta.schema.check_row(new_row)?;
        let (mut old_meta, old_row) = entry.heap.get_version(head)?;
        if old_meta.end != TS_INF {
            return Err(Error::write_conflict(format!(
                "row in '{}' was superseded by a concurrent writer",
                entry.meta.name
            )));
        }
        let new_pk = entry.pk_values(&new_row);
        if entry.primary.is_some() && entry.pk_values(&old_row) != new_pk {
            let del = self.delete_row_v(table, head, write)?;
            let ins = self.insert_row_v(table, &new_row, write)?;
            return Ok(vec![del, ins]);
        }
        let root = old_meta.root_for(head);
        for idx in self.indexes_of(table) {
            if idx.meta.unique && !idx.meta.is_virtual {
                let vals = col_values(&new_row, &idx.meta.columns);
                self.check_unique(entry, idx, &vals, Some(root), write.owner())?;
            }
        }
        let stamp = write.stamp();
        let new_rid = entry.heap.insert_version(
            &new_row,
            VersionMeta {
                begin: stamp,
                end: TS_INF,
                prev: head.pack(),
                next: TS_INF,
                root,
            },
        )?;
        old_meta.end = stamp;
        old_meta.next = new_rid.pack();
        entry.heap.set_meta(head, old_meta)?;
        if let Some(primary) = &entry.primary {
            primary.insert(
                &ingot_storage::encode_key(&new_pk),
                &new_rid.pack().to_le_bytes(),
            )?;
        }
        self.index_insert_all(table, &new_row, new_rid)?;
        Ok(vec![VersionChange::Update {
            table,
            old: head,
            new: new_rid,
        }])
    }

    /// Delete-mark the chain head at `head`. The version (and its index
    /// entries) stay in place for older snapshots; GC reclaims them once no
    /// snapshot can see them.
    pub fn delete_row_v(
        &self,
        table: TableId,
        head: RowId,
        write: WriteAs,
    ) -> Result<VersionChange> {
        let entry = self.table(table)?;
        let mut meta = entry.heap.meta(head)?;
        if meta.end != TS_INF {
            return Err(Error::write_conflict(format!(
                "row in '{}' was superseded by a concurrent writer",
                entry.meta.name
            )));
        }
        meta.end = write.stamp();
        entry.heap.set_meta(head, meta)?;
        entry.heap.adjust_rows(-1);
        Ok(VersionChange::Delete { table, old: head })
    }

    /// Replace this change's transaction markers with the final commit
    /// timestamp. Intermediate versions a transaction superseded itself end
    /// up with `begin == end == cts` — zero-length lifetimes invisible to
    /// every snapshot, exactly as intended.
    pub fn apply_version_commit(&self, change: &VersionChange, cts: u64) -> Result<()> {
        match change {
            VersionChange::Insert { table, new, .. } => {
                self.stamp_begin(*table, *new, cts)?;
            }
            VersionChange::Update { table, old, new } => {
                self.stamp_end(*table, *old, cts)?;
                self.stamp_begin(*table, *new, cts)?;
            }
            VersionChange::Delete { table, old } => {
                self.stamp_end(*table, *old, cts)?;
            }
        }
        Ok(())
    }

    /// Physically erase this change (abort path). Changes must be undone in
    /// reverse application order so chain links and displaced clustered-tree
    /// entries restore correctly.
    pub fn apply_version_undo(&self, change: &VersionChange) -> Result<()> {
        match change {
            VersionChange::Insert {
                table,
                new,
                displaced,
            } => {
                let entry = self.table(*table)?;
                let (_, row) = entry.heap.get_version(*new)?;
                self.index_remove_all(*table, &row, *new)?;
                if let Some(primary) = &entry.primary {
                    let key = ingot_storage::encode_key(&entry.pk_values(&row));
                    match displaced {
                        Some(old_val) => {
                            primary.insert(&key, old_val)?;
                        }
                        None => {
                            primary.delete(&key)?;
                        }
                    }
                }
                entry.heap.remove_version(*new)?;
                entry.heap.adjust_rows(-1);
            }
            VersionChange::Update { table, old, new } => {
                let entry = self.table(*table)?;
                let (_, new_row) = entry.heap.get_version(*new)?;
                self.index_remove_all(*table, &new_row, *new)?;
                if let Some(primary) = &entry.primary {
                    let key = ingot_storage::encode_key(&entry.pk_values(&new_row));
                    primary.insert(&key, &old.pack().to_le_bytes())?;
                }
                let mut meta = entry.heap.meta(*old)?;
                meta.end = TS_INF;
                meta.next = TS_INF;
                entry.heap.set_meta(*old, meta)?;
                entry.heap.remove_version(*new)?;
            }
            VersionChange::Delete { table, old } => {
                let entry = self.table(*table)?;
                let mut meta = entry.heap.meta(*old)?;
                meta.end = TS_INF;
                entry.heap.set_meta(*old, meta)?;
                entry.heap.adjust_rows(1);
            }
        }
        Ok(())
    }

    /// Reclaim every version of `table` that died below `watermark` (the
    /// oldest snapshot any session might still read at): unlink it from its
    /// chain, drop its index entries and clustered entry (when the entry
    /// still points at it) and free the heap record. Returns the number of
    /// versions removed. Callers must quiesce the table first — this is
    /// physical surgery with no visibility left to protect it.
    pub fn gc_table(&self, table: TableId, watermark: u64) -> Result<u64> {
        let entry = self.table(table)?;
        let mut dead = Vec::new();
        for item in entry.heap.scan_versions() {
            let (rid, meta, row) = item?;
            if meta.dead_below(watermark) {
                dead.push((rid, meta, row));
            }
        }
        for (rid, meta, row) in &dead {
            if meta.prev != TS_INF {
                let prid = RowId::unpack(meta.prev);
                if let Ok(mut pm) = entry.heap.meta(prid) {
                    if pm.next == rid.pack() {
                        pm.next = meta.next;
                        entry.heap.set_meta(prid, pm)?;
                    }
                }
            }
            if meta.next != TS_INF {
                let nrid = RowId::unpack(meta.next);
                if let Ok(mut nm) = entry.heap.meta(nrid) {
                    if nm.prev == rid.pack() {
                        nm.prev = meta.prev;
                        entry.heap.set_meta(nrid, nm)?;
                    }
                }
            }
            self.index_remove_all(table, row, *rid)?;
            if let Some(primary) = &entry.primary {
                let key = ingot_storage::encode_key(&entry.pk_values(row));
                if primary.get(&key)?.as_deref() == Some(rid.pack().to_le_bytes().as_slice()) {
                    primary.delete(&key)?;
                }
            }
            entry.heap.remove_version(*rid)?;
        }
        Ok(dead.len() as u64)
    }

    /// The version-chain shape of `table`: `(versions, chains, longest)` —
    /// total physical versions in the heap, distinct chains, and the length
    /// of the longest chain. Feeds `ima$transactions`; a growing
    /// versions/chains ratio means GC is falling behind the write rate.
    pub fn chain_stats(&self, table: TableId) -> Result<(u64, u64, u64)> {
        let entry = self.table(table)?;
        let mut versions = 0u64;
        let mut lens: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for item in entry.heap.scan_versions() {
            let (rid, meta, _) = item?;
            versions += 1;
            *lens.entry(meta.root_for(rid)).or_insert(0) += 1;
        }
        let longest = lens.values().copied().max().unwrap_or(0);
        Ok((versions, lens.len() as u64, longest))
    }

    fn stamp_begin(&self, table: TableId, rid: RowId, cts: u64) -> Result<()> {
        let entry = self.table(table)?;
        let mut meta = entry.heap.meta(rid)?;
        if is_txn_mark(meta.begin) {
            meta.begin = cts;
            entry.heap.set_meta(rid, meta)?;
        }
        Ok(())
    }

    fn stamp_end(&self, table: TableId, rid: RowId, cts: u64) -> Result<()> {
        let entry = self.table(table)?;
        let mut meta = entry.heap.meta(rid)?;
        if is_txn_mark(meta.end) {
            meta.end = cts;
            entry.heap.set_meta(rid, meta)?;
        }
        Ok(())
    }

    fn check_unique(
        &self,
        entry: &TableEntry,
        idx: &IndexEntry,
        vals: &[Value],
        own_root: Option<u64>,
        writer: Option<TxnId>,
    ) -> Result<()> {
        for rid in idx.probe_eq(vals)? {
            let meta = entry.heap.meta(rid)?;
            if own_root.is_some_and(|r| meta.root_for(rid) == r) {
                continue;
            }
            if blocks_duplicate(meta.end, writer) {
                return Err(Error::constraint(format!(
                    "duplicate key in unique index '{}'",
                    idx.meta.name
                )));
            }
        }
        Ok(())
    }

    fn index_insert_all(&self, table: TableId, row: &Row, rid: RowId) -> Result<()> {
        for idx in self.indexes_of(table) {
            if idx.meta.is_virtual {
                continue;
            }
            let vals = col_values(row, &idx.meta.columns);
            let key = IndexEntry::stored_key(&vals, rid);
            idx.tree
                .as_ref()
                .expect("materialised index")
                .insert(&key, &rid.pack().to_le_bytes())?;
        }
        Ok(())
    }

    fn index_remove_all(&self, table: TableId, row: &Row, rid: RowId) -> Result<()> {
        for idx in self.indexes_of(table) {
            if idx.meta.is_virtual {
                continue;
            }
            let vals = col_values(row, &idx.meta.columns);
            idx.tree
                .as_ref()
                .expect("materialised index")
                .delete(&IndexEntry::stored_key(&vals, rid))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::table::StorageStructure;
    use ingot_common::{Column, DataType, EngineConfig, Schema, SimClock, Snapshot};
    use ingot_storage::StorageEngine;
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let cfg = EngineConfig::default();
        let storage = StorageEngine::in_memory(&cfg, SimClock::new());
        Catalog::new(Arc::clone(storage.pool()), 2)
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("v", DataType::Int),
        ])
    }

    fn row(id: i64, v: i64) -> Row {
        Row::new(vec![Value::Int(id), Value::Int(v)])
    }

    fn snap_at(ts: u64) -> Snapshot {
        Snapshot { ts, txn: TxnId(0) }
    }

    /// BTree-structured table with one committed row per id in 0..n.
    fn btree_table(c: &mut Catalog, n: i64) -> TableId {
        let t = c.create_table("t", schema(), vec![0]).unwrap();
        for i in 0..n {
            c.insert_row_v(t, &row(i, i * 10), WriteAs::Committed(0))
                .unwrap();
        }
        c.modify_storage(t, StorageStructure::BTree).unwrap();
        t
    }

    #[test]
    fn txn_update_is_invisible_until_stamped() {
        let mut c = catalog();
        let t = btree_table(&mut c, 3);
        let entry = c.table(t).unwrap();
        let head = entry.pk_lookup(&[Value::Int(1)]).unwrap().unwrap();
        let txn = TxnId(9);
        let changes = c
            .update_row_v(t, head, &row(1, 777), WriteAs::Txn(txn))
            .unwrap();
        assert_eq!(changes.len(), 1);

        // Another session's snapshot still sees the old version.
        let entry = c.table(t).unwrap();
        let new_head = entry.pk_lookup(&[Value::Int(1)]).unwrap().unwrap();
        let (_, seen) = entry.fetch_visible(new_head, &snap_at(5)).unwrap().unwrap();
        assert_eq!(seen, row(1, 10));
        // The owner sees its own uncommitted write.
        let own = Snapshot { ts: 5, txn };
        let (_, mine) = entry.fetch_visible(new_head, &own).unwrap().unwrap();
        assert_eq!(mine, row(1, 777));

        // Stamp at cts 7: snapshots at >= 7 see it, snapshots below don't.
        c.apply_version_commit(&changes[0], 7).unwrap();
        let entry = c.table(t).unwrap();
        let (_, after) = entry.fetch_visible(new_head, &snap_at(7)).unwrap().unwrap();
        assert_eq!(after, row(1, 777));
        let (_, before) = entry.fetch_visible(new_head, &snap_at(6)).unwrap().unwrap();
        assert_eq!(before, row(1, 10));
    }

    #[test]
    fn undo_erases_insert_update_and_delete() {
        let mut c = catalog();
        let t = btree_table(&mut c, 2);
        let txn = TxnId(4);
        let entry = c.table(t).unwrap();
        let versions_before = entry.heap.version_count();
        let rows_before = entry.heap.row_count();

        let head = entry.pk_lookup(&[Value::Int(0)]).unwrap().unwrap();
        let mut changes = Vec::new();
        changes.extend(
            c.update_row_v(t, head, &row(0, 1), WriteAs::Txn(txn))
                .unwrap(),
        );
        let head1 = c
            .table(t)
            .unwrap()
            .pk_lookup(&[Value::Int(1)])
            .unwrap()
            .unwrap();
        changes.push(c.delete_row_v(t, head1, WriteAs::Txn(txn)).unwrap());
        changes.push(c.insert_row_v(t, &row(5, 50), WriteAs::Txn(txn)).unwrap());

        for change in changes.iter().rev() {
            c.apply_version_undo(change).unwrap();
        }
        let entry = c.table(t).unwrap();
        assert_eq!(entry.heap.version_count(), versions_before);
        assert_eq!(entry.heap.row_count(), rows_before);
        let head = entry.pk_lookup(&[Value::Int(0)]).unwrap().unwrap();
        let (_, r) = entry
            .fetch_visible(head, &Snapshot::latest())
            .unwrap()
            .unwrap();
        assert_eq!(r, row(0, 0));
        assert!(entry.pk_lookup(&[Value::Int(5)]).unwrap().is_none());
    }

    #[test]
    fn duplicate_pk_blocked_while_chain_live_allowed_after_committed_delete() {
        let mut c = catalog();
        let t = btree_table(&mut c, 1);
        // Live chain blocks a duplicate insert.
        let err = c
            .insert_row_v(t, &row(0, 9), WriteAs::Committed(3))
            .unwrap_err();
        assert!(matches!(err, Error::Constraint(_)));
        // Delete commits at 3; the key is reusable afterwards.
        let head = c
            .table(t)
            .unwrap()
            .pk_lookup(&[Value::Int(0)])
            .unwrap()
            .unwrap();
        c.delete_row_v(t, head, WriteAs::Committed(3)).unwrap();
        let change = c
            .insert_row_v(t, &row(0, 9), WriteAs::Committed(4))
            .unwrap();
        assert!(matches!(
            change,
            VersionChange::Insert {
                displaced: Some(_),
                ..
            }
        ));
        let entry = c.table(t).unwrap();
        let head = entry.pk_lookup(&[Value::Int(0)]).unwrap().unwrap();
        let (_, r) = entry.fetch_visible(head, &snap_at(4)).unwrap().unwrap();
        assert_eq!(r, row(0, 9));
    }

    #[test]
    fn gc_reclaims_versions_below_watermark_only() {
        let mut c = catalog();
        let t = btree_table(&mut c, 2);
        let head = c
            .table(t)
            .unwrap()
            .pk_lookup(&[Value::Int(0)])
            .unwrap()
            .unwrap();
        // Three committed supersessions at ts 1, 2, 3.
        let mut h = head;
        for (i, ts) in [(1i64, 1u64), (2, 2), (3, 3)] {
            let changes = c
                .update_row_v(t, h, &row(0, i), WriteAs::Committed(ts))
                .unwrap();
            let VersionChange::Update { new, .. } = changes[0] else {
                panic!("expected update");
            };
            h = new;
        }
        let entry = c.table(t).unwrap();
        assert_eq!(entry.heap.version_count(), 5);

        // Watermark 2: versions that died at ts 1 and 2 go; the one that
        // died at 3 stays (a snapshot at 2 still reads it).
        let removed = c.gc_table(t, 2).unwrap();
        assert_eq!(removed, 2);
        let entry = c.table(t).unwrap();
        assert_eq!(entry.heap.version_count(), 3);
        let (_, r) = entry.fetch_visible(h, &snap_at(2)).unwrap().unwrap();
        assert_eq!(r, row(0, 2));
        let (_, latest) = entry
            .fetch_visible(h, &Snapshot::latest())
            .unwrap()
            .unwrap();
        assert_eq!(latest, row(0, 3));

        // Delete the row at 5 and GC past it: the whole chain disappears,
        // clustered entry included.
        c.delete_row_v(t, h, WriteAs::Committed(5)).unwrap();
        c.gc_table(t, 10).unwrap();
        let entry = c.table(t).unwrap();
        assert!(entry.pk_lookup(&[Value::Int(0)]).unwrap().is_none());
        assert_eq!(entry.heap.row_count(), 1); // row id 1 untouched
    }

    #[test]
    fn pk_change_splits_into_delete_and_insert() {
        let mut c = catalog();
        let t = btree_table(&mut c, 2);
        let head = c
            .table(t)
            .unwrap()
            .pk_lookup(&[Value::Int(0)])
            .unwrap()
            .unwrap();
        let changes = c
            .update_row_v(t, head, &row(7, 70), WriteAs::Committed(2))
            .unwrap();
        assert_eq!(changes.len(), 2);
        assert!(matches!(changes[0], VersionChange::Delete { .. }));
        assert!(matches!(changes[1], VersionChange::Insert { .. }));
        let entry = c.table(t).unwrap();
        let head7 = entry.pk_lookup(&[Value::Int(7)]).unwrap().unwrap();
        let (_, r) = entry.fetch_visible(head7, &snap_at(2)).unwrap().unwrap();
        assert_eq!(r, row(7, 70));
        // The old key still resolves for older snapshots.
        let head0 = entry.pk_lookup(&[Value::Int(0)]).unwrap().unwrap();
        let (_, old) = entry.fetch_visible(head0, &snap_at(1)).unwrap().unwrap();
        assert_eq!(old, row(0, 0));
        assert!(entry.fetch_visible(head0, &snap_at(2)).unwrap().is_none());
    }

    #[test]
    fn unique_secondary_index_ignores_own_chain_but_blocks_others() {
        let mut c = catalog();
        let t = c.create_table("t", schema(), vec![0]).unwrap();
        c.create_index("t_v", t, vec![1], true).unwrap();
        let ins = c
            .insert_row_v(t, &row(1, 100), WriteAs::Committed(1))
            .unwrap();
        let VersionChange::Insert { new, .. } = ins else {
            panic!("expected insert");
        };
        // Same unique value on the same chain (no-op update): allowed.
        c.update_row_v(t, new, &row(1, 100), WriteAs::Committed(2))
            .unwrap();
        // Another chain claiming the value: rejected.
        let err = c
            .insert_row_v(t, &row(2, 100), WriteAs::Committed(3))
            .unwrap_err();
        assert!(matches!(err, Error::Constraint(_)));
    }
}
