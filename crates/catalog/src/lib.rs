#![forbid(unsafe_code)]
//! Catalog subsystem: metadata about tables, attributes and indexes, plus
//! the optimizer statistics (equi-depth histograms) whose presence or absence
//! drives two of the paper's analyzer rules ("one or more attributes of a
//! table have no statistics: histograms should be created"; "actual and
//! estimated costs differ significantly: … missing or outdated statistics").
//!
//! The catalog is a *runtime* catalog in the DataFusion tradition: entries
//! carry both metadata and live handles to the storage files, so the binder
//! (where the paper's parse-stage sensors fire) resolves names without any
//! disk access — "everything that is logged is known to the DBMS anyway".

pub mod catalog;
pub mod histogram;
pub mod mvcc;
pub mod persist;
pub mod shared;
pub mod stats;
pub mod table;

pub use catalog::{Catalog, Relation, VirtualProvider, VirtualTableDef};
pub use histogram::Histogram;
pub use mvcc::{VersionChange, WriteAs};
pub use persist::{IndexDump, SchemaDump, TableDump};
pub use shared::{CatalogWriteGuard, SharedCatalog};
pub use stats::{ColumnStats, TableStatistics};
pub use table::{IndexEntry, IndexMeta, StorageStructure, TableEntry, TableMeta};
