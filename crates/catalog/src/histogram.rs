//! Equi-depth histograms for selectivity estimation.
//!
//! Built by `CREATE STATISTICS` (the analogue of Ingres' `optimizedb`), read
//! by the optimizer. When a column has no histogram the optimizer falls back
//! to magic default selectivities — the mis-estimation regime the paper's
//! Fig 6 shows for Q2/Q4/Q7 and that triggers the "collect statistics" rule.

use ingot_common::Value;

/// One bucket: values with `lo < key ≤ hi` (the first bucket includes `lo`).
#[derive(Debug, Clone, PartialEq)]
struct Bucket {
    hi: f64,
    count: u64,
    distinct: u64,
}

/// An equi-depth histogram over one column.
///
/// Values are mapped to the f64 line by [`Value::numeric_key`]; strings map
/// through their 6-byte prefix, which preserves enough order for the NREF id
/// patterns the evaluation uses.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min: f64,
    buckets: Vec<Bucket>,
    /// Non-null values the histogram was built over.
    total: u64,
    /// NULLs seen during construction.
    nulls: u64,
    /// Exact number of distinct non-null values (counted over the values
    /// themselves, not their numeric keys).
    ndv: u64,
    /// True when the numeric-key projection collapsed many distinct values
    /// onto few keys (long strings sharing a prefix): bucket-level distinct
    /// counts are then unusable for equality selectivity and the histogram
    /// falls back to the uniform 1/ndv estimate.
    collapsed: bool,
}

/// Number of buckets built by default.
pub const DEFAULT_BUCKETS: usize = 32;

impl Histogram {
    /// Build an equi-depth histogram from a column's values.
    pub fn build(values: &[Value], bucket_target: usize) -> Histogram {
        let mut keys: Vec<f64> = Vec::with_capacity(values.len());
        let mut nulls = 0u64;
        let mut distinct_values: std::collections::HashSet<&Value> =
            std::collections::HashSet::with_capacity(values.len().min(1 << 16));
        for v in values {
            if v.is_null() {
                nulls += 1;
            } else {
                keys.push(v.numeric_key());
                distinct_values.insert(v);
            }
        }
        let exact_ndv = distinct_values.len() as u64;
        drop(distinct_values);
        keys.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let total = keys.len() as u64;
        if keys.is_empty() {
            return Histogram {
                min: 0.0,
                buckets: Vec::new(),
                total: 0,
                nulls,
                ndv: 0,
                collapsed: false,
            };
        }
        let bucket_target = bucket_target.max(1);
        let depth = (keys.len() / bucket_target).max(1);
        let min = keys[0];
        let mut buckets = Vec::with_capacity(bucket_target + 1);
        let mut ndv = 0u64;
        let mut i = 0usize;
        while i < keys.len() {
            let mut end = (i + depth).min(keys.len());
            // Equal keys must never straddle a boundary. If the value at the
            // tentative boundary starts a long run, close the bucket *before*
            // the run so the heavy value gets a bucket of its own (end-biased
            // equi-depth); if the run starts the bucket, swallow it fully.
            if end < keys.len() && keys[end] == keys[end - 1] {
                let run_value = keys[end - 1];
                let run_start = i + keys[i..end].partition_point(|&k| k < run_value);
                if run_start > i {
                    end = run_start;
                } else {
                    while end < keys.len() && keys[end] == run_value {
                        end += 1;
                    }
                }
            }
            let slice = &keys[i..end];
            let mut distinct = 1u64;
            for w in slice.windows(2) {
                if w[0] != w[1] {
                    distinct += 1;
                }
            }
            ndv += distinct;
            // Boundary continuity: consecutive buckets share a distinct
            // value when the first key of this bucket equals the previous
            // bucket's hi — prevented by the straddle loop above.
            buckets.push(Bucket {
                hi: slice[slice.len() - 1],
                count: slice.len() as u64,
                distinct,
            });
            i = end;
        }
        // `ndv` here is the number of distinct *numeric keys*; when the
        // key projection lost information (long shared-prefix strings), use
        // the exact value-level count and flag the collapse.
        let collapsed = exact_ndv > ndv.saturating_mul(2);
        Histogram {
            min,
            buckets,
            total,
            nulls,
            ndv: exact_ndv,
            collapsed,
        }
    }

    /// Rows the histogram describes (non-null).
    pub fn row_count(&self) -> u64 {
        self.total
    }

    /// NULL count observed at build time.
    pub fn null_count(&self) -> u64 {
        self.nulls
    }

    /// Estimated number of distinct values.
    pub fn distinct_count(&self) -> u64 {
        self.ndv
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Smallest key.
    pub fn min_key(&self) -> f64 {
        self.min
    }

    /// Largest key.
    pub fn max_key(&self) -> f64 {
        self.buckets.last().map_or(self.min, |b| b.hi)
    }

    fn grand_total(&self) -> f64 {
        (self.total + self.nulls).max(1) as f64
    }

    /// Selectivity of `col = value` among all rows (NULLs never match).
    pub fn selectivity_eq(&self, value: &Value) -> f64 {
        if value.is_null() || self.total == 0 {
            return 0.0;
        }
        let key = value.numeric_key();
        if key < self.min || key > self.max_key() {
            return 0.0;
        }
        if self.collapsed {
            // Key collisions hide the per-bucket distribution: uniform
            // assumption over the exact distinct count.
            return (self.total as f64 / self.ndv.max(1) as f64) / self.grand_total();
        }
        let mut lo = self.min;
        for b in &self.buckets {
            if key <= b.hi {
                // Within this bucket: assume uniform spread over distinct values.
                let _ = lo;
                return (b.count as f64 / b.distinct.max(1) as f64) / self.grand_total();
            }
            lo = b.hi;
        }
        0.0
    }

    /// Selectivity of `col <= value` (NULLs never match).
    pub fn selectivity_le(&self, value: &Value) -> f64 {
        if value.is_null() || self.total == 0 {
            return 0.0;
        }
        let key = value.numeric_key();
        if key < self.min {
            return 0.0;
        }
        let mut acc = 0u64;
        let mut lo = self.min;
        for b in &self.buckets {
            if key >= b.hi {
                acc += b.count;
                lo = b.hi;
                continue;
            }
            // Partially covered bucket: linear interpolation.
            let width = (b.hi - lo).max(f64::EPSILON);
            let frac = ((key - lo) / width).clamp(0.0, 1.0);
            return (acc as f64 + frac * b.count as f64) / self.grand_total();
        }
        self.total as f64 / self.grand_total()
    }

    /// Selectivity of `col < value`.
    pub fn selectivity_lt(&self, value: &Value) -> f64 {
        (self.selectivity_le(value) - self.selectivity_eq(value)).max(0.0)
    }

    /// Selectivity of `lo ≤ col ≤ hi`.
    pub fn selectivity_between(&self, lo: &Value, hi: &Value) -> f64 {
        (self.selectivity_le(hi) - self.selectivity_lt(lo)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: impl IntoIterator<Item = i64>) -> Vec<Value> {
        vals.into_iter().map(Value::Int).collect()
    }

    #[test]
    fn uniform_eq_selectivity() {
        // 1000 distinct values 0..1000: eq selectivity ≈ 1/1000.
        let h = Histogram::build(&ints(0..1000), DEFAULT_BUCKETS);
        let s = h.selectivity_eq(&Value::Int(500));
        assert!((s - 0.001).abs() < 0.0005, "sel {s}");
        assert_eq!(h.distinct_count(), 1000);
        assert_eq!(h.row_count(), 1000);
    }

    #[test]
    fn le_selectivity_is_monotone_and_bounded() {
        let h = Histogram::build(&ints(0..1000), DEFAULT_BUCKETS);
        let mut prev = 0.0;
        for v in [0, 100, 250, 500, 900, 999] {
            let s = h.selectivity_le(&Value::Int(v));
            assert!(s >= prev - 1e-12, "non-monotone at {v}");
            assert!((0.0..=1.0).contains(&s));
            prev = s;
        }
        assert!((h.selectivity_le(&Value::Int(499)) - 0.5).abs() < 0.05);
        assert!(h.selectivity_le(&Value::Int(-1)) == 0.0);
        assert!((h.selectivity_le(&Value::Int(2000)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_data_heavy_value() {
        // 900 copies of 7, plus 0..100.
        let mut vals = ints(std::iter::repeat_n(7, 900));
        vals.extend(ints(0..100));
        let h = Histogram::build(&vals, 16);
        let s7 = h.selectivity_eq(&Value::Int(7));
        let s50 = h.selectivity_eq(&Value::Int(50));
        assert!(s7 > 0.3, "heavy value must dominate, got {s7}");
        assert!(s50 < 0.05, "light value must stay small, got {s50}");
    }

    #[test]
    fn nulls_reduce_selectivity() {
        let mut vals = ints(0..100);
        vals.extend(std::iter::repeat_n(Value::Null, 100));
        let h = Histogram::build(&vals, 8);
        assert_eq!(h.null_count(), 100);
        // col <= max matches only half the rows.
        assert!((h.selectivity_le(&Value::Int(99)) - 0.5).abs() < 0.01);
        assert_eq!(h.selectivity_eq(&Value::Null), 0.0);
    }

    #[test]
    fn between_matches_range_fraction() {
        let h = Histogram::build(&ints(0..1000), DEFAULT_BUCKETS);
        let s = h.selectivity_between(&Value::Int(200), &Value::Int(399));
        assert!((s - 0.2).abs() < 0.05, "got {s}");
    }

    #[test]
    fn empty_and_constant_columns() {
        let h = Histogram::build(&[], 8);
        assert_eq!(h.selectivity_eq(&Value::Int(1)), 0.0);
        let h = Histogram::build(&ints(std::iter::repeat_n(5, 100)), 8);
        assert!((h.selectivity_eq(&Value::Int(5)) - 1.0).abs() < 1e-9);
        assert_eq!(h.distinct_count(), 1);
    }

    #[test]
    fn string_histogram_orders_ids() {
        let vals: Vec<Value> = (0..1000).map(|i| Value::Str(format!("NF{i:04}"))).collect();
        let h = Histogram::build(&vals, DEFAULT_BUCKETS);
        let s = h.selectivity_le(&Value::Str("NF0499".into()));
        assert!((s - 0.5).abs() < 0.1, "got {s}");
    }
}
