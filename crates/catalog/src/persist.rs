//! Checkpoint schema serialization.
//!
//! A checkpoint stores the catalog's *physical* schema — every base table and
//! index together with the [`FileId`]s of their storage files — as an opaque
//! blob inside the storage manifest (see `ingot-storage`'s recovery module).
//! On boot, [`crate::Catalog::attach_schema`] decodes the blob and re-attaches
//! the existing heap and tree files, after which WAL replay only has to redo
//! the committed records written *after* the checkpoint.
//!
//! Objects are identified by **name**, not id: table and index ids are
//! assigned in creation order and the attach path re-assigns them, so WAL
//! records and this blob both name objects by their lower-cased SQL name.
//!
//! Optimizer statistics (histograms) are deliberately *not* persisted: they
//! are advisory, and `CREATE STATISTICS` after recovery rebuilds them. This
//! mirrors the paper's split between the monitored workload (durable) and
//! derived tuning state (recomputable).
//!
//! Layout (all integers little-endian, strings length-prefixed with `u32`):
//!
//! ```text
//! magic    8  b"INGOTSC1"
//! tables   4  u32 count, then per table:
//!   name str, cols u32 × { name str, ty u8, nullable u8 },
//!   pk u32 × u32, storage u8 (0=heap 1=btree),
//!   heap_file u32, heap_main_pages u64,
//!   has_primary u8, [primary_file u32]
//! indexes  4  u32 count, then per index:
//!   name str, table str, cols u32 × u32, unique u8,
//!   is_virtual u8, [tree_file u32]
//! ```
//!
//! Decoding is strict: trailing bytes, truncated fields and unknown tags all
//! produce an error rather than a partial catalog — a torn blob must never
//! masquerade as a smaller schema.

use ingot_common::{Column, DataType, Error, Result, Schema};

use crate::table::StorageStructure;

const MAGIC: &[u8; 8] = b"INGOTSC1";

/// One table in a checkpoint schema blob.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDump {
    /// Lower-cased table name.
    pub name: String,
    /// Column definitions.
    pub schema: Schema,
    /// Primary-key column positions.
    pub primary_key: Vec<usize>,
    /// Storage structure at checkpoint time.
    pub storage: StorageStructure,
    /// Raw [`ingot_storage::FileId`] of the heap file.
    pub heap_file: u32,
    /// Main-extent size of the heap, in pages.
    pub heap_main_pages: u64,
    /// Raw file id of the clustered primary tree, when one exists.
    pub primary_file: Option<u32>,
}

/// One secondary index in a checkpoint schema blob.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDump {
    /// Lower-cased index name.
    pub name: String,
    /// Name of the indexed table.
    pub table: String,
    /// Indexed column positions.
    pub columns: Vec<usize>,
    /// Whether duplicate keys are rejected.
    pub unique: bool,
    /// Raw file id of the backing tree; `None` for virtual indexes.
    pub tree_file: Option<u32>,
}

/// The full physical schema captured by a checkpoint.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchemaDump {
    /// Base tables in id (creation) order.
    pub tables: Vec<TableDump>,
    /// Indexes in id (creation) order.
    pub indexes: Vec<IndexDump>,
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn ty_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
    }
}

fn ty_from_tag(tag: u8) -> Result<DataType> {
    match tag {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Float),
        2 => Ok(DataType::Str),
        3 => Ok(DataType::Bool),
        other => Err(corrupt(format!("unknown type tag {other}"))),
    }
}

fn corrupt(detail: impl std::fmt::Display) -> Error {
    Error::storage(format!("checkpoint schema blob corrupt: {detail}"))
}

/// Cursor over a byte slice with strict bounds-checked reads.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("truncated"))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| corrupt("truncated"))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid utf-8 string"))
    }

    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(corrupt(format!("invalid bool tag {other}"))),
        }
    }
}

impl SchemaDump {
    /// Serialize to the manifest-meta byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.tables.len() * 64 + self.indexes.len() * 32);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for t in &self.tables {
            put_str(&mut buf, &t.name);
            buf.extend_from_slice(&(t.schema.len() as u32).to_le_bytes());
            for c in t.schema.columns() {
                put_str(&mut buf, &c.name);
                buf.push(ty_tag(c.ty));
                buf.push(u8::from(c.nullable));
            }
            buf.extend_from_slice(&(t.primary_key.len() as u32).to_le_bytes());
            for &pk in &t.primary_key {
                buf.extend_from_slice(&(pk as u32).to_le_bytes());
            }
            buf.push(match t.storage {
                StorageStructure::Heap => 0,
                StorageStructure::BTree => 1,
            });
            buf.extend_from_slice(&t.heap_file.to_le_bytes());
            buf.extend_from_slice(&t.heap_main_pages.to_le_bytes());
            match t.primary_file {
                Some(f) => {
                    buf.push(1);
                    buf.extend_from_slice(&f.to_le_bytes());
                }
                None => buf.push(0),
            }
        }
        buf.extend_from_slice(&(self.indexes.len() as u32).to_le_bytes());
        for i in &self.indexes {
            put_str(&mut buf, &i.name);
            put_str(&mut buf, &i.table);
            buf.extend_from_slice(&(i.columns.len() as u32).to_le_bytes());
            for &c in &i.columns {
                buf.extend_from_slice(&(c as u32).to_le_bytes());
            }
            buf.push(u8::from(i.unique));
            match i.tree_file {
                Some(f) => {
                    buf.push(0);
                    buf.push(1);
                    buf.extend_from_slice(&f.to_le_bytes());
                }
                None => {
                    buf.push(1);
                    buf.push(0);
                }
            }
        }
        buf
    }

    /// Parse a blob produced by [`SchemaDump::encode`]. Strict: trailing
    /// bytes or any truncation yield an error.
    pub fn decode(bytes: &[u8]) -> Result<SchemaDump> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let n_tables = r.u32()? as usize;
        let mut tables = Vec::with_capacity(n_tables.min(1024));
        for _ in 0..n_tables {
            let name = r.str()?;
            let n_cols = r.u32()? as usize;
            let mut cols = Vec::with_capacity(n_cols.min(1024));
            for _ in 0..n_cols {
                let cname = r.str()?;
                let ty = ty_from_tag(r.u8()?)?;
                let nullable = r.bool()?;
                let col = if nullable {
                    Column::new(cname, ty)
                } else {
                    Column::not_null(cname, ty)
                };
                cols.push(col);
            }
            let n_pk = r.u32()? as usize;
            let mut primary_key = Vec::with_capacity(n_pk.min(64));
            for _ in 0..n_pk {
                primary_key.push(r.u32()? as usize);
            }
            let storage = match r.u8()? {
                0 => StorageStructure::Heap,
                1 => StorageStructure::BTree,
                other => return Err(corrupt(format!("unknown storage tag {other}"))),
            };
            let heap_file = r.u32()?;
            let heap_main_pages = r.u64()?;
            let primary_file = if r.bool()? { Some(r.u32()?) } else { None };
            tables.push(TableDump {
                name,
                schema: Schema::new(cols),
                primary_key,
                storage,
                heap_file,
                heap_main_pages,
                primary_file,
            });
        }
        let n_indexes = r.u32()? as usize;
        let mut indexes = Vec::with_capacity(n_indexes.min(1024));
        for _ in 0..n_indexes {
            let name = r.str()?;
            let table = r.str()?;
            let n_cols = r.u32()? as usize;
            let mut columns = Vec::with_capacity(n_cols.min(64));
            for _ in 0..n_cols {
                columns.push(r.u32()? as usize);
            }
            let unique = r.bool()?;
            let is_virtual = r.bool()?;
            let tree_file = if r.bool()? { Some(r.u32()?) } else { None };
            if is_virtual != tree_file.is_none() {
                return Err(corrupt("virtual flag disagrees with tree presence"));
            }
            indexes.push(IndexDump {
                name,
                table,
                columns,
                unique,
                tree_file,
            });
        }
        if r.pos != bytes.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(SchemaDump { tables, indexes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SchemaDump {
        SchemaDump {
            tables: vec![
                TableDump {
                    name: "orders".into(),
                    schema: Schema::new(vec![
                        Column::not_null("id", DataType::Int),
                        Column::new("note", DataType::Str),
                        Column::new("paid", DataType::Bool),
                    ]),
                    primary_key: vec![0],
                    storage: StorageStructure::BTree,
                    heap_file: 0,
                    heap_main_pages: 4,
                    primary_file: Some(1),
                },
                TableDump {
                    name: "log".into(),
                    schema: Schema::new(vec![Column::new("x", DataType::Float)]),
                    primary_key: vec![],
                    storage: StorageStructure::Heap,
                    heap_file: 2,
                    heap_main_pages: 8,
                    primary_file: None,
                },
            ],
            indexes: vec![IndexDump {
                name: "orders_note".into(),
                table: "orders".into(),
                columns: vec![1],
                unique: false,
                tree_file: Some(3),
            }],
        }
    }

    #[test]
    fn roundtrip() {
        let dump = sample();
        let bytes = dump.encode();
        assert_eq!(SchemaDump::decode(&bytes).unwrap(), dump);
    }

    #[test]
    fn empty_roundtrip() {
        let dump = SchemaDump::default();
        assert_eq!(SchemaDump::decode(&dump.encode()).unwrap(), dump);
    }

    #[test]
    fn rejects_corruption() {
        let bytes = sample().encode();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(SchemaDump::decode(&bad).is_err());
        // Truncation at every prefix length must error, never panic.
        for cut in 0..bytes.len() {
            assert!(SchemaDump::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing bytes.
        let mut long = bytes.clone();
        long.push(0);
        assert!(SchemaDump::decode(&long).is_err());
    }
}
