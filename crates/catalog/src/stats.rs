//! Optimizer statistics: per-table and per-column.

use std::collections::HashMap;

use crate::histogram::Histogram;

/// Statistics of one column, as collected by `CREATE STATISTICS`.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// The histogram over the column's values.
    pub histogram: Histogram,
}

/// Statistics of one table at a collection instant.
///
/// The monitor's `tables` IMA object reports page/overflow counts live from
/// the heap; this struct is the *optimizer's* snapshot, which can go stale —
/// exactly the failure mode the paper's first analyzer rule detects.
#[derive(Debug, Clone, Default)]
pub struct TableStatistics {
    /// Row count at collection time.
    pub row_count: u64,
    /// Data pages at collection time.
    pub pages: u64,
    /// Per-column statistics, keyed by column position.
    pub columns: HashMap<usize, ColumnStats>,
    /// Simulated-clock second at which the statistics were collected.
    pub collected_at_secs: u64,
}

impl TableStatistics {
    /// True when column `col` has a histogram.
    pub fn has_histogram(&self, col: usize) -> bool {
        self.columns.contains_key(&col)
    }

    /// The histogram of column `col`, if collected.
    pub fn histogram(&self, col: usize) -> Option<&Histogram> {
        self.columns.get(&col).map(|c| &c.histogram)
    }

    /// Estimated distinct count of column `col`, if known.
    pub fn distinct_count(&self, col: usize) -> Option<u64> {
        self.histogram(col).map(Histogram::distinct_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_common::Value;

    #[test]
    fn lookup_by_column_position() {
        let mut s = TableStatistics::default();
        let vals: Vec<Value> = (0..10).map(Value::Int).collect();
        s.columns.insert(
            2,
            ColumnStats {
                histogram: Histogram::build(&vals, 4),
            },
        );
        assert!(s.has_histogram(2));
        assert!(!s.has_histogram(0));
        assert_eq!(s.distinct_count(2), Some(10));
        assert_eq!(s.distinct_count(1), None);
    }
}
