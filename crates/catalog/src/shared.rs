//! Copy-on-write catalog sharing.
//!
//! [`SharedCatalog`] publishes the catalog as an immutable [`Arc`] snapshot.
//! Readers ([`SharedCatalog::read`]) clone the `Arc` — a single atomic
//! increment, never blocked by writers. Schema writers
//! ([`SharedCatalog::write`]) serialise on an internal DDL mutex, mutate a
//! private copy of the catalog, and publish it atomically when the guard
//! drops. Statement execution therefore never waits on DDL that targets
//! unrelated tables, and DDL never waits on running statements.
//!
//! Row data is *not* copied: table entries hold `Arc` handles to heap and
//! tree files, so every snapshot sees the same live rows. Only the schema
//! maps (tables, indexes, names) are copy-on-write.
//!
//! Lock-order discipline (see DESIGN.md "Concurrency architecture"): engine
//! code acquires logical table locks from the `LockManager` *before* calling
//! [`SharedCatalog::write`], and code holding a write guard never takes
//! table locks. This keeps the wait-for graph over {table locks, DDL mutex}
//! acyclic.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

// Under `--cfg loom` the primitives come from the model-checking shim, which
// injects schedule perturbation at every acquire/notify edge (see the
// loom-shim crate and the `loom_shared_catalog` integration test).
#[cfg(loom)]
use loom::sync::{Mutex, MutexGuard, RwLock};
#[cfg(not(loom))]
use parking_lot::{Mutex, MutexGuard, RwLock};

use crate::catalog::Catalog;

/// A catalog published as an atomically swappable immutable snapshot.
pub struct SharedCatalog {
    /// The current published snapshot. The `RwLock` is held only for the
    /// duration of an `Arc` clone (read) or pointer swap (publish) — never
    /// across statement execution.
    current: RwLock<Arc<Catalog>>,
    /// Serialises schema writers so concurrent DDL cannot lose updates
    /// (clone-modify-publish must not interleave).
    ddl: Mutex<()>,
}

impl SharedCatalog {
    /// Publish `catalog` as the initial snapshot.
    pub fn new(catalog: Catalog) -> Self {
        SharedCatalog {
            current: RwLock::new(Arc::new(catalog)),
            ddl: Mutex::new(()),
        }
    }

    /// The current snapshot. Cheap (one `Arc` clone) and never blocks on
    /// schema writers beyond the instant of the pointer swap. The snapshot
    /// stays valid for as long as the caller holds it; row data read through
    /// it is always live.
    pub fn read(&self) -> Arc<Catalog> {
        Arc::clone(&self.current.read())
    }

    /// Open the catalog for schema changes. Blocks while another schema
    /// writer is active; readers are not blocked. The changes become visible
    /// atomically when the returned guard drops.
    pub fn write(&self) -> CatalogWriteGuard<'_> {
        let ddl = self.ddl.lock();
        let scratch = Catalog::clone(&self.current.read());
        CatalogWriteGuard {
            shared: self,
            scratch: Some(scratch),
            _ddl: ddl,
        }
    }
}

/// Exclusive schema-change guard: derefs to [`Catalog`], publishes the
/// mutated copy as the new snapshot on drop.
pub struct CatalogWriteGuard<'a> {
    shared: &'a SharedCatalog,
    scratch: Option<Catalog>,
    _ddl: MutexGuard<'a, ()>,
}

impl Deref for CatalogWriteGuard<'_> {
    type Target = Catalog;
    fn deref(&self) -> &Catalog {
        self.scratch.as_ref().expect("guard holds scratch catalog")
    }
}

impl DerefMut for CatalogWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut Catalog {
        self.scratch.as_mut().expect("guard holds scratch catalog")
    }
}

impl Drop for CatalogWriteGuard<'_> {
    fn drop(&mut self) {
        let mut scratch = self.scratch.take().expect("guard holds scratch catalog");
        // Every publish advances the schema epoch, even when the writer made
        // no change — a cheap over-approximation that keeps the plan cache's
        // staleness check a single integer comparison.
        scratch.bump_epoch();
        *self.shared.current.write() = Arc::new(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_common::{Column, DataType, EngineConfig, Row, Schema, SimClock, Value};
    use ingot_storage::StorageEngine;

    fn shared() -> SharedCatalog {
        let cfg = EngineConfig::default();
        let storage = StorageEngine::in_memory(&cfg, SimClock::new());
        SharedCatalog::new(Catalog::new(Arc::clone(storage.pool()), 2))
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("v", DataType::Int),
        ])
    }

    #[test]
    fn snapshots_are_immutable_but_rows_are_live() {
        let sc = shared();
        let t = sc.write().create_table("t", schema(), vec![0]).unwrap();
        let before = sc.read();
        // Row written through one snapshot is visible through another…
        before
            .insert_row(t, &Row::new(vec![Value::Int(1), Value::Int(10)]))
            .unwrap();
        let after = sc.read();
        assert_eq!(after.table(t).unwrap().heap.row_count(), 1);
        // …but schema changes are not retroactive.
        sc.write().create_table("u", schema(), vec![0]).unwrap();
        assert!(before.resolve_table("u").is_err());
        assert!(sc.read().resolve_table("u").is_ok());
    }

    #[test]
    fn old_snapshot_survives_drop_table() {
        let sc = shared();
        let t = sc.write().create_table("t", schema(), vec![0]).unwrap();
        sc.read()
            .insert_row(t, &Row::new(vec![Value::Int(1), Value::Int(10)]))
            .unwrap();
        let old = sc.read();
        sc.write().drop_table("t").unwrap();
        // The published catalog no longer knows the table…
        assert!(sc.read().resolve_table("t").is_err());
        // …but the held snapshot still reads it (storage is Arc-kept-alive).
        assert_eq!(old.table(t).unwrap().heap.row_count(), 1);
    }

    #[test]
    fn write_guard_publishes_on_drop_only() {
        let sc = shared();
        {
            let mut guard = sc.write();
            guard.create_table("t", schema(), vec![0]).unwrap();
            // Not yet published: concurrent readers still see the old world.
            assert!(sc.read().resolve_table("t").is_err());
        }
        assert!(sc.read().resolve_table("t").is_ok());
    }

    #[test]
    fn epoch_advances_on_every_publish() {
        let sc = shared();
        let e0 = sc.read().epoch();
        sc.write().create_table("t", schema(), vec![0]).unwrap();
        let e1 = sc.read().epoch();
        assert!(e1 > e0, "publish must advance the epoch");
        // Even a no-op write guard publishes a new epoch.
        drop(sc.write());
        assert!(sc.read().epoch() > e1);
        // Readers holding an old snapshot keep its epoch.
        let old = sc.read();
        sc.write().create_table("u", schema(), vec![0]).unwrap();
        assert!(sc.read().epoch() > old.epoch());
    }

    #[test]
    fn concurrent_readers_during_ddl() {
        let sc = Arc::new(shared());
        let t = sc.write().create_table("t", schema(), vec![0]).unwrap();
        for i in 0..100 {
            sc.read()
                .insert_row(t, &Row::new(vec![Value::Int(i), Value::Int(i)]))
                .unwrap();
        }
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let sc = Arc::clone(&sc);
                std::thread::spawn(move || {
                    // Every snapshot taken mid-DDL must still see a coherent
                    // schema and all 100 rows of `t`.
                    for _ in 0..500 {
                        let snap = sc.read();
                        if let Ok(entry) = snap.table(t) {
                            assert_eq!(entry.heap.row_count(), 100);
                        }
                    }
                })
            })
            .collect();
        // DDL churn on unrelated tables while readers spin.
        for i in 0..50 {
            sc.write()
                .create_table(&format!("side_{i}"), schema(), vec![0])
                .unwrap();
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(sc.read().tables().count(), 51);
    }
}
