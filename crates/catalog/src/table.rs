//! Table and index entries: metadata plus live storage handles.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use ingot_common::mvcc::TS_INF;
use ingot_common::{
    Error, IndexId, Result, Row, Schema, Snapshot, TableId, Value, WaitEvent, WaitGuard,
};
use ingot_storage::{BTreeFile, HeapFile, RowId};

use crate::stats::TableStatistics;

/// The storage structure of a table, per Ingres' `MODIFY … TO` command.
///
/// `Heap` is the default: a fixed main-page extent plus overflow chains, no
/// keyed access. `BTree` stores a clustered B-Tree over the primary key and a
/// compacted, overflow-free heap, enabling keyed lookups — the structure the
/// analyzer's 10 %-overflow rule recommends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageStructure {
    /// Main pages + overflow chain, scan-only access.
    Heap,
    /// Clustered primary-key B-Tree over a compacted heap.
    BTree,
}

impl fmt::Display for StorageStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageStructure::Heap => write!(f, "HEAP"),
            StorageStructure::BTree => write!(f, "BTREE"),
        }
    }
}

impl FromStr for StorageStructure {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        match s.to_ascii_uppercase().as_str() {
            "HEAP" => Ok(StorageStructure::Heap),
            "BTREE" | "B-TREE" => Ok(StorageStructure::BTree),
            other => Err(Error::parse(format!("unknown storage structure '{other}'"))),
        }
    }
}

/// Metadata of a base table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Stable id.
    pub id: TableId,
    /// Lower-cased name.
    pub name: String,
    /// Column definitions.
    pub schema: Schema,
    /// Positions of the primary-key columns (may be empty).
    pub primary_key: Vec<usize>,
    /// Current storage structure.
    pub storage: StorageStructure,
}

/// A table: metadata, storage handles and optimizer statistics.
///
/// Cloning is cheap (the storage handles are `Arc`s) and underpins the
/// catalog's copy-on-write snapshots: a clone shares the same live heap and
/// trees, so data written through one snapshot is visible through all.
#[derive(Clone)]
pub struct TableEntry {
    /// Metadata.
    pub meta: TableMeta,
    /// The row store (always present; compacted on `MODIFY`).
    pub heap: Arc<HeapFile>,
    /// Clustered primary-key tree, present when `storage == BTree` and the
    /// table declares a primary key.
    pub primary: Option<Arc<BTreeFile>>,
    /// Optimizer statistics; `None` until `CREATE STATISTICS` runs.
    pub stats: Option<TableStatistics>,
}

impl TableEntry {
    /// Extract the primary-key values of `row`.
    pub fn pk_values(&self, row: &Row) -> Vec<Value> {
        self.meta
            .primary_key
            .iter()
            .map(|&i| row.get(i).clone())
            .collect()
    }

    /// Point lookup through the clustered primary tree (BTree storage only).
    pub fn pk_lookup(&self, key: &[Value]) -> Result<Option<RowId>> {
        let Some(primary) = &self.primary else {
            return Err(Error::storage(format!(
                "table '{}' has no primary structure",
                self.meta.name
            )));
        };
        let encoded = ingot_storage::encode_key(key);
        Ok(primary
            .get(&encoded)?
            .map(|v| RowId::unpack(u64::from_le_bytes(v.try_into().unwrap()))))
    }

    /// All row ids whose primary key starts with `prefix` (clustered-tree
    /// prefix probe; `prefix` may cover only the leading key columns).
    pub fn pk_prefix_probe(&self, prefix: &[Value]) -> Result<Vec<RowId>> {
        let Some(primary) = &self.primary else {
            return Err(Error::storage(format!(
                "table '{}' has no primary structure",
                self.meta.name
            )));
        };
        let lo = ingot_storage::encode_key(prefix);
        let hi = prefix_upper_bound(&lo);
        let mut out = Vec::new();
        primary.for_each_in_range(Some(&lo), Some(&hi), |_, v| {
            out.push(RowId::unpack(u64::from_le_bytes(v.try_into().unwrap())));
        })?;
        Ok(out)
    }

    /// Resolve a version-chain head to the version visible under `snap`,
    /// walking `prev` pointers backwards from the head. The head is the
    /// common case (latest snapshot, short chains) and costs no walk; every
    /// step beyond it is charged to the [`WaitEvent::VersionChainWalk`] wait
    /// event — long walks mean the GC watermark is lagging behind readers.
    pub fn fetch_visible(&self, head: RowId, snap: &Snapshot) -> Result<Option<(RowId, Row)>> {
        let mut rid = head;
        let mut walk: Option<WaitGuard> = None;
        loop {
            let (meta, row) = self.heap.get_version(rid)?;
            if snap.sees(meta.begin, meta.end) {
                return Ok(Some((rid, row)));
            }
            if meta.prev == TS_INF {
                return Ok(None);
            }
            if walk.is_none() {
                walk = Some(WaitGuard::ambient(WaitEvent::VersionChainWalk));
            }
            rid = RowId::unpack(meta.prev);
        }
    }

    /// Fetch one exact version (no chain walk) if it is visible under
    /// `snap`. Secondary indexes store one entry per version, so probes
    /// already land on the right physical record and only need a
    /// visibility filter.
    pub fn version_visible(&self, rid: RowId, snap: &Snapshot) -> Result<Option<Row>> {
        let (meta, row) = self.heap.get_version(rid)?;
        Ok(snap.sees(meta.begin, meta.end).then_some(row))
    }

    /// Scan the heap returning only the versions visible under `snap`.
    /// Needs no chain walks: visibility is evaluated per physical version,
    /// and at most one version per chain passes.
    pub fn scan_visible<'a>(
        &'a self,
        snap: &'a Snapshot,
    ) -> impl Iterator<Item = Result<(RowId, Row)>> + 'a {
        self.heap
            .scan_versions()
            .filter_map(move |item| match item {
                Ok((rid, meta, row)) => snap.sees(meta.begin, meta.end).then_some(Ok((rid, row))),
                Err(e) => Some(Err(e)),
            })
    }

    /// Pages currently used by the table (heap + primary tree).
    pub fn data_pages(&self) -> u64 {
        let heap = self.heap.stats().total_pages();
        heap + self.primary.as_ref().map_or(0, |p| p.pages())
    }
}

/// Inclusive upper bound covering every key that extends `prefix`: encoded
/// value bytes never start with 0xFF, so nine 0xFF bytes outrank any suffix.
fn prefix_upper_bound(prefix: &[u8]) -> Vec<u8> {
    let mut hi = Vec::with_capacity(prefix.len() + 9);
    hi.extend_from_slice(prefix);
    hi.extend_from_slice(&[0xFF; 9]);
    hi
}

/// Metadata of a secondary index.
#[derive(Debug, Clone)]
pub struct IndexMeta {
    /// Stable id.
    pub id: IndexId,
    /// Lower-cased name.
    pub name: String,
    /// The indexed table.
    pub table: TableId,
    /// Positions of the indexed columns within the table schema.
    pub columns: Vec<usize>,
    /// Whether duplicate keys are rejected.
    pub unique: bool,
    /// Hypothetical ("virtual") index: visible to the optimizer's what-if
    /// mode only, never materialised — after AutoAdmin's what-if indexes.
    pub is_virtual: bool,
}

/// A secondary index: metadata plus the B-Tree (absent for virtual indexes).
#[derive(Clone)]
pub struct IndexEntry {
    /// Metadata.
    pub meta: IndexMeta,
    /// The backing tree; `None` for virtual indexes.
    pub tree: Option<Arc<BTreeFile>>,
}

impl IndexEntry {
    /// Compose the stored key: memcomparable column values + packed row id
    /// (the row id makes non-unique keys distinct in the tree).
    pub fn stored_key(values: &[Value], rid: RowId) -> Vec<u8> {
        let mut k = ingot_storage::encode_key(values);
        k.extend_from_slice(&rid.pack().to_be_bytes());
        k
    }

    /// All row ids whose indexed columns equal `values`.
    pub fn probe_eq(&self, values: &[Value]) -> Result<Vec<RowId>> {
        let tree = self
            .tree
            .as_ref()
            .ok_or_else(|| Error::catalog(format!("index '{}' is virtual", self.meta.name)))?;
        let lo = ingot_storage::encode_key(values);
        let hi = prefix_upper_bound(&lo);
        let mut out = Vec::new();
        tree.for_each_in_range(Some(&lo), Some(&hi), |_, v| {
            out.push(RowId::unpack(u64::from_le_bytes(v.try_into().unwrap())));
        })?;
        Ok(out)
    }

    /// All row ids whose first indexed column lies in `[lo, hi]` (either
    /// bound optional).
    pub fn probe_range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Result<Vec<RowId>> {
        let tree = self
            .tree
            .as_ref()
            .ok_or_else(|| Error::catalog(format!("index '{}' is virtual", self.meta.name)))?;
        let lo_key = lo.map(|v| ingot_storage::encode_key(std::slice::from_ref(v)));
        let hi_key = hi.map(|v| {
            let mut k = ingot_storage::encode_key(std::slice::from_ref(v));
            // Include every entry sharing the bound prefix (composite keys
            // and the row-id suffix extend beyond it).
            k.extend_from_slice(&[0xFF; 9]);
            k
        });
        let mut out = Vec::new();
        tree.for_each_in_range(lo_key.as_deref(), hi_key.as_deref(), |_, v| {
            out.push(RowId::unpack(u64::from_le_bytes(v.try_into().unwrap())));
        })?;
        Ok(out)
    }

    /// Pages used by the index (0 for virtual).
    pub fn pages(&self) -> u64 {
        self.tree.as_ref().map_or(0, |t| t.pages())
    }

    /// Entries in the index (0 for virtual).
    pub fn entry_count(&self) -> u64 {
        self.tree.as_ref().map_or(0, |t| t.entry_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_structure_parse_display() {
        assert_eq!(
            "btree".parse::<StorageStructure>().unwrap(),
            StorageStructure::BTree
        );
        assert_eq!(
            "HEAP".parse::<StorageStructure>().unwrap(),
            StorageStructure::Heap
        );
        assert!("isam".parse::<StorageStructure>().is_err());
        assert_eq!(StorageStructure::BTree.to_string(), "BTREE");
    }

    #[test]
    fn stored_key_disambiguates_duplicates() {
        let vals = [Value::Int(7)];
        let a = IndexEntry::stored_key(&vals, RowId::new(1, 0));
        let b = IndexEntry::stored_key(&vals, RowId::new(1, 1));
        assert_ne!(a, b);
        let prefix = ingot_storage::encode_key(&vals);
        assert!(a.starts_with(&prefix) && b.starts_with(&prefix));
    }
}
