//! The catalog: object registry plus the central row-mutation path that
//! keeps heap, clustered tree and every secondary index consistent.

use std::collections::HashMap;
use std::sync::Arc;

use ingot_common::{Error, IndexId, Result, Row, Schema, TableId, Value};
use ingot_storage::{BTreeFile, BufferPool, HeapFile, RowId};

use crate::histogram::{Histogram, DEFAULT_BUCKETS};
use crate::stats::{ColumnStats, TableStatistics};
use crate::table::{IndexEntry, IndexMeta, StorageStructure, TableEntry, TableMeta};

/// The catalog of one database.
///
/// The engine publishes the catalog as an immutable `Arc` snapshot (see
/// [`crate::shared::SharedCatalog`]): schema changes (`&mut self` methods —
/// DDL, MODIFY, COLLECT STATISTICS) run on a private copy that is swapped in
/// atomically, while row mutation (`&self` methods) goes through the shared
/// storage handles and is visible through every snapshot immediately.
///
/// Cloning is cheap: table and index entries sit behind `Arc`s, so a clone
/// copies only the id/name maps. This is what makes copy-on-write DDL viable.
///
/// The `&self` row mutators assume the caller holds an exclusive logical lock
/// on the target table (the engine's `LockManager` provides it): constraint
/// checks are check-then-act and are only correct under single-writer-per-
/// table discipline.
#[derive(Clone)]
pub struct Catalog {
    pool: Arc<BufferPool>,
    heap_main_pages: usize,
    tables: HashMap<TableId, Arc<TableEntry>>,
    table_names: HashMap<String, TableId>,
    indexes: HashMap<IndexId, Arc<IndexEntry>>,
    index_names: HashMap<String, IndexId>,
    virtual_tables: HashMap<TableId, VirtualTableDef>,
    virtual_names: HashMap<String, TableId>,
    next_table: u32,
    next_index: u32,
    /// Schema epoch: bumped every time a modified copy of the catalog is
    /// published through [`crate::shared::SharedCatalog`]. Plan-cache entries
    /// are keyed on it, so any published schema or statistics change
    /// implicitly invalidates every plan optimized under an older epoch.
    epoch: u64,
}

/// Supplies the rows of a virtual table on demand.
pub type VirtualProvider = std::sync::Arc<dyn Fn() -> Vec<Row> + Send + Sync>;

/// A virtual (provider-backed, memory-only) table — the mechanism behind the
/// IMA interface: in-memory monitor structures registered as tables and
/// queried over standard SQL, with no disk access involved.
#[derive(Clone)]
pub struct VirtualTableDef {
    /// Stable id (shares the table-id space).
    pub id: TableId,
    /// Lower-cased name (conventionally `ima$…`).
    pub name: String,
    /// Row shape.
    pub schema: Schema,
    /// Row source.
    pub provider: VirtualProvider,
}

/// Either kind of relation a name can resolve to.
pub enum Relation<'a> {
    /// A base table.
    Base(&'a TableEntry),
    /// A virtual (provider-backed) table.
    Virtual(&'a VirtualTableDef),
}

impl Catalog {
    /// An empty catalog over `pool`. `heap_main_pages` is the fixed main
    /// extent newly created heap tables receive.
    pub fn new(pool: Arc<BufferPool>, heap_main_pages: usize) -> Self {
        Catalog {
            pool,
            heap_main_pages,
            tables: HashMap::new(),
            table_names: HashMap::new(),
            indexes: HashMap::new(),
            index_names: HashMap::new(),
            virtual_tables: HashMap::new(),
            virtual_names: HashMap::new(),
            next_table: 1,
            next_index: 1,
            epoch: 0,
        }
    }

    /// The buffer pool backing this catalog's files.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The schema epoch this snapshot was published under (see the field
    /// docs). Two snapshots with equal epochs have identical schemas and
    /// statistics.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advance the schema epoch. Called exactly once per publish by the
    /// [`crate::shared::CatalogWriteGuard`]; not part of the public DDL
    /// surface.
    pub(crate) fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    // ---- table DDL -----------------------------------------------------------

    /// Create a table (HEAP structure, like Ingres' default).
    pub fn create_table(
        &mut self,
        name: &str,
        schema: Schema,
        primary_key: Vec<usize>,
    ) -> Result<TableId> {
        let name = name.to_ascii_lowercase();
        if self.table_names.contains_key(&name) || self.virtual_names.contains_key(&name) {
            return Err(Error::catalog(format!("table '{name}' already exists")));
        }
        for &pk in &primary_key {
            if pk >= schema.len() {
                return Err(Error::catalog(format!(
                    "primary key column {pk} out of range"
                )));
            }
        }
        let id = TableId(self.next_table);
        self.next_table += 1;
        let heap = Arc::new(HeapFile::create(
            Arc::clone(&self.pool),
            self.heap_main_pages,
        )?);
        let entry = TableEntry {
            meta: TableMeta {
                id,
                name: name.clone(),
                schema,
                primary_key,
                storage: StorageStructure::Heap,
            },
            heap,
            primary: None,
            stats: None,
        };
        self.tables.insert(id, Arc::new(entry));
        self.table_names.insert(name, id);
        Ok(id)
    }

    /// Drop a table and all its indexes. (File space is not reclaimed from
    /// the backend — like a real system, space returns on rebuild.)
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let id = self.resolve_table(name)?;
        let index_ids: Vec<IndexId> = self
            .indexes
            .values()
            .filter(|e| e.meta.table == id)
            .map(|e| e.meta.id)
            .collect();
        for iid in index_ids {
            if let Some(e) = self.indexes.remove(&iid) {
                self.index_names.remove(&e.meta.name);
            }
        }
        let entry = self.tables.remove(&id).expect("resolved table");
        self.table_names.remove(&entry.meta.name);
        Ok(())
    }

    /// Look up a table id by name.
    pub fn resolve_table(&self, name: &str) -> Result<TableId> {
        self.table_names
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| Error::binder(format!("unknown table '{name}'")))
    }

    /// Register a virtual table (IMA object). The provider is called at
    /// execution time; rows never touch the buffer pool.
    pub fn register_virtual_table(
        &mut self,
        name: &str,
        schema: Schema,
        provider: VirtualProvider,
    ) -> Result<TableId> {
        let name = name.to_ascii_lowercase();
        if self.table_names.contains_key(&name) || self.virtual_names.contains_key(&name) {
            return Err(Error::catalog(format!("table '{name}' already exists")));
        }
        let id = TableId(self.next_table);
        self.next_table += 1;
        self.virtual_tables.insert(
            id,
            VirtualTableDef {
                id,
                name: name.clone(),
                schema,
                provider,
            },
        );
        self.virtual_names.insert(name, id);
        Ok(id)
    }

    /// Resolve a name to a base or virtual relation.
    pub fn resolve_relation(&self, name: &str) -> Result<Relation<'_>> {
        let lower = name.to_ascii_lowercase();
        if let Some(id) = self.table_names.get(&lower) {
            return Ok(Relation::Base(self.table(*id)?));
        }
        if let Some(id) = self.virtual_names.get(&lower) {
            return Ok(Relation::Virtual(&self.virtual_tables[id]));
        }
        Err(Error::binder(format!("unknown table '{name}'")))
    }

    /// The virtual-table definition behind `id`, if any.
    pub fn virtual_table(&self, id: TableId) -> Option<&VirtualTableDef> {
        self.virtual_tables.get(&id)
    }

    /// Iterate over registered virtual tables.
    pub fn virtual_tables(&self) -> impl Iterator<Item = &VirtualTableDef> {
        self.virtual_tables.values()
    }

    /// The entry of a table by id.
    pub fn table(&self, id: TableId) -> Result<&TableEntry> {
        self.tables
            .get(&id)
            .map(Arc::as_ref)
            .ok_or_else(|| Error::catalog(format!("no table with id {id}")))
    }

    /// The entry of a table by name.
    pub fn table_by_name(&self, name: &str) -> Result<&TableEntry> {
        self.table(self.resolve_table(name)?)
    }

    /// Mutable entry of a table by id. Copies the entry if other snapshots
    /// still reference it (copy-on-write), so published snapshots never
    /// observe the mutation.
    pub fn table_mut(&mut self, id: TableId) -> Result<&mut TableEntry> {
        self.tables
            .get_mut(&id)
            .map(Arc::make_mut)
            .ok_or_else(|| Error::catalog(format!("no table with id {id}")))
    }

    /// Iterate over all tables.
    pub fn tables(&self) -> impl Iterator<Item = &TableEntry> {
        self.tables.values().map(Arc::as_ref)
    }

    // ---- index DDL -----------------------------------------------------------

    /// Create a secondary index and populate it from the table's rows.
    pub fn create_index(
        &mut self,
        name: &str,
        table: TableId,
        columns: Vec<usize>,
        unique: bool,
    ) -> Result<IndexId> {
        let name = name.to_ascii_lowercase();
        if self.index_names.contains_key(&name) {
            return Err(Error::catalog(format!("index '{name}' already exists")));
        }
        let entry = self.table(table)?;
        for &c in &columns {
            if c >= entry.meta.schema.len() {
                return Err(Error::catalog(format!("index column {c} out of range")));
            }
        }
        if columns.is_empty() {
            return Err(Error::catalog("index needs at least one column"));
        }
        let tree = BTreeFile::create(Arc::clone(&self.pool))?;
        // Populate from the heap: one entry per *version*, so snapshot reads
        // through the index keep working for superseded rows. Uniqueness is
        // enforced among live versions only (the caller's DDL X lock
        // guarantees no uncommitted markers are in flight).
        let heap = Arc::clone(&entry.heap);
        let mut seen_keys: Option<std::collections::HashSet<Vec<u8>>> =
            unique.then(std::collections::HashSet::new);
        for item in heap.scan_versions() {
            let (rid, meta, row) = item?;
            let vals: Vec<Value> = columns.iter().map(|&c| row.get(c).clone()).collect();
            if meta.end == ingot_common::mvcc::TS_INF {
                if let Some(seen) = &mut seen_keys {
                    let bare = ingot_storage::encode_key(&vals);
                    if !seen.insert(bare) {
                        return Err(Error::constraint(format!(
                            "duplicate key in unique index '{name}'"
                        )));
                    }
                }
            }
            let key = IndexEntry::stored_key(&vals, rid);
            tree.insert(&key, &rid.pack().to_le_bytes())?;
        }
        let id = IndexId(self.next_index);
        self.next_index += 1;
        let idx = IndexEntry {
            meta: IndexMeta {
                id,
                name: name.clone(),
                table,
                columns,
                unique,
                is_virtual: false,
            },
            tree: Some(Arc::new(tree)),
        };
        self.indexes.insert(id, Arc::new(idx));
        self.index_names.insert(name, id);
        Ok(id)
    }

    /// Register a *virtual* (hypothetical) index: visible to the optimizer's
    /// what-if mode, never materialised, free to create and drop.
    pub fn add_virtual_index(&mut self, table: TableId, columns: Vec<usize>) -> Result<IndexId> {
        let entry = self.table(table)?;
        for &c in &columns {
            if c >= entry.meta.schema.len() {
                return Err(Error::catalog(format!("index column {c} out of range")));
            }
        }
        let table_name = entry.meta.name.clone();
        let id = IndexId(self.next_index);
        self.next_index += 1;
        let name = format!("$virtual_{}_{}", table_name, id.raw());
        let idx = IndexEntry {
            meta: IndexMeta {
                id,
                name: name.clone(),
                table,
                columns,
                unique: false,
                is_virtual: true,
            },
            tree: None,
        };
        self.indexes.insert(id, Arc::new(idx));
        self.index_names.insert(name, id);
        Ok(id)
    }

    /// Remove every virtual index (end of a what-if session).
    pub fn clear_virtual_indexes(&mut self) {
        let ids: Vec<IndexId> = self
            .indexes
            .values()
            .filter(|e| e.meta.is_virtual)
            .map(|e| e.meta.id)
            .collect();
        for id in ids {
            if let Some(e) = self.indexes.remove(&id) {
                self.index_names.remove(&e.meta.name);
            }
        }
    }

    /// Drop an index by name.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        let id = self
            .index_names
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::catalog(format!("unknown index '{name}'")))?;
        self.indexes.remove(&id);
        Ok(())
    }

    /// The entry of an index by id.
    pub fn index(&self, id: IndexId) -> Result<&IndexEntry> {
        self.indexes
            .get(&id)
            .map(Arc::as_ref)
            .ok_or_else(|| Error::catalog(format!("no index with id {id}")))
    }

    /// The entry of an index by name.
    pub fn index_by_name(&self, name: &str) -> Result<&IndexEntry> {
        let id = self
            .index_names
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::catalog(format!("unknown index '{name}'")))?;
        self.index(*id)
    }

    /// All indexes (including virtual ones) on `table`.
    pub fn indexes_of(&self, table: TableId) -> Vec<&IndexEntry> {
        let mut v: Vec<&IndexEntry> = self
            .indexes
            .values()
            .map(Arc::as_ref)
            .filter(|e| e.meta.table == table)
            .collect();
        v.sort_by_key(|e| e.meta.id);
        v
    }

    /// All indexes in the catalog.
    pub fn indexes(&self) -> impl Iterator<Item = &IndexEntry> {
        self.indexes.values().map(Arc::as_ref)
    }

    // ---- checkpoint persistence ----------------------------------------------

    /// Serialize every base table and index (including virtual ones, which
    /// are metadata-only) to a checkpoint schema blob. See
    /// [`crate::persist`] for the format and the name-not-id rationale.
    /// Statistics are not captured — they are recomputable.
    pub fn dump_schema(&self) -> Vec<u8> {
        let mut table_entries: Vec<&Arc<TableEntry>> = self.tables.values().collect();
        table_entries.sort_by_key(|e| e.meta.id);
        let tables = table_entries
            .iter()
            .map(|e| crate::persist::TableDump {
                name: e.meta.name.clone(),
                schema: e.meta.schema.clone(),
                primary_key: e.meta.primary_key.clone(),
                storage: e.meta.storage,
                heap_file: e.heap.file_id().raw(),
                heap_main_pages: e.heap.stats().main_pages,
                primary_file: e.primary.as_ref().map(|p| p.file_id().raw()),
            })
            .collect();
        let mut index_entries: Vec<&Arc<IndexEntry>> = self
            .indexes
            .values()
            .filter(|e| !e.meta.is_virtual)
            .collect();
        index_entries.sort_by_key(|e| e.meta.id);
        let indexes = index_entries
            .iter()
            .map(|e| crate::persist::IndexDump {
                name: e.meta.name.clone(),
                table: self
                    .tables
                    .get(&e.meta.table)
                    .map(|t| t.meta.name.clone())
                    .unwrap_or_default(),
                columns: e.meta.columns.clone(),
                unique: e.meta.unique,
                tree_file: e.tree.as_ref().map(|t| t.file_id().raw()),
            })
            .collect();
        crate::persist::SchemaDump { tables, indexes }.encode()
    }

    /// Rebuild catalog contents from a checkpoint schema `blob` by
    /// re-attaching the existing storage files (no data is read beyond the
    /// heads needed to validate structure). Ids are re-assigned in blob
    /// (creation) order; names are preserved. Fails on name collisions with
    /// already-registered objects, leaving partially attached entries in
    /// place — callers attach into a fresh catalog at boot.
    pub fn attach_schema(&mut self, blob: &[u8]) -> Result<()> {
        use ingot_storage::FileId;
        let dump = crate::persist::SchemaDump::decode(blob)?;
        for t in &dump.tables {
            if self.table_names.contains_key(&t.name) || self.virtual_names.contains_key(&t.name) {
                return Err(Error::catalog(format!(
                    "attach: table '{}' already exists",
                    t.name
                )));
            }
            for &pk in &t.primary_key {
                if pk >= t.schema.len() {
                    return Err(Error::catalog(format!(
                        "attach: primary key column {pk} out of range for '{}'",
                        t.name
                    )));
                }
            }
            let heap = Arc::new(HeapFile::open(
                Arc::clone(&self.pool),
                FileId(t.heap_file),
                t.heap_main_pages,
            )?);
            let primary = match t.primary_file {
                Some(f) => Some(Arc::new(BTreeFile::open(
                    Arc::clone(&self.pool),
                    FileId(f),
                )?)),
                None => None,
            };
            let id = TableId(self.next_table);
            self.next_table += 1;
            let entry = TableEntry {
                meta: TableMeta {
                    id,
                    name: t.name.clone(),
                    schema: t.schema.clone(),
                    primary_key: t.primary_key.clone(),
                    storage: t.storage,
                },
                heap,
                primary,
                stats: None,
            };
            self.tables.insert(id, Arc::new(entry));
            self.table_names.insert(t.name.clone(), id);
        }
        for i in &dump.indexes {
            if self.index_names.contains_key(&i.name) {
                return Err(Error::catalog(format!(
                    "attach: index '{}' already exists",
                    i.name
                )));
            }
            let table = self.resolve_table(&i.table)?;
            let n_cols = self.table(table)?.meta.schema.len();
            for &c in &i.columns {
                if c >= n_cols {
                    return Err(Error::catalog(format!(
                        "attach: index column {c} out of range for '{}'",
                        i.name
                    )));
                }
            }
            let tree = match i.tree_file {
                Some(f) => Some(Arc::new(BTreeFile::open(
                    Arc::clone(&self.pool),
                    FileId(f),
                )?)),
                None => None,
            };
            let id = IndexId(self.next_index);
            self.next_index += 1;
            let idx = IndexEntry {
                meta: IndexMeta {
                    id,
                    name: i.name.clone(),
                    table,
                    columns: i.columns.clone(),
                    unique: i.unique,
                    is_virtual: i.tree_file.is_none(),
                },
                tree,
            };
            self.indexes.insert(id, Arc::new(idx));
            self.index_names.insert(i.name.clone(), id);
        }
        Ok(())
    }

    // ---- row mutation (index-maintaining) -------------------------------------
    //
    // These take `&self`: the heap and tree files are internally synchronised,
    // so row mutation works through any snapshot of the catalog. The caller
    // must hold the engine-level exclusive table lock — the constraint checks
    // below are check-then-act and rely on single-writer-per-table discipline.

    /// Insert a row into `table`, maintaining the clustered tree and all
    /// secondary indexes. Enforces primary-key uniqueness when a clustered
    /// tree exists and unique-index constraints always.
    pub fn insert_row(&self, table: TableId, row: &Row) -> Result<RowId> {
        let entry = self.table(table)?;
        let row = entry.meta.schema.check_row(row)?;
        // Constraint checks before touching storage.
        if let Some(primary) = &entry.primary {
            let pk = entry.pk_values(&row);
            if primary.get(&ingot_storage::encode_key(&pk))?.is_some() {
                return Err(Error::constraint(format!(
                    "duplicate primary key in '{}'",
                    entry.meta.name
                )));
            }
        }
        for idx in self.indexes_of(table) {
            if idx.meta.unique && !idx.meta.is_virtual {
                let vals: Vec<Value> = idx
                    .meta
                    .columns
                    .iter()
                    .map(|&c| row.get(c).clone())
                    .collect();
                if !idx.probe_eq(&vals)?.is_empty() {
                    return Err(Error::constraint(format!(
                        "duplicate key in unique index '{}'",
                        idx.meta.name
                    )));
                }
            }
        }
        let entry = self.table(table)?;
        let rid = entry.heap.insert(&row)?;
        if let Some(primary) = &entry.primary {
            let pk = entry.pk_values(&row);
            primary.insert(&ingot_storage::encode_key(&pk), &rid.pack().to_le_bytes())?;
        }
        for idx in self.indexes_of(table) {
            if idx.meta.is_virtual {
                continue;
            }
            let vals: Vec<Value> = idx
                .meta
                .columns
                .iter()
                .map(|&c| row.get(c).clone())
                .collect();
            let key = IndexEntry::stored_key(&vals, rid);
            idx.tree
                .as_ref()
                .expect("materialised index")
                .insert(&key, &rid.pack().to_le_bytes())?;
        }
        Ok(rid)
    }

    /// Delete the row at `rid` from `table`, maintaining indexes.
    pub fn delete_row(&self, table: TableId, rid: RowId) -> Result<()> {
        let entry = self.table(table)?;
        let row = entry.heap.get(rid)?;
        if let Some(primary) = &entry.primary {
            let pk = entry.pk_values(&row);
            primary.delete(&ingot_storage::encode_key(&pk))?;
        }
        for idx in self.indexes_of(table) {
            if idx.meta.is_virtual {
                continue;
            }
            let vals: Vec<Value> = idx
                .meta
                .columns
                .iter()
                .map(|&c| row.get(c).clone())
                .collect();
            let key = IndexEntry::stored_key(&vals, rid);
            idx.tree
                .as_ref()
                .expect("materialised index")
                .delete(&key)?;
        }
        entry.heap.delete(rid)
    }

    /// Replace the row at `rid` with `new_row`, maintaining indexes.
    /// Returns the (possibly moved) row id.
    pub fn update_row(&self, table: TableId, rid: RowId, new_row: &Row) -> Result<RowId> {
        let entry = self.table(table)?;
        let new_row = entry.meta.schema.check_row(new_row)?;
        let old_row = entry.heap.get(rid)?;
        let new_rid = entry.heap.update(rid, &new_row)?;
        let entry = self.table(table)?;
        if let Some(primary) = &entry.primary {
            let old_pk = entry.pk_values(&old_row);
            let new_pk = entry.pk_values(&new_row);
            if old_pk != new_pk || new_rid != rid {
                primary.delete(&ingot_storage::encode_key(&old_pk))?;
                primary.insert(
                    &ingot_storage::encode_key(&new_pk),
                    &new_rid.pack().to_le_bytes(),
                )?;
            }
        }
        for idx in self.indexes_of(table) {
            if idx.meta.is_virtual {
                continue;
            }
            let old_vals: Vec<Value> = idx
                .meta
                .columns
                .iter()
                .map(|&c| old_row.get(c).clone())
                .collect();
            let new_vals: Vec<Value> = idx
                .meta
                .columns
                .iter()
                .map(|&c| new_row.get(c).clone())
                .collect();
            if old_vals != new_vals || new_rid != rid {
                let tree = idx.tree.as_ref().expect("materialised index");
                tree.delete(&IndexEntry::stored_key(&old_vals, rid))?;
                tree.insert(
                    &IndexEntry::stored_key(&new_vals, new_rid),
                    &new_rid.pack().to_le_bytes(),
                )?;
            }
        }
        Ok(new_rid)
    }

    // ---- MODIFY (storage-structure rebuild) -----------------------------------

    /// `MODIFY table TO structure`: rebuild the table compactly in the new
    /// structure and rebuild all its secondary indexes (row ids change).
    ///
    /// Only the *currently visible* rows survive: version history is
    /// truncated to single committed versions (stamp 0). The caller's DDL
    /// X lock keeps writers out; snapshots opened before the rebuild keep
    /// reading the old storage handles through their catalog snapshot.
    pub fn modify_storage(&mut self, table: TableId, to: StorageStructure) -> Result<()> {
        let entry = self.table(table)?;
        let latest = ingot_common::Snapshot::latest();
        let rows: Vec<Row> = entry
            .scan_visible(&latest)
            .map(|r| r.map(|(_, row)| row))
            .collect::<Result<_>>()?;
        // Size the new main extent to hold all rows without overflow. Each
        // record also costs its version header plus a 4-byte slot entry;
        // ~2 % slack absorbs the per-page fragmentation so the rebuild stays
        // compact (a rebuild that *grew* the table would penalise every
        // scan).
        let bytes: usize = rows.iter().map(Row::byte_size).sum::<usize>()
            + rows.len() * (ingot_storage::VERSION_HEADER + 4);
        let pages_needed = (bytes + bytes / 50) / (ingot_storage::PAGE_SIZE - 64) + 1;
        let new_heap = Arc::new(HeapFile::create(Arc::clone(&self.pool), pages_needed)?);
        let mut rids = Vec::with_capacity(rows.len());
        for row in &rows {
            rids.push(new_heap.insert(row)?);
        }
        let primary = if to == StorageStructure::BTree {
            let entry = self.table(table)?;
            if entry.meta.primary_key.is_empty() {
                return Err(Error::catalog(format!(
                    "cannot modify '{}' to BTREE: no primary key",
                    entry.meta.name
                )));
            }
            let tree = BTreeFile::create(Arc::clone(&self.pool))?;
            let pk_cols = entry.meta.primary_key.clone();
            for (row, rid) in rows.iter().zip(&rids) {
                let pk: Vec<Value> = pk_cols.iter().map(|&c| row.get(c).clone()).collect();
                let key = ingot_storage::encode_key(&pk);
                if tree.insert(&key, &rid.pack().to_le_bytes())?.is_some() {
                    return Err(Error::constraint(format!(
                        "duplicate primary key while rebuilding '{}'",
                        self.table(table)?.meta.name
                    )));
                }
            }
            Some(Arc::new(tree))
        } else {
            None
        };
        // Rebuild secondary indexes against the new row ids.
        let index_ids: Vec<IndexId> = self
            .indexes_of(table)
            .iter()
            .filter(|e| !e.meta.is_virtual)
            .map(|e| e.meta.id)
            .collect();
        for iid in index_ids {
            let columns = self.indexes[&iid].meta.columns.clone();
            let tree = BTreeFile::create(Arc::clone(&self.pool))?;
            for (row, rid) in rows.iter().zip(&rids) {
                let vals: Vec<Value> = columns.iter().map(|&c| row.get(c).clone()).collect();
                tree.insert(
                    &IndexEntry::stored_key(&vals, *rid),
                    &rid.pack().to_le_bytes(),
                )?;
            }
            Arc::make_mut(self.indexes.get_mut(&iid).expect("index present")).tree =
                Some(Arc::new(tree));
        }
        let entry = self.table_mut(table)?;
        entry.heap = new_heap;
        entry.primary = primary;
        entry.meta.storage = to;
        Ok(())
    }

    // ---- statistics ------------------------------------------------------------

    /// `CREATE STATISTICS`: build histograms for the given columns (all
    /// columns when `columns` is empty) by scanning the table at the latest
    /// snapshot.
    pub fn collect_statistics(
        &mut self,
        table: TableId,
        columns: &[usize],
        now_secs: u64,
    ) -> Result<()> {
        self.collect_statistics_snapshot(
            table,
            columns,
            now_secs,
            &ingot_common::Snapshot::latest(),
        )
    }

    /// Snapshot-read variant of [`Catalog::collect_statistics`]: scans only
    /// the versions visible under `snap`, so statistics collection needs no
    /// table lock at all — concurrent writers append new versions the scan
    /// simply does not see.
    pub fn collect_statistics_snapshot(
        &mut self,
        table: TableId,
        columns: &[usize],
        now_secs: u64,
        snap: &ingot_common::Snapshot,
    ) -> Result<()> {
        let entry = self.table(table)?;
        let cols: Vec<usize> = if columns.is_empty() {
            (0..entry.meta.schema.len()).collect()
        } else {
            columns.to_vec()
        };
        let mut per_col: Vec<Vec<Value>> = vec![Vec::new(); cols.len()];
        let mut rows = 0u64;
        for item in entry.scan_visible(snap) {
            let (_, row) = item?;
            rows += 1;
            for (slot, &c) in cols.iter().enumerate() {
                per_col[slot].push(row.get(c).clone());
            }
        }
        let heap_stats = entry.heap.stats();
        let mut stats = match &entry.stats {
            Some(existing) => existing.clone(),
            None => TableStatistics::default(),
        };
        stats.row_count = rows;
        stats.pages = heap_stats.total_pages();
        stats.collected_at_secs = now_secs;
        for (slot, &c) in cols.iter().enumerate() {
            stats.columns.insert(
                c,
                ColumnStats {
                    histogram: Histogram::build(&per_col[slot], DEFAULT_BUCKETS),
                },
            );
        }
        self.table_mut(table)?.stats = Some(stats);
        Ok(())
    }

    /// Total pages across all tables and materialised indexes — the "size of
    /// the database" number Fig 7 compares.
    pub fn total_data_pages(&self) -> u64 {
        let tables: u64 = self.tables.values().map(|t| t.data_pages()).sum();
        let indexes: u64 = self.indexes.values().map(|i| i.pages()).sum();
        tables + indexes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_common::{Column, DataType, EngineConfig, SimClock};
    use ingot_storage::StorageEngine;

    fn catalog() -> Catalog {
        let cfg = EngineConfig::default();
        let storage = StorageEngine::in_memory(&cfg, SimClock::new());
        Catalog::new(Arc::clone(storage.pool()), 2)
    }

    fn people_schema() -> Schema {
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("name", DataType::Str),
            Column::new("age", DataType::Int),
        ])
    }

    fn sample_row(i: i64) -> Row {
        Row::new(vec![
            Value::Int(i),
            Value::Str(format!("p{i}")),
            Value::Int(i % 50),
        ])
    }

    #[test]
    fn create_and_resolve_table() {
        let mut c = catalog();
        let id = c.create_table("People", people_schema(), vec![0]).unwrap();
        assert_eq!(c.resolve_table("people").unwrap(), id);
        assert_eq!(c.resolve_table("PEOPLE").unwrap(), id);
        assert!(c.create_table("people", people_schema(), vec![0]).is_err());
        assert!(c.resolve_table("ghosts").is_err());
    }

    #[test]
    fn insert_and_index_probe() {
        let mut c = catalog();
        let t = c.create_table("people", people_schema(), vec![0]).unwrap();
        for i in 0..200 {
            c.insert_row(t, &sample_row(i)).unwrap();
        }
        let idx = c.create_index("people_age", t, vec![2], false).unwrap();
        let rids = c.index(idx).unwrap().probe_eq(&[Value::Int(7)]).unwrap();
        assert_eq!(rids.len(), 4); // 7, 57, 107, 157
        for rid in rids {
            let row = c.table(t).unwrap().heap.get(rid).unwrap();
            assert_eq!(row.get(2), &Value::Int(7));
        }
    }

    #[test]
    fn index_is_maintained_by_later_inserts_and_deletes() {
        let mut c = catalog();
        let t = c.create_table("people", people_schema(), vec![0]).unwrap();
        let idx = c.create_index("people_age", t, vec![2], false).unwrap();
        let rid = c.insert_row(t, &sample_row(1)).unwrap();
        assert_eq!(
            c.index(idx).unwrap().probe_eq(&[Value::Int(1)]).unwrap(),
            vec![rid]
        );
        c.delete_row(t, rid).unwrap();
        assert!(c
            .index(idx)
            .unwrap()
            .probe_eq(&[Value::Int(1)])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let mut c = catalog();
        let t = c.create_table("people", people_schema(), vec![0]).unwrap();
        c.create_index("people_id", t, vec![0], true).unwrap();
        c.insert_row(t, &sample_row(1)).unwrap();
        let err = c.insert_row(t, &sample_row(1)).unwrap_err();
        assert!(matches!(err, Error::Constraint(_)));
    }

    #[test]
    fn update_moves_index_entries() {
        let mut c = catalog();
        let t = c.create_table("people", people_schema(), vec![0]).unwrap();
        let idx = c.create_index("people_age", t, vec![2], false).unwrap();
        let rid = c.insert_row(t, &sample_row(1)).unwrap();
        let mut row = sample_row(1);
        row.set(2, Value::Int(99));
        let new_rid = c.update_row(t, rid, &row).unwrap();
        assert!(c
            .index(idx)
            .unwrap()
            .probe_eq(&[Value::Int(1)])
            .unwrap()
            .is_empty());
        assert_eq!(
            c.index(idx).unwrap().probe_eq(&[Value::Int(99)]).unwrap(),
            vec![new_rid]
        );
    }

    #[test]
    fn modify_to_btree_removes_overflow_and_enables_pk_lookup() {
        let mut c = catalog();
        let t = c.create_table("people", people_schema(), vec![0]).unwrap();
        for i in 0..2000 {
            c.insert_row(t, &sample_row(i)).unwrap();
        }
        assert!(c.table(t).unwrap().heap.stats().overflow_ratio() > 0.1);
        c.modify_storage(t, StorageStructure::BTree).unwrap();
        let entry = c.table(t).unwrap();
        assert_eq!(entry.meta.storage, StorageStructure::BTree);
        assert!(entry.heap.stats().overflow_pages == 0);
        assert_eq!(entry.heap.row_count(), 2000);
        let rid = entry.pk_lookup(&[Value::Int(1234)]).unwrap().unwrap();
        assert_eq!(entry.heap.get(rid).unwrap(), sample_row(1234));
        assert!(entry.pk_lookup(&[Value::Int(99999)]).unwrap().is_none());
    }

    #[test]
    fn modify_rebuilds_secondary_indexes() {
        let mut c = catalog();
        let t = c.create_table("people", people_schema(), vec![0]).unwrap();
        for i in 0..1000 {
            c.insert_row(t, &sample_row(i)).unwrap();
        }
        let idx = c.create_index("people_age", t, vec![2], false).unwrap();
        c.modify_storage(t, StorageStructure::BTree).unwrap();
        let rids = c.index(idx).unwrap().probe_eq(&[Value::Int(3)]).unwrap();
        assert_eq!(rids.len(), 20);
        for rid in rids {
            let row = c.table(t).unwrap().heap.get(rid).unwrap();
            assert_eq!(row.get(2), &Value::Int(3));
        }
    }

    #[test]
    fn virtual_indexes_are_metadata_only() {
        let mut c = catalog();
        let t = c.create_table("people", people_schema(), vec![0]).unwrap();
        c.insert_row(t, &sample_row(1)).unwrap();
        let v = c.add_virtual_index(t, vec![2]).unwrap();
        assert!(c.index(v).unwrap().meta.is_virtual);
        assert_eq!(c.index(v).unwrap().pages(), 0);
        assert!(c.index(v).unwrap().probe_eq(&[Value::Int(1)]).is_err());
        assert_eq!(c.indexes_of(t).len(), 1);
        c.clear_virtual_indexes();
        assert_eq!(c.indexes_of(t).len(), 0);
    }

    #[test]
    fn collect_statistics_builds_histograms() {
        let mut c = catalog();
        let t = c.create_table("people", people_schema(), vec![0]).unwrap();
        for i in 0..500 {
            c.insert_row(t, &sample_row(i)).unwrap();
        }
        c.collect_statistics(t, &[], 42).unwrap();
        let stats = c.table(t).unwrap().stats.as_ref().unwrap();
        assert_eq!(stats.row_count, 500);
        assert_eq!(stats.collected_at_secs, 42);
        assert!(stats.has_histogram(0) && stats.has_histogram(2));
        assert_eq!(stats.distinct_count(2), Some(50));
    }

    #[test]
    fn range_probe() {
        let mut c = catalog();
        let t = c.create_table("people", people_schema(), vec![0]).unwrap();
        for i in 0..100 {
            c.insert_row(t, &sample_row(i)).unwrap();
        }
        let idx = c.create_index("people_id_idx", t, vec![0], false).unwrap();
        let rids = c
            .index(idx)
            .unwrap()
            .probe_range(Some(&Value::Int(10)), Some(&Value::Int(19)))
            .unwrap();
        assert_eq!(rids.len(), 10);
    }

    #[test]
    fn drop_table_removes_indexes() {
        let mut c = catalog();
        let t = c.create_table("people", people_schema(), vec![0]).unwrap();
        c.create_index("people_age", t, vec![2], false).unwrap();
        c.drop_table("people").unwrap();
        assert!(c.resolve_table("people").is_err());
        assert!(c.index_by_name("people_age").is_err());
    }
}
