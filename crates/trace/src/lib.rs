#![forbid(unsafe_code)]
//! Structured tracing for the Ingot DBMS.
//!
//! The paper's monitor (§IV-A, Fig 3) records statement-level aggregates —
//! estimated vs. actual cost, optimizer time, wall-clock. That is enough for
//! the analyzer's rules but blind to *where inside a plan* time and I/O go.
//! This crate adds the missing layer:
//!
//! * **Stage spans** ([`Stage`], [`StageSpan`]) — parse → bind → optimize →
//!   execute → result timings per statement.
//! * **Operator spans** ([`OperatorSpan`], [`SpanCollector`]) — one span per
//!   physical plan node with rows-in/rows-out, exclusive tuple work, pages
//!   read and elapsed time; the executor fills them in during an
//!   instrumented run.
//! * **Latency histograms** ([`LatencyHistogram`]) — log₂-bucketed
//!   wall-clock distributions per statement hash, p50/p95/p99 derivable.
//! * **Aggregation** ([`Tracer`]) — per-hash operator statistics and
//!   histograms plus a ring of recent [`StatementTrace`]s, exported through
//!   the `ima$operator_stats` and `ima$latency_histograms` virtual tables.
//! * **Metrics export** ([`MetricsSnapshot`]) — Prometheus-text-format
//!   rendering for the shell's `\metrics` and the daemon's `wl_metrics`
//!   persistence.
//!
//! Tracing is feature-gated at runtime: when the flag is off the statement
//! path pays one atomic load and nothing else. When on, the tracer's own
//! bookkeeping time is reported back to the engine and charged to
//! `monitor_ns`, keeping the paper's Fig 5 overhead accounting honest.
//!
//! * **Wait events** ([`WaitEvent`], [`WaitGuard`], [`WaitRegistry`]) — the
//!   closed taxonomy of time *lost* (lock queues, fsync barriers, buffer
//!   I/O, retry backoff) feeding `ima$wait_events` and the ASH sampler. The
//!   types live in `ingot_common::waits` because the instrumented wait
//!   paths sit below this crate in the dependency graph; they are
//!   re-exported here so observability consumers have one import surface.

pub mod histogram;
pub mod metrics;
pub mod server_stats;
pub mod span;
pub mod tracer;

pub use histogram::{bucket_bounds, bucket_index, LatencyHistogram};
pub use metrics::{MetricFamily, MetricKind, MetricsSnapshot, Sample};
pub use server_stats::ServerStats;
pub use span::{
    render_operator_tree, OperatorSpan, SpanCollector, SpanFrame, Stage, StageSpan, StatementTrace,
};
pub use tracer::{OperatorStats, TraceBuilder, TraceConfig, Tracer};

pub use ingot_common::waits::{
    bind_session, charge_ambient, SessionBinding, SessionWaits, WaitCounters, WaitEvent, WaitGuard,
    WaitRecord, WaitRegistry, WaitRegistryHandle, WaitTotal, WAIT_EVENT_COUNT,
};
