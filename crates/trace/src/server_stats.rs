//! Wire-server counters exported through [`MetricsSnapshot`].
//!
//! `ingot-server` charges one [`ServerStats`] per process: connection churn,
//! frame and byte traffic, statements served and error/reap counts. The
//! struct lives here (not in the server crate) so the export surface is the
//! same one the engine's own metrics ride — the server merges these families
//! into `Engine::metrics_snapshot()` output and serves the union.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::metrics::{MetricKind, MetricsSnapshot, Sample};

/// Monotonic counters describing one server process's wire traffic.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted (including ones later rejected at handshake).
    pub connections_opened: AtomicU64,
    /// Connections fully torn down.
    pub connections_closed: AtomicU64,
    /// Connections force-closed by the orphan reaper (heartbeat expiry).
    pub connections_reaped: AtomicU64,
    /// Request frames read.
    pub frames_in: AtomicU64,
    /// Response frames written.
    pub frames_out: AtomicU64,
    /// Request payload bytes read (frame bodies, excluding length prefixes).
    pub bytes_in: AtomicU64,
    /// Response payload bytes written.
    pub bytes_out: AtomicU64,
    /// Statements executed on behalf of wire clients.
    pub statements_served: AtomicU64,
    /// Error responses sent.
    pub errors_sent: AtomicU64,
    /// Heartbeat frames answered.
    pub heartbeats: AtomicU64,
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append this struct's families to `snap` (used by the server to merge
    /// wire counters into the engine's own metrics snapshot).
    pub fn contribute(&self, snap: &mut MetricsSnapshot) {
        let c = |v: &AtomicU64| vec![Sample::plain(v.load(Ordering::Relaxed) as f64)];
        snap.push(
            "ingot_server_connections_opened_total",
            "Wire connections accepted by the server.",
            MetricKind::Counter,
            c(&self.connections_opened),
        );
        snap.push(
            "ingot_server_connections_closed_total",
            "Wire connections fully torn down.",
            MetricKind::Counter,
            c(&self.connections_closed),
        );
        snap.push(
            "ingot_server_connections_reaped_total",
            "Orphaned wire connections reaped after heartbeat expiry.",
            MetricKind::Counter,
            c(&self.connections_reaped),
        );
        snap.push(
            "ingot_server_frames_in_total",
            "Request frames read from wire clients.",
            MetricKind::Counter,
            c(&self.frames_in),
        );
        snap.push(
            "ingot_server_frames_out_total",
            "Response frames written to wire clients.",
            MetricKind::Counter,
            c(&self.frames_out),
        );
        snap.push(
            "ingot_server_bytes_in_total",
            "Request body bytes read from wire clients.",
            MetricKind::Counter,
            c(&self.bytes_in),
        );
        snap.push(
            "ingot_server_bytes_out_total",
            "Response body bytes written to wire clients.",
            MetricKind::Counter,
            c(&self.bytes_out),
        );
        snap.push(
            "ingot_server_statements_served_total",
            "Statements executed on behalf of wire clients.",
            MetricKind::Counter,
            c(&self.statements_served),
        );
        snap.push(
            "ingot_server_errors_sent_total",
            "Error responses sent to wire clients.",
            MetricKind::Counter,
            c(&self.errors_sent),
        );
        snap.push(
            "ingot_server_heartbeats_total",
            "Heartbeat frames answered.",
            MetricKind::Counter,
            c(&self.heartbeats),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contribute_exports_every_counter() {
        let stats = ServerStats::new();
        stats.frames_in.fetch_add(3, Ordering::Relaxed);
        stats.statements_served.fetch_add(2, Ordering::Relaxed);
        let mut snap = MetricsSnapshot::new();
        stats.contribute(&mut snap);
        assert_eq!(snap.families.len(), 10);
        let text = snap.render_prometheus();
        assert!(text.contains("ingot_server_frames_in_total 3"), "{text}");
        assert!(
            text.contains("ingot_server_statements_served_total 2"),
            "{text}"
        );
    }
}
