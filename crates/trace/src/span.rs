//! Span model: pipeline stages and per-operator execution spans.
//!
//! A statement moving through the engine produces one [`StageSpan`] per
//! pipeline stage (parse → bind → optimize → execute → result) and, while the
//! executor runs, one [`OperatorSpan`] per physical plan node. Spans carry the
//! evidence the paper's statement-level monitor cannot: *where inside the
//! plan* rows, pages and time went.

use ingot_common::{MonotonicClock, StmtHash};

/// Pipeline stage a statement passes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// SQL text → AST.
    Parse,
    /// AST → bound statement (catalog resolution).
    Bind,
    /// Bound statement → physical plan.
    Optimize,
    /// Plan execution (operators run inside this stage).
    Execute,
    /// Everything after execution: result materialisation, sensor
    /// bookkeeping, lock release — the wall-clock remainder.
    Result,
}

impl Stage {
    /// Stable lowercase name used in rendered output and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Bind => "bind",
            Stage::Optimize => "optimize",
            Stage::Execute => "execute",
            Stage::Result => "result",
        }
    }
}

/// Elapsed time of one pipeline stage.
#[derive(Debug, Clone, Copy)]
pub struct StageSpan {
    pub stage: Stage,
    pub elapsed_ns: u64,
}

/// One executed physical operator, with actuals alongside the optimizer's
/// estimates for the same node.
#[derive(Debug, Clone)]
pub struct OperatorSpan {
    /// Pre-order position in the plan tree (root = 0); stable across
    /// executions of the same plan, so aggregation can key on it.
    pub op_id: u32,
    /// `op_id` of the parent operator, `None` for the root.
    pub parent: Option<u32>,
    /// Tree depth (root = 0), for indented rendering.
    pub depth: u32,
    /// Operator name, e.g. `"HashJoin"`.
    pub op: String,
    /// Operator-specific detail, e.g. `" on protein via protein_pk eq(1)"`.
    pub detail: String,
    /// Optimizer-estimated output rows for this node.
    pub est_rows: f64,
    /// Optimizer-estimated total cost (CPU + I/O units) for this subtree.
    pub est_cost: f64,
    /// Sum of the direct children's `rows_out` (0 for leaves).
    pub rows_in: u64,
    /// Rows this operator produced.
    pub rows_out: u64,
    /// Tuple-processing work charged to this operator *exclusively* (children
    /// excluded). Summing over a plan's spans reproduces the statement-level
    /// `exec_cpu` the monitor records.
    pub tuples: u64,
    /// Pages read/written while this subtree ran (inclusive of children).
    pub pages: u64,
    /// Wall-clock time of this subtree (inclusive of children).
    pub elapsed_ns: u64,
}

/// Complete trace of one statement execution.
#[derive(Debug, Clone)]
pub struct StatementTrace {
    pub hash: StmtHash,
    pub wallclock_ns: u64,
    pub stages: Vec<StageSpan>,
    pub ops: Vec<OperatorSpan>,
}

/// Render a span list as an indented operator tree, one line per operator,
/// annotated with estimates and actuals — the body of `EXPLAIN ANALYZE`.
pub fn render_operator_tree(ops: &[OperatorSpan]) -> String {
    let mut out = String::new();
    for op in ops {
        let pad = "  ".repeat(op.depth as usize);
        out.push_str(&format!(
            "{pad}{}{}  (est rows={:.0}, act rows={}, tuples={}, pages={}, time={:.3} ms)\n",
            op.op,
            op.detail,
            op.est_rows,
            op.rows_out,
            op.tuples,
            op.pages,
            op.elapsed_ns as f64 / 1e6,
        ));
    }
    out
}

/// Open frame returned by [`SpanCollector::enter`]; hand it back to
/// [`SpanCollector::exit`] when the operator finishes.
#[derive(Debug)]
pub struct SpanFrame {
    idx: usize,
    saved_parent: Option<u32>,
    start_ns: u64,
}

/// Builds the operator-span list for one plan execution.
///
/// The executor calls [`enter`](Self::enter) before recursing into a node and
/// [`exit`](Self::exit) after; [`finish`](Self::finish) post-processes the
/// raw inclusive measurements into the `rows_in` / exclusive-`tuples` form of
/// [`OperatorSpan`].
pub struct SpanCollector {
    clock: MonotonicClock,
    spans: Vec<OperatorSpan>,
    current_parent: Option<u32>,
}

impl SpanCollector {
    pub fn new(clock: MonotonicClock) -> Self {
        SpanCollector {
            clock,
            spans: Vec::new(),
            current_parent: None,
        }
    }

    /// Open a span for one operator. Assigns the next pre-order id and makes
    /// it the parent of any span opened before the matching [`exit`].
    ///
    /// [`exit`]: Self::exit
    pub fn enter(&mut self, op: &str, detail: String, est_rows: f64, est_cost: f64) -> SpanFrame {
        let id = self.spans.len() as u32;
        let parent = self.current_parent;
        let depth = parent
            .map(|p| self.spans[p as usize].depth + 1)
            .unwrap_or(0);
        self.spans.push(OperatorSpan {
            op_id: id,
            parent,
            depth,
            op: op.to_string(),
            detail,
            est_rows,
            est_cost,
            rows_in: 0,
            rows_out: 0,
            tuples: 0,
            pages: 0,
            elapsed_ns: 0,
        });
        let saved_parent = self.current_parent;
        self.current_parent = Some(id);
        SpanFrame {
            idx: id as usize,
            saved_parent,
            start_ns: self.clock.now_nanos(),
        }
    }

    /// Close the span opened by `frame`. `tuples_incl` and `pages_incl` are
    /// measured inclusively (subtree totals); [`finish`](Self::finish) turns
    /// tuples into exclusive self-work.
    pub fn exit(&mut self, frame: SpanFrame, rows_out: u64, tuples_incl: u64, pages_incl: u64) {
        let elapsed = self.clock.now_nanos().saturating_sub(frame.start_ns);
        let span = &mut self.spans[frame.idx];
        span.rows_out = rows_out;
        span.tuples = tuples_incl;
        span.pages = pages_incl;
        span.elapsed_ns = elapsed;
        self.current_parent = frame.saved_parent;
    }

    /// Finalise: compute `rows_in` from children and convert inclusive tuple
    /// counts to exclusive self-work. The exclusive counts sum to the root's
    /// inclusive count, i.e. to the statement's `exec_cpu`.
    pub fn finish(mut self) -> Vec<OperatorSpan> {
        let n = self.spans.len();
        let mut child_rows = vec![0u64; n];
        let mut child_tuples = vec![0u64; n];
        for i in 0..n {
            if let Some(p) = self.spans[i].parent {
                child_rows[p as usize] += self.spans[i].rows_out;
                child_tuples[p as usize] += self.spans[i].tuples;
            }
        }
        for i in 0..n {
            self.spans[i].rows_in = child_rows[i];
            self.spans[i].tuples = self.spans[i].tuples.saturating_sub(child_tuples[i]);
        }
        self.spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_builds_preorder_tree_with_exclusive_tuples() {
        let clock = MonotonicClock::new();
        let mut c = SpanCollector::new(clock);
        // Root with two children; inclusive tuples 100, children 30 + 20.
        let root = c.enter("HashJoin", String::new(), 50.0, 123.0);
        let left = c.enter("SeqScan", " on a".into(), 40.0, 60.0);
        c.exit(left, 40, 30, 4);
        let right = c.enter("SeqScan", " on b".into(), 10.0, 20.0);
        c.exit(right, 10, 20, 2);
        c.exit(root, 25, 100, 6);
        let spans = c.finish();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].op_id, 0);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].parent, Some(0));
        assert_eq!(spans[1].depth, 1);
        // rows_in of root = children rows_out.
        assert_eq!(spans[0].rows_in, 50);
        // Exclusive tuples: 100 - (30 + 20) = 50; children keep their own.
        assert_eq!(spans[0].tuples, 50);
        assert_eq!(spans[1].tuples, 30);
        assert_eq!(spans[2].tuples, 20);
        // Exclusive sum equals root inclusive.
        let sum: u64 = spans.iter().map(|s| s.tuples).sum();
        assert_eq!(sum, 100);
    }

    #[test]
    fn render_indents_by_depth() {
        let clock = MonotonicClock::new();
        let mut c = SpanCollector::new(clock);
        let root = c.enter("Filter", String::new(), 1.0, 1.0);
        let child = c.enter("SeqScan", " on t".into(), 2.0, 2.0);
        c.exit(child, 2, 2, 1);
        c.exit(root, 1, 3, 1);
        let text = render_operator_tree(&c.finish());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("Filter"));
        assert!(lines[1].starts_with("  SeqScan on t"));
        assert!(lines[1].contains("act rows=2"));
        assert!(lines[1].contains("pages=1"));
    }

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(Stage::Parse.name(), "parse");
        assert_eq!(Stage::Result.name(), "result");
    }
}
