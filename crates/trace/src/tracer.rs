//! The tracer: per-statement trace collection and aggregation.
//!
//! [`Tracer`] is the long-lived sink the engine feeds. It keeps, per
//! statement hash, a [`LatencyHistogram`] of wall-clock times and aggregated
//! per-operator statistics (merged across executions of the same plan), plus
//! a ring buffer of the most recent complete [`StatementTrace`]s. Like the
//! monitor it measures its own bookkeeping time — the engine charges the
//! returned nanoseconds to `monitor_ns` so the paper's Fig 5 overhead
//! accounting stays honest.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use ingot_common::{MonotonicClock, RingBuffer, StmtHash};
use parking_lot::Mutex;

use crate::histogram::LatencyHistogram;
use crate::span::{OperatorSpan, Stage, StageSpan, StatementTrace};

/// Runtime configuration of the tracer (mirrors the `trace_*` knobs of
/// `EngineConfig`, restated here so the crate stays below `ingot-common`'s
/// consumers in the dependency order without importing the full config).
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Start enabled?
    pub enabled: bool,
    /// Distinct statement hashes to keep aggregates for.
    pub statement_capacity: usize,
    /// Ring-buffer capacity of recent statement traces.
    pub trace_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            statement_capacity: 512,
            trace_capacity: 1024,
        }
    }
}

/// Aggregated statistics for one operator position (`op_id`) of one
/// statement's plan, merged across executions.
#[derive(Debug, Clone)]
pub struct OperatorStats {
    pub op_id: u32,
    pub parent: Option<u32>,
    pub depth: u32,
    pub op: String,
    pub detail: String,
    /// Executions merged into this entry.
    pub executions: u64,
    pub rows_in: u64,
    pub rows_out: u64,
    pub tuples: u64,
    pub pages: u64,
    pub elapsed_ns: u64,
    /// Estimates from the most recent execution (plans re-optimize, so the
    /// latest estimate is the comparable one).
    pub est_rows: f64,
    pub est_cost: f64,
}

#[derive(Debug, Default)]
struct StmtStats {
    histogram: LatencyHistogram,
    ops: Vec<OperatorStats>,
}

struct TracerState {
    /// Most recent complete traces, oldest evicted first.
    traces: RingBuffer<StatementTrace>,
    /// Per-hash aggregates.
    stats: HashMap<StmtHash, StmtStats>,
    /// Insertion order of hashes, for capacity eviction.
    order: VecDeque<StmtHash>,
    /// Hashes evicted from `stats` because capacity was reached.
    evictions: u64,
}

/// Long-lived trace sink. Cheap when disabled: the engine checks
/// [`enabled`](Self::enabled) (one atomic load) before building any spans.
pub struct Tracer {
    clock: MonotonicClock,
    enabled: AtomicBool,
    statement_capacity: usize,
    state: Mutex<TracerState>,
    self_time_ns: AtomicU64,
    statements_traced: AtomicU64,
}

impl Tracer {
    pub fn new(clock: MonotonicClock, config: &TraceConfig) -> Self {
        Tracer {
            clock,
            enabled: AtomicBool::new(config.enabled),
            statement_capacity: config.statement_capacity.max(1),
            state: Mutex::new(TracerState {
                traces: RingBuffer::new(config.trace_capacity.max(1)),
                stats: HashMap::new(),
                order: VecDeque::new(),
                evictions: 0,
            }),
            self_time_ns: AtomicU64::new(0),
            statements_traced: AtomicU64::new(0),
        }
    }

    /// Is runtime tracing on? One relaxed atomic load — the only cost the
    /// statement path pays when tracing is off.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip runtime tracing (`SET trace = on|off`).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds the tracer has spent on its own bookkeeping.
    pub fn self_time_ns(&self) -> u64 {
        self.self_time_ns.load(Ordering::Relaxed)
    }

    /// Statements whose traces were recorded.
    pub fn statements_traced(&self) -> u64 {
        self.statements_traced.load(Ordering::Relaxed)
    }

    fn stats_entry<'a>(&self, state: &'a mut TracerState, hash: StmtHash) -> &'a mut StmtStats {
        if !state.stats.contains_key(&hash) {
            while state.order.len() >= self.statement_capacity {
                if let Some(old) = state.order.pop_front() {
                    state.stats.remove(&old);
                    state.evictions += 1;
                }
            }
            state.order.push_back(hash);
            state.stats.insert(hash, StmtStats::default());
        }
        state.stats.get_mut(&hash).unwrap()
    }

    fn merge_ops(entry: &mut StmtStats, ops: &[OperatorSpan]) {
        // If the plan shape changed (different operator at the same
        // position, or different node count), restart the aggregate — mixing
        // rows across plans would be meaningless.
        let same_shape = entry.ops.len() == ops.len()
            && entry
                .ops
                .iter()
                .zip(ops)
                .all(|(a, b)| a.op_id == b.op_id && a.op == b.op && a.parent == b.parent);
        if !same_shape {
            entry.ops = ops
                .iter()
                .map(|s| OperatorStats {
                    op_id: s.op_id,
                    parent: s.parent,
                    depth: s.depth,
                    op: s.op.clone(),
                    detail: s.detail.clone(),
                    executions: 0,
                    rows_in: 0,
                    rows_out: 0,
                    tuples: 0,
                    pages: 0,
                    elapsed_ns: 0,
                    est_rows: s.est_rows,
                    est_cost: s.est_cost,
                })
                .collect();
        }
        for (agg, s) in entry.ops.iter_mut().zip(ops) {
            agg.executions += 1;
            agg.rows_in += s.rows_in;
            agg.rows_out += s.rows_out;
            agg.tuples += s.tuples;
            agg.pages += s.pages;
            agg.elapsed_ns += s.elapsed_ns;
            agg.est_rows = s.est_rows;
            agg.est_cost = s.est_cost;
            agg.detail = s.detail.clone();
        }
    }

    /// Record a complete statement trace: merge its operator spans into the
    /// per-hash aggregate, record the wall-clock latency, and push the trace
    /// onto the recent-traces ring. Returns the tracer's own bookkeeping
    /// time in nanoseconds (charge it to `monitor_ns`).
    pub fn record_statement(&self, trace: StatementTrace) -> u64 {
        let t0 = self.clock.now_nanos();
        {
            let mut state = self.state.lock();
            let entry = self.stats_entry(&mut state, trace.hash);
            Self::merge_ops(entry, &trace.ops);
            entry.histogram.record(trace.wallclock_ns);
            state.traces.push(trace);
        }
        self.statements_traced.fetch_add(1, Ordering::Relaxed);
        let dt = self.clock.now_nanos().saturating_sub(t0);
        self.self_time_ns.fetch_add(dt, Ordering::Relaxed);
        dt
    }

    /// Merge operator spans for `hash` without recording a latency sample or
    /// a recent trace — used by `EXPLAIN ANALYZE` when runtime tracing is
    /// off, so the instrumented run still lands in `ima$operator_stats`.
    /// Returns bookkeeping nanoseconds.
    pub fn record_operators(&self, hash: StmtHash, ops: &[OperatorSpan]) -> u64 {
        let t0 = self.clock.now_nanos();
        {
            let mut state = self.state.lock();
            let entry = self.stats_entry(&mut state, hash);
            Self::merge_ops(entry, ops);
        }
        let dt = self.clock.now_nanos().saturating_sub(t0);
        self.self_time_ns.fetch_add(dt, Ordering::Relaxed);
        dt
    }

    /// Aggregated operator statistics, `(hash, stats)` per operator row,
    /// ordered by hash then pre-order position.
    pub fn operator_stats(&self) -> Vec<(StmtHash, OperatorStats)> {
        let state = self.state.lock();
        let mut hashes: Vec<StmtHash> = state.stats.keys().copied().collect();
        hashes.sort();
        let mut out = Vec::new();
        for h in hashes {
            for op in &state.stats[&h].ops {
                out.push((h, op.clone()));
            }
        }
        out
    }

    /// Per-hash latency histograms (cloned snapshots), sorted by hash.
    pub fn histograms(&self) -> Vec<(StmtHash, LatencyHistogram)> {
        let state = self.state.lock();
        let mut out: Vec<(StmtHash, LatencyHistogram)> = state
            .stats
            .iter()
            .filter(|(_, s)| s.histogram.total() > 0)
            .map(|(h, s)| (*h, s.histogram.clone()))
            .collect();
        out.sort_by_key(|(h, _)| *h);
        out
    }

    /// The most recent complete statement traces, oldest first.
    pub fn recent_traces(&self) -> Vec<StatementTrace> {
        let state = self.state.lock();
        state.traces.iter().cloned().collect()
    }

    /// Hashes currently aggregated / capacity / evictions so far.
    pub fn occupancy(&self) -> (usize, usize, u64) {
        let state = self.state.lock();
        (state.stats.len(), self.statement_capacity, state.evictions)
    }
}

/// Accumulates the spans of one in-flight statement; the engine creates one
/// per statement when tracing is enabled and hands the finished
/// [`StatementTrace`] to [`Tracer::record_statement`].
#[derive(Debug)]
pub struct TraceBuilder {
    clock: MonotonicClock,
    start_ns: u64,
    stages: Vec<StageSpan>,
    ops: Vec<OperatorSpan>,
}

impl TraceBuilder {
    pub fn new(clock: MonotonicClock) -> Self {
        let start_ns = clock.now_nanos();
        TraceBuilder {
            clock,
            start_ns,
            stages: Vec::with_capacity(5),
            ops: Vec::new(),
        }
    }

    /// Record a completed pipeline stage.
    pub fn stage(&mut self, stage: Stage, elapsed_ns: u64) {
        self.stages.push(StageSpan { stage, elapsed_ns });
    }

    /// Attach the executor's operator spans.
    pub fn set_ops(&mut self, ops: Vec<OperatorSpan>) {
        self.ops = ops;
    }

    /// Nanoseconds since this builder was created.
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now_nanos().saturating_sub(self.start_ns)
    }

    /// Finalise into a [`StatementTrace`]. The `Result` stage is derived as
    /// the wall-clock remainder not covered by the recorded stages.
    pub fn finish(mut self, hash: StmtHash, wallclock_ns: u64) -> StatementTrace {
        let covered: u64 = self.stages.iter().map(|s| s.elapsed_ns).sum();
        self.stages.push(StageSpan {
            stage: Stage::Result,
            elapsed_ns: wallclock_ns.saturating_sub(covered),
        });
        StatementTrace {
            hash,
            wallclock_ns,
            stages: self.stages,
            ops: self.ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(op_id: u32, parent: Option<u32>, op: &str, rows_out: u64, tuples: u64) -> OperatorSpan {
        OperatorSpan {
            op_id,
            parent,
            depth: if parent.is_some() { 1 } else { 0 },
            op: op.to_string(),
            detail: String::new(),
            est_rows: 1.0,
            est_cost: 1.0,
            rows_in: 0,
            rows_out,
            tuples,
            pages: 1,
            elapsed_ns: 10,
        }
    }

    fn trace_of(hash: StmtHash, wall: u64, ops: Vec<OperatorSpan>) -> StatementTrace {
        StatementTrace {
            hash,
            wallclock_ns: wall,
            stages: vec![StageSpan {
                stage: Stage::Execute,
                elapsed_ns: wall,
            }],
            ops,
        }
    }

    #[test]
    fn aggregates_across_executions() {
        let t = Tracer::new(MonotonicClock::new(), &TraceConfig::default());
        let h = StmtHash::of("select 1");
        let ops = vec![
            span(0, None, "Project", 1, 1),
            span(1, Some(0), "Dual", 1, 0),
        ];
        t.record_statement(trace_of(h, 1_000, ops.clone()));
        t.record_statement(trace_of(h, 2_000, ops));
        let stats = t.operator_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].1.executions, 2);
        assert_eq!(stats[0].1.rows_out, 2);
        let hists = t.histograms();
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].1.total(), 2);
        assert_eq!(t.statements_traced(), 2);
        assert!(t.self_time_ns() > 0);
    }

    #[test]
    fn plan_change_resets_aggregate() {
        let t = Tracer::new(MonotonicClock::new(), &TraceConfig::default());
        let h = StmtHash::of("select 1");
        t.record_statement(trace_of(h, 100, vec![span(0, None, "SeqScan", 5, 5)]));
        t.record_statement(trace_of(h, 100, vec![span(0, None, "IndexScan", 1, 1)]));
        let stats = t.operator_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1.op, "IndexScan");
        assert_eq!(stats[0].1.executions, 1);
        assert_eq!(stats[0].1.rows_out, 1);
        // Histogram keeps both samples — latency is plan-independent.
        assert_eq!(t.histograms()[0].1.total(), 2);
    }

    #[test]
    fn capacity_evicts_oldest_hash() {
        let cfg = TraceConfig {
            enabled: true,
            statement_capacity: 2,
            trace_capacity: 8,
        };
        let t = Tracer::new(MonotonicClock::new(), &cfg);
        for i in 0..3 {
            let h = StmtHash::of(&format!("q{i}"));
            t.record_statement(trace_of(h, 100, vec![span(0, None, "Dual", 1, 0)]));
        }
        let (len, cap, evictions) = t.occupancy();
        assert_eq!(len, 2);
        assert_eq!(cap, 2);
        assert_eq!(evictions, 1);
        let hists = t.histograms();
        assert!(!hists.iter().any(|(h, _)| *h == StmtHash::of("q0")));
    }

    #[test]
    fn record_operators_skips_histogram() {
        let t = Tracer::new(MonotonicClock::new(), &TraceConfig::default());
        let h = StmtHash::of("explain analyze select 1");
        t.record_operators(h, &[span(0, None, "Dual", 1, 0)]);
        assert_eq!(t.operator_stats().len(), 1);
        assert!(t.histograms().is_empty());
        assert_eq!(t.statements_traced(), 0);
    }

    #[test]
    fn builder_derives_result_stage() {
        let clock = MonotonicClock::new();
        let mut b = TraceBuilder::new(clock);
        b.stage(Stage::Parse, 100);
        b.stage(Stage::Execute, 300);
        let tr = b.finish(StmtHash::of("x"), 1_000);
        assert_eq!(tr.stages.len(), 3);
        let result = tr.stages.last().unwrap();
        assert_eq!(result.stage, Stage::Result);
        assert_eq!(result.elapsed_ns, 600);
    }
}
