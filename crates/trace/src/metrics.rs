//! Prometheus-text-format metrics snapshot.
//!
//! [`MetricsSnapshot`] is an assembled, point-in-time view of the engine's
//! counters and histograms, renderable in the Prometheus text exposition
//! format (`# HELP` / `# TYPE` / samples). The engine builds one on demand;
//! the shell dumps it with `\metrics` and the daemon flattens it into the
//! workload database's `wl_metrics` table alongside snapshots.

/// Metric kind, mirroring the Prometheus `# TYPE` values used here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One sample within a family: optional name suffix (`_bucket`, `_sum`,
/// `_count` for histograms), label pairs, value.
#[derive(Debug, Clone)]
pub struct Sample {
    pub suffix: &'static str,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    pub fn plain(value: f64) -> Self {
        Sample {
            suffix: "",
            labels: Vec::new(),
            value,
        }
    }

    pub fn labelled(labels: Vec<(String, String)>, value: f64) -> Self {
        Sample {
            suffix: "",
            labels,
            value,
        }
    }
}

/// A named metric with its samples.
#[derive(Debug, Clone)]
pub struct MetricFamily {
    pub name: String,
    pub help: String,
    pub kind: MetricKind,
    pub samples: Vec<Sample>,
}

/// Point-in-time collection of metric families.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub families: Vec<MetricFamily>,
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

impl MetricsSnapshot {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a family; convenience for builders.
    pub fn push(&mut self, name: &str, help: &str, kind: MetricKind, samples: Vec<Sample>) {
        self.families.push(MetricFamily {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples,
        });
    }

    /// Render in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
            out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind.as_str()));
            for s in &fam.samples {
                out.push_str(&fam.name);
                out.push_str(s.suffix);
                if !s.labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in s.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("{}=\"{}\"", k, escape_label(v)));
                    }
                    out.push('}');
                }
                // Integral values render without a trailing ".0" so counters
                // look like counters.
                if s.value.fract() == 0.0 && s.value.abs() < 1e15 {
                    out.push_str(&format!(" {}\n", s.value as i64));
                } else {
                    out.push_str(&format!(" {}\n", s.value));
                }
            }
        }
        out
    }

    /// Flatten into `(name_with_suffix, labels_text, value)` rows for
    /// relational persistence. Labels render as `k="v",...` without braces,
    /// empty string when unlabelled.
    pub fn flatten(&self) -> Vec<(String, String, f64)> {
        let mut rows = Vec::new();
        for fam in &self.families {
            for s in &fam.samples {
                let labels = s
                    .labels
                    .iter()
                    .map(|(k, v)| format!("{}=\"{}\"", k, escape_label(v)))
                    .collect::<Vec<_>>()
                    .join(",");
                rows.push((format!("{}{}", fam.name, s.suffix), labels, s.value));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_prometheus_text() {
        let mut snap = MetricsSnapshot::new();
        snap.push(
            "ingot_statements_executed_total",
            "Statements executed since engine start.",
            MetricKind::Counter,
            vec![Sample::plain(42.0)],
        );
        snap.push(
            "ingot_buffer_pool_reads_total",
            "Page reads by kind.",
            MetricKind::Counter,
            vec![
                Sample::labelled(vec![("kind".into(), "seq".into())], 10.0),
                Sample::labelled(vec![("kind".into(), "rand".into())], 3.0),
            ],
        );
        let text = snap.render_prometheus();
        assert!(text.contains("# HELP ingot_statements_executed_total Statements executed"));
        assert!(text.contains("# TYPE ingot_statements_executed_total counter"));
        assert!(text.contains("ingot_statements_executed_total 42\n"));
        assert!(text.contains("ingot_buffer_pool_reads_total{kind=\"seq\"} 10\n"));
        assert!(text.contains("ingot_buffer_pool_reads_total{kind=\"rand\"} 3\n"));
    }

    #[test]
    fn histogram_suffixes_and_flatten() {
        let mut snap = MetricsSnapshot::new();
        snap.push(
            "ingot_statement_latency_ns",
            "Latency.",
            MetricKind::Histogram,
            vec![
                Sample {
                    suffix: "_bucket",
                    labels: vec![("hash".into(), "abc".into()), ("le".into(), "1023".into())],
                    value: 5.0,
                },
                Sample {
                    suffix: "_sum",
                    labels: vec![("hash".into(), "abc".into())],
                    value: 4000.0,
                },
                Sample {
                    suffix: "_count",
                    labels: vec![("hash".into(), "abc".into())],
                    value: 5.0,
                },
            ],
        );
        let text = snap.render_prometheus();
        assert!(text.contains("ingot_statement_latency_ns_bucket{hash=\"abc\",le=\"1023\"} 5"));
        assert!(text.contains("ingot_statement_latency_ns_count{hash=\"abc\"} 5"));
        let flat = snap.flatten();
        assert_eq!(flat.len(), 3);
        assert_eq!(flat[0].0, "ingot_statement_latency_ns_bucket");
        assert!(flat[0].1.contains("le=\"1023\""));
        assert_eq!(flat[1].2, 4000.0);
    }

    #[test]
    fn escapes_label_values() {
        let mut snap = MetricsSnapshot::new();
        snap.push(
            "m",
            "h",
            MetricKind::Gauge,
            vec![Sample::labelled(
                vec![("q".into(), "say \"hi\"\nthere".into())],
                1.0,
            )],
        );
        let text = snap.render_prometheus();
        assert!(text.contains("q=\"say \\\"hi\\\"\\nthere\""));
    }
}
