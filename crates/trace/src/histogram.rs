//! Log₂-bucketed latency histogram.
//!
//! Bucket `b` counts observations in `[2^b, 2^(b+1) - 1]` nanoseconds (zero
//! lands in bucket 0). 64 buckets cover the full `u64` range, so recording is
//! a single increment with no dynamic allocation — cheap enough to run inside
//! the statement path. Quantiles (p50/p95/p99) are derivable from the bucket
//! counts, either via [`LatencyHistogram::quantile_upper_bound`] or in SQL
//! over `ima$latency_histograms`.

/// Fixed-size log₂ histogram of nanosecond latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; 64],
    total: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the log₂ bucket covering `ns`.
pub fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        63 - ns.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` nanosecond range of bucket `b`.
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    let lo = if b == 0 { 0 } else { 1u64 << b };
    let hi = if b >= 63 {
        u64::MAX
    } else {
        (1u64 << (b + 1)) - 1
    };
    (lo, hi)
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; 64],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Record one latency observation.
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.total += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Per-bucket counts (index = log₂ bucket).
    pub fn counts(&self) -> &[u64; 64] {
        &self.counts
    }

    /// Non-empty buckets as `(bucket, lo_ns, hi_ns, count, cum_count)` rows —
    /// the shape `ima$latency_histograms` exposes.
    pub fn rows(&self) -> Vec<(usize, u64, u64, u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (b, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            cum += count;
            let (lo, hi) = bucket_bounds(b);
            out.push((b, lo, hi, count, cum));
        }
        out
    }

    /// Upper bound (inclusive bucket boundary) of the `q`-quantile, `q` in
    /// `[0, 1]`. Resolution is one log₂ bucket; returns 0 when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (b, &count) in self.counts.iter().enumerate() {
            cum += count;
            if cum >= rank {
                return bucket_bounds(b).1;
            }
        }
        self.max_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_bounds(0), (0, 1));
        assert_eq!(bucket_bounds(10), (1024, 2047));
        assert_eq!(bucket_bounds(63), (1u64 << 63, u64::MAX));
    }

    #[test]
    fn record_and_rows() {
        let mut h = LatencyHistogram::new();
        for ns in [100, 150, 1_500, 1_600, 1_700, 2_000_000] {
            h.record(ns);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.min_ns(), 100);
        assert_eq!(h.max_ns(), 2_000_000);
        let rows = h.rows();
        // Buckets: 6 (64-127: 100), 7 (128-255: 150), 10 (1024-2047: three),
        // 20 (~1M-2M: one).
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], (6, 64, 127, 1, 1));
        assert_eq!(rows[1], (7, 128, 255, 1, 2));
        assert_eq!(rows[2].3, 3);
        assert_eq!(rows[2].4, 5);
        assert_eq!(rows[3].4, 6);
        // Cumulative counts end at total.
        assert_eq!(rows.last().unwrap().4, h.total());
    }

    #[test]
    fn quantiles_track_buckets() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(1_000); // bucket 9: [512, 1023]
        }
        h.record(1_000_000); // bucket 19
        assert_eq!(h.quantile_upper_bound(0.5), 1023);
        assert_eq!(h.quantile_upper_bound(0.95), 1023);
        assert_eq!(h.quantile_upper_bound(1.0), bucket_bounds(19).1);
        assert_eq!(LatencyHistogram::new().quantile_upper_bound(0.5), 0);
    }
}
