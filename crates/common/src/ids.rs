//! Newtype identifiers for catalog and storage objects.
//!
//! Using distinct types (rather than bare `u32`/`u64`) prevents the classic
//! bug of passing a table id where an index id is expected — a pattern the
//! Rust design-patterns guide calls the *newtype* idiom.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw integer behind the id.
            pub fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }
    };
}

id_newtype!(
    /// Identifies a base table within a database.
    TableId,
    u32
);
id_newtype!(
    /// Identifies a secondary index. Indexes are stored as tables in the
    /// Ingres tradition, but carry their own id space in the catalog.
    IndexId,
    u32
);
id_newtype!(
    /// Identifies an attribute (column) within its table.
    AttrId,
    u32
);
id_newtype!(
    /// Identifies a database (namespace of tables).
    DatabaseId,
    u32
);
id_newtype!(
    /// Identifies a page within a storage file.
    PageId,
    u64
);
id_newtype!(
    /// Identifies an engine session (connection).
    SessionId,
    u64
);
id_newtype!(
    /// Identifies a transaction.
    TxnId,
    u64
);

impl PageId {
    /// Sentinel for "no page" (e.g. end of an overflow chain).
    pub const INVALID: PageId = PageId(u64::MAX);

    /// True unless this is the [`PageId::INVALID`] sentinel.
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types() {
        let t = TableId(1);
        let i = IndexId(1);
        assert_eq!(t.raw(), i.raw());
        assert_eq!(t.to_string(), "1");
    }

    #[test]
    fn invalid_page_sentinel() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
    }
}
