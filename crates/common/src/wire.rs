//! The Ingot wire protocol: length-prefixed binary frames.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! frame  = len:u32  opcode:u8  body          (len = 1 + body length)
//! string = len:u32  utf8-bytes
//! value  = tag:u8   payload                  (0=null, 1=int i64, 2=float
//!                                             f64-bits, 3=str string,
//!                                             4=bool u8)
//! ```
//!
//! Requests carry opcodes `0x01`‥`0x0d`, responses `0x81`‥`0x87`. The very
//! first frame on a connection must be [`Request::Hello`]; the server
//! answers [`Response::HelloOk`] with its own [`PROTOCOL_VERSION`] so a
//! mismatched client can report both sides. Every [`crate::Error`] variant
//! maps to a stable numeric code (see [`WIRE_CODE_TABLE`]) with a
//! `retryable` flag mirroring [`crate::Error::is_transient`], and the
//! mapping round-trips losslessly — a remote caller can match on error
//! kinds exactly like an embedded one.
//!
//! **Compatibility discipline.** The frame layout is pinned by the ledger
//! file `crates/common/wire_layout.txt`: its frames section (everything
//! after the `---` line) must equal [`layout_descriptor`] byte-for-byte,
//! and each ledger header line records `version N hash <fnv1a64>` of that
//! section. Changing any encoding changes the descriptor, which forces a
//! new ledger entry *and* a [`PROTOCOL_VERSION`] bump — enforced by the
//! `wire_layout_ledger_is_current` test here and by ingot-verify check 13
//! (`wire-compat`).

use std::io::{Read, Write};

use crate::conn::StatementResult;
use crate::cost::Cost;
use crate::error::{Error, Result};
use crate::row::Row;
use crate::value::Value;

/// Version sent in `Hello` / `HelloOk`. Bump on **any** frame-layout or
/// opcode change, together with a new `wire_layout.txt` ledger entry.
pub const PROTOCOL_VERSION: u16 = 1;

/// Hard ceiling on one frame's length prefix; larger prefixes are treated
/// as stream corruption rather than honoured with an allocation.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Error <-> wire code mapping.
// ---------------------------------------------------------------------------

/// One row of the error-code mapping: `variant` is the `Error` variant
/// name, `code` its stable wire code (append-only: codes are never reused
/// or renumbered), `retryable` the transported
/// [`is_transient`](Error::is_transient) classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireCodeEntry {
    /// `Error` variant name, e.g. `"WriteConflict"`.
    pub variant: &'static str,
    /// Stable numeric code carried in `Response::Err`.
    pub code: u16,
    /// Whether a capped backoff-and-retry loop is expected to clear it.
    pub retryable: bool,
}

/// The closed error-code table. Append new variants at the end with fresh
/// codes; ingot-verify check 13 cross-checks this table against the `Error`
/// enum (every variant mapped, no code claimed twice).
pub const WIRE_CODE_TABLE: &[WireCodeEntry] = &[
    WireCodeEntry {
        variant: "Parse",
        code: 1,
        retryable: false,
    },
    WireCodeEntry {
        variant: "Binder",
        code: 2,
        retryable: false,
    },
    WireCodeEntry {
        variant: "Type",
        code: 3,
        retryable: false,
    },
    WireCodeEntry {
        variant: "Catalog",
        code: 4,
        retryable: false,
    },
    WireCodeEntry {
        variant: "Storage",
        code: 5,
        retryable: false,
    },
    WireCodeEntry {
        variant: "Plan",
        code: 6,
        retryable: false,
    },
    WireCodeEntry {
        variant: "Execution",
        code: 7,
        retryable: false,
    },
    WireCodeEntry {
        variant: "Deadlock",
        code: 8,
        retryable: true,
    },
    WireCodeEntry {
        variant: "LockTimeout",
        code: 9,
        retryable: true,
    },
    WireCodeEntry {
        variant: "Constraint",
        code: 10,
        retryable: false,
    },
    WireCodeEntry {
        variant: "WriteConflict",
        code: 11,
        retryable: true,
    },
    WireCodeEntry {
        variant: "Monitor",
        code: 12,
        retryable: false,
    },
    WireCodeEntry {
        variant: "Daemon",
        code: 13,
        retryable: false,
    },
    WireCodeEntry {
        variant: "Io",
        code: 14,
        retryable: false,
    },
    WireCodeEntry {
        variant: "TransientIo",
        code: 15,
        retryable: true,
    },
    WireCodeEntry {
        variant: "PlanCacheInvalidated",
        code: 16,
        retryable: true,
    },
    WireCodeEntry {
        variant: "ParamArity",
        code: 17,
        retryable: false,
    },
    WireCodeEntry {
        variant: "Unsupported",
        code: 18,
        retryable: false,
    },
    WireCodeEntry {
        variant: "Protocol",
        code: 19,
        retryable: false,
    },
];

/// The variant name of `e` — the key into [`WIRE_CODE_TABLE`].
pub fn variant_name(e: &Error) -> &'static str {
    match e {
        Error::Parse(_) => "Parse",
        Error::Binder(_) => "Binder",
        Error::Type(_) => "Type",
        Error::Catalog(_) => "Catalog",
        Error::Storage(_) => "Storage",
        Error::Plan(_) => "Plan",
        Error::Execution(_) => "Execution",
        Error::Deadlock { .. } => "Deadlock",
        Error::LockTimeout(_) => "LockTimeout",
        Error::Constraint(_) => "Constraint",
        Error::WriteConflict(_) => "WriteConflict",
        Error::Monitor(_) => "Monitor",
        Error::Daemon(_) => "Daemon",
        Error::Io(_) => "Io",
        Error::TransientIo(_) => "TransientIo",
        Error::PlanCacheInvalidated(_) => "PlanCacheInvalidated",
        Error::ParamArity { .. } => "ParamArity",
        Error::Unsupported(_) => "Unsupported",
        Error::Protocol(_) => "Protocol",
    }
}

fn entry_for(e: &Error) -> &'static WireCodeEntry {
    let name = variant_name(e);
    WIRE_CODE_TABLE
        .iter()
        .find(|entry| entry.variant == name)
        .unwrap_or(&WIRE_CODE_TABLE[0]) // unreachable: table_covers_every_variant pins coverage
}

/// An [`Error`] in transport form: stable code + retryability + the
/// variant's payload (`aux1`/`aux2` carry `Deadlock::victim` and the
/// `ParamArity` counts; `message` carries the string payload of every
/// other variant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Code from [`WIRE_CODE_TABLE`].
    pub code: u16,
    /// Transported [`Error::is_transient`] classification.
    pub retryable: bool,
    /// First numeric payload (`Deadlock.victim`, `ParamArity.expected`).
    pub aux1: u64,
    /// Second numeric payload (`ParamArity.got`).
    pub aux2: u64,
    /// String payload of message-bearing variants.
    pub message: String,
}

impl WireError {
    /// Encode `e` for transport. Lossless: [`Self::into_error`] restores
    /// the exact variant and payload.
    pub fn from_error(e: &Error) -> WireError {
        let entry = entry_for(e);
        let (aux1, aux2, message) = match e {
            Error::Deadlock { victim } => (*victim, 0, String::new()),
            Error::ParamArity { expected, got } => (*expected as u64, *got as u64, String::new()),
            Error::Parse(m)
            | Error::Binder(m)
            | Error::Type(m)
            | Error::Catalog(m)
            | Error::Storage(m)
            | Error::Plan(m)
            | Error::Execution(m)
            | Error::LockTimeout(m)
            | Error::Constraint(m)
            | Error::WriteConflict(m)
            | Error::Monitor(m)
            | Error::Daemon(m)
            | Error::Io(m)
            | Error::TransientIo(m)
            | Error::PlanCacheInvalidated(m)
            | Error::Unsupported(m)
            | Error::Protocol(m) => (0, 0, m.clone()),
        };
        WireError {
            code: entry.code,
            retryable: entry.retryable,
            aux1,
            aux2,
            message,
        }
    }

    /// Decode back into the exact [`Error`] that was encoded. An unknown
    /// code (newer peer) degrades to [`Error::Protocol`] naming the code.
    pub fn into_error(self) -> Error {
        let WireError {
            code,
            aux1,
            aux2,
            message,
            ..
        } = self;
        match code {
            1 => Error::Parse(message),
            2 => Error::Binder(message),
            3 => Error::Type(message),
            4 => Error::Catalog(message),
            5 => Error::Storage(message),
            6 => Error::Plan(message),
            7 => Error::Execution(message),
            8 => Error::Deadlock { victim: aux1 },
            9 => Error::LockTimeout(message),
            10 => Error::Constraint(message),
            11 => Error::WriteConflict(message),
            12 => Error::Monitor(message),
            13 => Error::Daemon(message),
            14 => Error::Io(message),
            15 => Error::TransientIo(message),
            16 => Error::PlanCacheInvalidated(message),
            17 => Error::ParamArity {
                expected: aux1 as usize,
                got: aux2 as usize,
            },
            18 => Error::Unsupported(message),
            19 => Error::Protocol(message),
            other => Error::Protocol(format!("unknown wire error code {other}: {message}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Body encoding primitives.
// ---------------------------------------------------------------------------

/// Growable body writer (helpers keep encode arms flat).
#[derive(Default)]
struct Body(Vec<u8>);

impl Body {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Int(i) => {
                self.u8(1);
                self.i64(*i);
            }
            Value::Float(f) => {
                self.u8(2);
                self.f64(*f);
            }
            Value::Str(s) => {
                self.u8(3);
                self.string(s);
            }
            Value::Bool(b) => {
                self.u8(4);
                self.u8(u8::from(*b));
            }
        }
    }
    fn values(&mut self, vs: &[Value]) {
        self.u32(vs.len() as u32);
        for v in vs {
            self.value(v);
        }
    }
    fn result(&mut self, r: &StatementResult) {
        self.u32(r.columns.len() as u32);
        for c in &r.columns {
            self.string(c);
        }
        self.u32(r.rows.len() as u32);
        for row in &r.rows {
            self.values(row.values());
        }
        self.u64(r.affected);
        self.f64(r.est_cost.cpu);
        self.f64(r.est_cost.io);
        self.f64(r.actual_cost.cpu);
        self.f64(r.actual_cost.io);
        self.u64(r.wallclock_ns);
        self.u64(r.wait_ns);
    }
    fn error(&mut self, e: &WireError) {
        self.u16(e.code);
        self.u8(u8::from(e.retryable));
        self.u64(e.aux1);
        self.u64(e.aux2);
        self.string(&e.message);
    }
}

/// Bounds-checked body reader; truncation surfaces as [`Error::Protocol`].
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Error::protocol("truncated frame body"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::protocol("non-UTF-8 string"))
    }
    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.i64()?),
            2 => Value::Float(self.f64()?),
            3 => Value::Str(self.string()?),
            4 => Value::Bool(self.u8()? != 0),
            tag => return Err(Error::protocol(format!("unknown value tag {tag}"))),
        })
    }
    fn values(&mut self) -> Result<Vec<Value>> {
        let n = self.u32()? as usize;
        // Guard length against the remaining bytes (1 byte/value minimum)
        // so a corrupt count cannot drive a huge allocation.
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(Error::protocol("value count exceeds frame"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.value()?);
        }
        Ok(out)
    }
    fn result(&mut self) -> Result<StatementResult> {
        let ncols = self.u32()? as usize;
        if ncols > self.buf.len().saturating_sub(self.pos) {
            return Err(Error::protocol("column count exceeds frame"));
        }
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            columns.push(self.string()?);
        }
        let nrows = self.u32()? as usize;
        if nrows > self.buf.len().saturating_sub(self.pos) {
            return Err(Error::protocol("row count exceeds frame"));
        }
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            rows.push(Row::new(self.values()?));
        }
        Ok(StatementResult {
            rows,
            columns,
            affected: self.u64()?,
            est_cost: Cost {
                cpu: self.f64()?,
                io: self.f64()?,
            },
            actual_cost: Cost {
                cpu: self.f64()?,
                io: self.f64()?,
            },
            wallclock_ns: self.u64()?,
            wait_ns: self.u64()?,
        })
    }
    fn error(&mut self) -> Result<WireError> {
        Ok(WireError {
            code: self.u16()?,
            retryable: self.u8()? != 0,
            aux1: self.u64()?,
            aux2: self.u64()?,
            message: self.string()?,
        })
    }
    fn finish(self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Error::protocol("trailing bytes after frame body"))
        }
    }
}

// ---------------------------------------------------------------------------
// Frames.
// ---------------------------------------------------------------------------

/// Client → server verbs.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake: must be the first frame on a connection.
    Hello {
        /// Client's [`PROTOCOL_VERSION`].
        version: u16,
        /// Free-form client identification (shown in `ima$connections`).
        client: String,
    },
    /// Validate `sql` and create a server-side prepared handle.
    Prepare {
        /// Statement text with `$1`…/`?` markers.
        sql: String,
    },
    /// Execute prepared handle `id` with bound `params`.
    ExecutePrepared {
        /// Handle from `Response::PreparedOk`.
        id: u64,
        /// Positional parameter values.
        params: Vec<Value>,
    },
    /// One-shot execute (DDL, DML or query), optionally parameterised.
    Execute {
        /// Statement text.
        sql: String,
        /// Positional parameter values (empty for plain statements).
        params: Vec<Value>,
    },
    /// One-shot read-intent execute.
    Query {
        /// Statement text.
        sql: String,
    },
    /// `SET name = value`.
    Set {
        /// Knob name.
        name: String,
        /// Knob value.
        value: Value,
    },
    /// Open an explicit transaction.
    Begin,
    /// Commit the open transaction (acknowledged only after durability).
    Commit,
    /// Roll back the open transaction.
    Rollback,
    /// Drop prepared handle `id`.
    ClosePrepared {
        /// Handle from `Response::PreparedOk`.
        id: u64,
    },
    /// Liveness ping; resets the server's orphan-reaper deadline.
    Heartbeat,
    /// Orderly connection close.
    Close,
    /// Ask the server process to drain and exit (admin verb).
    Shutdown,
}

/// Server → client answers.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// Server's [`PROTOCOL_VERSION`].
        version: u16,
        /// Engine session id serving this connection.
        session_id: u64,
    },
    /// Prepared handle created.
    PreparedOk {
        /// Handle for `Request::ExecutePrepared`.
        id: u64,
        /// Parameter markers the statement declares.
        param_count: u64,
    },
    /// Statement finished; full [`StatementResult`].
    Rows(StatementResult),
    /// Verb finished with no result payload.
    Ok,
    /// Heartbeat answer.
    Pong,
    /// Statement or verb failed.
    Err(WireError),
    /// Server is closing this connection (drain, close ack, shutdown ack).
    Goodbye,
}

impl Request {
    /// Encode as `(opcode, body)`.
    pub fn to_frame(&self) -> (u8, Vec<u8>) {
        let mut b = Body::default();
        let op = match self {
            Request::Hello { version, client } => {
                b.u16(*version);
                b.string(client);
                0x01
            }
            Request::Prepare { sql } => {
                b.string(sql);
                0x02
            }
            Request::ExecutePrepared { id, params } => {
                b.u64(*id);
                b.values(params);
                0x03
            }
            Request::Execute { sql, params } => {
                b.string(sql);
                b.values(params);
                0x04
            }
            Request::Query { sql } => {
                b.string(sql);
                0x05
            }
            Request::Set { name, value } => {
                b.string(name);
                b.value(value);
                0x06
            }
            Request::Begin => 0x07,
            Request::Commit => 0x08,
            Request::Rollback => 0x09,
            Request::ClosePrepared { id } => {
                b.u64(*id);
                0x0a
            }
            Request::Heartbeat => 0x0b,
            Request::Close => 0x0c,
            Request::Shutdown => 0x0d,
        };
        (op, b.0)
    }

    /// Decode from `(opcode, body)`.
    pub fn decode(opcode: u8, body: &[u8]) -> Result<Request> {
        let mut c = Cursor::new(body);
        let req = match opcode {
            0x01 => Request::Hello {
                version: c.u16()?,
                client: c.string()?,
            },
            0x02 => Request::Prepare { sql: c.string()? },
            0x03 => Request::ExecutePrepared {
                id: c.u64()?,
                params: c.values()?,
            },
            0x04 => Request::Execute {
                sql: c.string()?,
                params: c.values()?,
            },
            0x05 => Request::Query { sql: c.string()? },
            0x06 => Request::Set {
                name: c.string()?,
                value: c.value()?,
            },
            0x07 => Request::Begin,
            0x08 => Request::Commit,
            0x09 => Request::Rollback,
            0x0a => Request::ClosePrepared { id: c.u64()? },
            0x0b => Request::Heartbeat,
            0x0c => Request::Close,
            0x0d => Request::Shutdown,
            other => {
                return Err(Error::protocol(format!(
                    "unknown request opcode {other:#04x}"
                )))
            }
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encode as `(opcode, body)`.
    pub fn to_frame(&self) -> (u8, Vec<u8>) {
        let mut b = Body::default();
        let op = match self {
            Response::HelloOk {
                version,
                session_id,
            } => {
                b.u16(*version);
                b.u64(*session_id);
                0x81
            }
            Response::PreparedOk { id, param_count } => {
                b.u64(*id);
                b.u64(*param_count);
                0x82
            }
            Response::Rows(r) => {
                b.result(r);
                0x83
            }
            Response::Ok => 0x84,
            Response::Pong => 0x85,
            Response::Err(e) => {
                b.error(e);
                0x86
            }
            Response::Goodbye => 0x87,
        };
        (op, b.0)
    }

    /// Decode from `(opcode, body)`.
    pub fn decode(opcode: u8, body: &[u8]) -> Result<Response> {
        let mut c = Cursor::new(body);
        let resp = match opcode {
            0x81 => Response::HelloOk {
                version: c.u16()?,
                session_id: c.u64()?,
            },
            0x82 => Response::PreparedOk {
                id: c.u64()?,
                param_count: c.u64()?,
            },
            0x83 => Response::Rows(c.result()?),
            0x84 => Response::Ok,
            0x85 => Response::Pong,
            0x86 => Response::Err(c.error()?),
            0x87 => Response::Goodbye,
            other => {
                return Err(Error::protocol(format!(
                    "unknown response opcode {other:#04x}"
                )))
            }
        };
        c.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Stream I/O.
// ---------------------------------------------------------------------------

fn io_err(e: std::io::Error) -> Error {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            Error::transient_io(format!("socket timeout: {e}"))
        }
        _ => Error::Io(e.to_string()),
    }
}

/// Write one `(opcode, body)` frame.
///
/// A body that would not fit under [`MAX_FRAME_BYTES`] is refused *here*,
/// before any byte hits the stream: the peer's `read_frame` would reject
/// the oversized length prefix as corruption and kill the connection, and
/// a body of 4 GiB or more would silently truncate the `u32` prefix and
/// desync the stream. Refusing keeps the connection alive for the caller
/// to report a clean error instead.
pub fn write_frame(w: &mut impl Write, opcode: u8, body: &[u8]) -> Result<()> {
    let len = 1u64 + body.len() as u64;
    if len > u64::from(MAX_FRAME_BYTES) {
        return Err(Error::protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let len = len as u32;
    let mut frame = Vec::with_capacity(5 + body.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.push(opcode);
    frame.extend_from_slice(body);
    w.write_all(&frame).map_err(io_err)?;
    w.flush().map_err(io_err)
}

/// Read one frame. `Ok(None)` is a clean end-of-stream (the peer closed at
/// a frame boundary); a timeout surfaces as retryable [`Error::TransientIo`]
/// and mid-frame truncation or an oversized prefix as [`Error::Protocol`].
pub fn read_frame(r: &mut impl Read, max_bytes: u32) -> Result<Option<(u8, Vec<u8>)>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(Error::protocol("connection closed mid frame")),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            // A timeout with partial length bytes still surfaces as
            // transient; the buffered prefix is lost, so callers treat a
            // transient error mid-frame as fatal and only retry timeouts
            // that arrive with got == 0 (see ingot-server's read loop).
            Err(e) => return Err(io_err(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > max_bytes {
        return Err(Error::protocol(format!("invalid frame length {len}")));
    }
    let mut frame = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < frame.len() {
        match r.read(&mut frame[filled..]) {
            Ok(0) => return Err(Error::protocol("connection closed mid frame")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err(e)),
        }
    }
    let opcode = frame[0];
    frame.remove(0);
    Ok(Some((opcode, frame)))
}

/// Convenience: encode and write `req`.
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<()> {
    let (op, body) = req.to_frame();
    write_frame(w, op, &body)
}

/// Convenience: encode and write `resp`.
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<()> {
    let (op, body) = resp.to_frame();
    write_frame(w, op, &body)
}

// ---------------------------------------------------------------------------
// Layout ledger.
// ---------------------------------------------------------------------------

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn frame_hex(opcode: u8, body: &[u8]) -> String {
    let len = 1u32 + body.len() as u32;
    let mut all = Vec::with_capacity(5 + body.len());
    all.extend_from_slice(&len.to_le_bytes());
    all.push(opcode);
    all.extend_from_slice(body);
    hex(&all)
}

/// The canonical frame-layout descriptor: the grammar plus golden hex dumps
/// of representative frames, rendered from the **live** encoder. This text
/// is what `crates/common/wire_layout.txt` pins — any encoding change
/// changes it, forcing a ledger entry + version bump.
pub fn layout_descriptor() -> String {
    let mut out = String::new();
    out.push_str("frame  = len:u32le opcode:u8 body (len = 1 + body)\n");
    out.push_str("string = len:u32le utf8\n");
    out.push_str(
        "value  = tag:u8 [0=null 1=int:i64le 2=float:f64bits-le 3=str:string 4=bool:u8]\n",
    );
    out.push_str(
        "result = ncols:u32le col:string* nrows:u32le row:(values)* affected:u64le \
                  est_cpu:f64 est_io:f64 act_cpu:f64 act_io:f64 wallclock_ns:u64le wait_ns:u64le\n",
    );
    out.push_str("error  = code:u16le retryable:u8 aux1:u64le aux2:u64le message:string\n");
    let golden: Vec<(&str, u8, Vec<u8>)> = {
        let reqs: Vec<(&str, Request)> = vec![
            (
                "hello",
                Request::Hello {
                    version: PROTOCOL_VERSION,
                    client: "golden".into(),
                },
            ),
            (
                "prepare",
                Request::Prepare {
                    sql: "select v from t where id = $1".into(),
                },
            ),
            (
                "execute_prepared",
                Request::ExecutePrepared {
                    id: 7,
                    params: vec![Value::Int(42)],
                },
            ),
            (
                "set",
                Request::Set {
                    name: "trace".into(),
                    value: Value::Bool(true),
                },
            ),
            ("commit", Request::Commit),
        ];
        let resps: Vec<(&str, Response)> = vec![
            (
                "hello_ok",
                Response::HelloOk {
                    version: PROTOCOL_VERSION,
                    session_id: 3,
                },
            ),
            (
                "rows",
                Response::Rows(StatementResult {
                    rows: vec![Row::new(vec![
                        Value::Int(1),
                        Value::Str("a".into()),
                        Value::Null,
                    ])],
                    columns: vec!["id".into(), "name".into(), "x".into()],
                    affected: 0,
                    est_cost: Cost { cpu: 1.5, io: 2.0 },
                    actual_cost: Cost { cpu: 3.0, io: 1.0 },
                    wallclock_ns: 1000,
                    wait_ns: 10,
                }),
            ),
            (
                "err_deadlock",
                Response::Err(WireError::from_error(&Error::Deadlock { victim: 7 })),
            ),
        ];
        reqs.iter()
            .map(|(n, r)| {
                let (op, body) = r.to_frame();
                (*n, op, body)
            })
            .chain(resps.iter().map(|(n, r)| {
                let (op, body) = r.to_frame();
                (*n, op, body)
            }))
            .collect()
    };
    for (name, op, body) in golden {
        out.push_str(&format!("{name} = {}\n", frame_hex(op, &body)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fnv1a64;
    use proptest::prelude::*;

    fn roundtrip_req(req: Request) {
        let (op, body) = req.to_frame();
        assert_eq!(Request::decode(op, &body).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let (op, body) = resp.to_frame();
        assert_eq!(Response::decode(op, &body).unwrap(), resp);
    }

    #[test]
    fn request_frames_round_trip() {
        roundtrip_req(Request::Hello {
            version: PROTOCOL_VERSION,
            client: "t".into(),
        });
        roundtrip_req(Request::Prepare {
            sql: "select 1".into(),
        });
        roundtrip_req(Request::ExecutePrepared {
            id: 9,
            params: vec![Value::Null, Value::Bool(false), Value::Float(2.5)],
        });
        roundtrip_req(Request::Execute {
            sql: "insert into t values ($1)".into(),
            params: vec![Value::Int(-3)],
        });
        roundtrip_req(Request::Query {
            sql: "select * from ima$connections".into(),
        });
        roundtrip_req(Request::Set {
            name: "trace".into(),
            value: Value::Str("on".into()),
        });
        for r in [
            Request::Begin,
            Request::Commit,
            Request::Rollback,
            Request::ClosePrepared { id: 1 },
            Request::Heartbeat,
            Request::Close,
            Request::Shutdown,
        ] {
            roundtrip_req(r);
        }
    }

    #[test]
    fn response_frames_round_trip() {
        roundtrip_resp(Response::HelloOk {
            version: 1,
            session_id: 77,
        });
        roundtrip_resp(Response::PreparedOk {
            id: 2,
            param_count: 3,
        });
        roundtrip_resp(Response::Rows(StatementResult {
            rows: vec![Row::new(vec![Value::Int(5)])],
            columns: vec!["c".into()],
            affected: 1,
            est_cost: Cost { cpu: 0.5, io: 0.0 },
            actual_cost: Cost { cpu: 1.0, io: 2.0 },
            wallclock_ns: 42,
            wait_ns: 7,
        }));
        for r in [Response::Ok, Response::Pong, Response::Goodbye] {
            roundtrip_resp(r);
        }
        roundtrip_resp(Response::Err(WireError::from_error(&Error::param_arity(
            3, 1,
        ))));
    }

    #[test]
    fn stream_io_round_trips_and_reports_eof() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Heartbeat).unwrap();
        write_response(&mut buf, &Response::Pong).unwrap();
        let mut r = &buf[..];
        let (op, body) = read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap();
        assert_eq!(Request::decode(op, &body).unwrap(), Request::Heartbeat);
        let (op, body) = read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap();
        assert_eq!(Response::decode(op, &body).unwrap(), Response::Pong);
        assert!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().is_none());
        // Mid-frame truncation is corruption, not EOF.
        let mut cut = &buf[..3];
        assert!(matches!(
            read_frame(&mut cut, MAX_FRAME_BYTES),
            Err(Error::Protocol(_))
        ));
        // Oversized length prefix is rejected before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.push(0x01);
        let mut r = &huge[..];
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME_BYTES),
            Err(Error::Protocol(_))
        ));
    }

    #[test]
    fn oversized_body_is_refused_before_any_byte_is_written() {
        let body = vec![0u8; MAX_FRAME_BYTES as usize];
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, 0x83, &body),
            Err(Error::Protocol(_))
        ));
        assert!(sink.is_empty(), "nothing may hit the stream on refusal");
        // One byte under the cap (body + opcode == cap) still goes out.
        let body = vec![0u8; MAX_FRAME_BYTES as usize - 1];
        write_frame(&mut sink, 0x83, &body).unwrap();
        let mut r = &sink[..];
        let (op, read_back) = read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap();
        assert_eq!(op, 0x83);
        assert_eq!(read_back.len(), body.len());
    }

    #[test]
    fn table_covers_every_variant_with_unique_codes() {
        let every: Vec<Error> = vec![
            Error::parse("m"),
            Error::binder("m"),
            Error::type_error("m"),
            Error::catalog("m"),
            Error::storage("m"),
            Error::plan("m"),
            Error::execution("m"),
            Error::Deadlock { victim: 1 },
            Error::LockTimeout("m".into()),
            Error::constraint("m"),
            Error::write_conflict("m"),
            Error::monitor("m"),
            Error::daemon("m"),
            Error::Io("m".into()),
            Error::transient_io("m"),
            Error::plan_cache_invalidated("m"),
            Error::param_arity(2, 1),
            Error::unsupported("m"),
            Error::protocol("m"),
        ];
        assert_eq!(every.len(), WIRE_CODE_TABLE.len());
        let mut codes: Vec<u16> = Vec::new();
        for e in &every {
            let entry = entry_for(e);
            assert_eq!(entry.variant, variant_name(e));
            assert_eq!(
                entry.retryable,
                e.is_transient(),
                "{:?}: table retryable flag must mirror is_transient()",
                e
            );
            codes.push(entry.code);
        }
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), every.len(), "codes must be unique");
    }

    #[test]
    fn unknown_code_degrades_to_protocol_error() {
        let e = WireError {
            code: 9999,
            retryable: false,
            aux1: 0,
            aux2: 0,
            message: "future variant".into(),
        };
        assert!(matches!(e.into_error(), Error::Protocol(_)));
    }

    proptest! {
        /// Lossless error round-trip, with the retryable flag mirroring
        /// `is_transient` for every payload.
        #[test]
        fn error_round_trip(case in 0usize..19, msg in ".{0,40}", a in 0u64..1_000_000, b in 0u64..64) {
            let m = msg.clone();
            let e = match case {
                0 => Error::Parse(m),
                1 => Error::Binder(m),
                2 => Error::Type(m),
                3 => Error::Catalog(m),
                4 => Error::Storage(m),
                5 => Error::Plan(m),
                6 => Error::Execution(m),
                7 => Error::Deadlock { victim: a },
                8 => Error::LockTimeout(m),
                9 => Error::Constraint(m),
                10 => Error::WriteConflict(m),
                11 => Error::Monitor(m),
                12 => Error::Daemon(m),
                13 => Error::Io(m),
                14 => Error::TransientIo(m),
                15 => Error::PlanCacheInvalidated(m),
                16 => Error::ParamArity { expected: a as usize, got: b as usize },
                17 => Error::Unsupported(m),
                _ => Error::Protocol(m),
            };
            let wire = WireError::from_error(&e);
            prop_assert_eq!(wire.retryable, e.is_transient());
            // Through the byte codec as well, not just the struct.
            let resp = Response::Err(wire);
            let (op, body) = resp.to_frame();
            let decoded = match Response::decode(op, &body).unwrap() {
                Response::Err(w) => w.into_error(),
                other => panic!("expected Err, got {other:?}"),
            };
            prop_assert_eq!(decoded, e);
        }

        /// Value / params codec round-trip over arbitrary payloads.
        #[test]
        fn params_round_trip(ints in proptest::collection::vec(-1_000_000i64..1_000_000, 0..8), s in ".{0,24}", f in -1e12f64..1e12) {
            let mut params: Vec<Value> = ints.into_iter().map(Value::Int).collect();
            params.push(Value::Str(s));
            params.push(Value::Float(f));
            params.push(Value::Null);
            params.push(Value::Bool(true));
            let req = Request::Execute { sql: "select $1".into(), params };
            let (op, body) = req.to_frame();
            prop_assert_eq!(Request::decode(op, &body).unwrap(), req);
        }
    }

    /// The checked-in ledger must pin the live encoder: its frames section
    /// equals `layout_descriptor()` and its newest header line records that
    /// section's fnv1a64 at the current PROTOCOL_VERSION. On a deliberate
    /// layout change: bump PROTOCOL_VERSION, regenerate the section, append
    /// `version N hash H` — this test prints both on mismatch.
    #[test]
    fn wire_layout_ledger_is_current() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("wire_layout.txt");
        let text = std::fs::read_to_string(&path).expect("wire_layout.txt must exist");
        let (header, section) = text
            .split_once("---\n")
            .expect("ledger needs a `---` separator");
        let descriptor = layout_descriptor();
        let hash = fnv1a64(descriptor.as_bytes());
        assert_eq!(
            section, descriptor,
            "wire_layout.txt frames section is stale; regenerate it from \
             layout_descriptor() and append `version {} hash {:016x}`",
            PROTOCOL_VERSION, hash
        );
        let last = header
            .lines()
            .rfind(|l| l.starts_with("version "))
            .expect("ledger needs at least one `version N hash H` line");
        let mut parts = last.split_whitespace();
        let (_, version, _, recorded) = (
            parts.next(),
            parts.next().and_then(|v| v.parse::<u16>().ok()),
            parts.next(),
            parts.next(),
        );
        assert_eq!(
            version,
            Some(PROTOCOL_VERSION),
            "newest ledger entry must match PROTOCOL_VERSION"
        );
        assert_eq!(
            recorded,
            Some(format!("{hash:016x}").as_str()),
            "newest ledger entry must record the section hash {hash:016x}"
        );
    }
}
