//! Statement hashing.
//!
//! The paper identifies statements by "a hash of the statement text that is
//! used as the referencing key to the other tables" (Fig 3). We use FNV-1a
//! (64-bit): it is allocation-free, a handful of instructions per byte, and
//! deterministic across runs — important because the workload DB persists
//! hashes across engine restarts.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of a byte slice.
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The unique key of a statement in the monitor: the FNV-1a hash of its text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtHash(pub u64);

impl StmtHash {
    /// Hash a statement text. The text is used verbatim — two statements that
    /// differ only in a literal are distinct, exactly as in the paper's 50 k
    /// test which cycles 50 000 different `nref_id`s through the buffer.
    #[inline]
    pub fn of(text: &str) -> Self {
        StmtHash(fnv1a64(text.as_bytes()))
    }

    /// Raw hash value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for StmtHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("") is the offset basis; FNV-1a("a") is a published vector.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn distinct_literals_distinct_hashes() {
        let a = StmtHash::of("select 1 where id = 'NF00000001'");
        let b = StmtHash::of("select 1 where id = 'NF00000002'");
        assert_ne!(a, b);
        assert_eq!(a, StmtHash::of("select 1 where id = 'NF00000001'"));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(StmtHash(0xff).to_string(), "00000000000000ff");
    }
}
