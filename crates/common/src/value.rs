//! SQL values and data types.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};

/// The column data types supported by the engine.
///
/// The set mirrors what the NREF evaluation schema of the paper needs:
/// integers, floats and variable-length strings, all nullable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// Variable-length UTF-8 string.
    Str,
    /// Boolean (produced by predicates; storable as well).
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "VARCHAR"),
            DataType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A single SQL value.
///
/// `Null` compares less than every non-null value so that sort orders are
/// total; SQL three-valued logic is applied in predicate evaluation, not in
/// [`Ord`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is normalised to NULL on construction paths that
    /// can produce it (e.g. AVG over zero rows).
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            // Cross-type comparisons between incompatible types order by a
            // fixed type rank so sorting heterogeneous columns is total.
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                // Hash floats through their bit pattern; equal ints/floats
                // that compare equal may hash differently, so hash joins
                // normalise int-vs-float keys before hashing (see executor).
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                4u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl Value {
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // ints and floats are mutually comparable
            Value::Str(_) => 3,
        }
    }

    /// The data type of this value, or `None` for NULL (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True if this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric content widened to `f64`, for `Int` and `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string content, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Coerce this value to `ty`, used when binding INSERT literals to a
    /// column type. Int→Float widening and numeric↔string parsing are
    /// allowed; anything else is a type error.
    pub fn coerce_to(&self, ty: DataType) -> Result<Value> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(_), DataType::Int)
            | (Value::Float(_), DataType::Float)
            | (Value::Str(_), DataType::Str)
            | (Value::Bool(_), DataType::Bool) => Ok(self.clone()),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (Value::Float(f), DataType::Int) => Ok(Value::Int(*f as i64)),
            (Value::Int(i), DataType::Str) => Ok(Value::Str(i.to_string())),
            (Value::Float(f), DataType::Str) => Ok(Value::Str(f.to_string())),
            (Value::Str(s), DataType::Int) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::type_error(format!("cannot cast '{s}' to INT"))),
            (Value::Str(s), DataType::Float) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::type_error(format!("cannot cast '{s}' to FLOAT"))),
            (v, ty) => Err(Error::type_error(format!("cannot cast {v} to {ty}"))),
        }
    }

    /// A stable mapping of the value onto the f64 number line, used by
    /// histogram construction. Strings map through their first six bytes
    /// (48 bits, exactly representable in an f64 mantissa) so that
    /// lexicographic order is approximately preserved.
    pub fn numeric_key(&self) -> f64 {
        match self {
            Value::Null => f64::NEG_INFINITY,
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            Value::Bool(b) => *b as u8 as f64,
            Value::Str(s) => {
                let mut buf = [0u8; 8];
                let bytes = s.as_bytes();
                let n = bytes.len().min(6);
                buf[2..2 + n].copy_from_slice(&bytes[..n]);
                u64::from_be_bytes(buf) as f64
            }
        }
    }

    /// Approximate heap size of the value in bytes, used for page budgeting
    /// and the workload-DB growth accounting of §V-A.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 9,
            Value::Float(_) => 9,
            Value::Bool(_) => 2,
            Value::Str(s) => 5 + s.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int(3), Value::Null, Value::Int(-1)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(-1));
    }

    #[test]
    fn int_float_cross_compare() {
        assert_eq!(Value::Int(2).cmp(&Value::Float(2.0)), Ordering::Equal);
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(3.5) > Value::Int(3));
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(
            Value::Int(7).coerce_to(DataType::Float).unwrap(),
            Value::Float(7.0)
        );
        assert_eq!(
            Value::Str("42".into()).coerce_to(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert!(Value::Str("abc".into()).coerce_to(DataType::Int).is_err());
        assert_eq!(Value::Null.coerce_to(DataType::Str).unwrap(), Value::Null);
    }

    #[test]
    fn numeric_key_preserves_string_order() {
        let a = Value::Str("NF0001".into()).numeric_key();
        let b = Value::Str("NF0002".into()).numeric_key();
        assert!(a < b);
        // Differences beyond the 6-byte prefix are invisible (documented).
        let c = Value::Str("NF00000001".into()).numeric_key();
        let d = Value::Str("NF00000002".into()).numeric_key();
        assert_eq!(c, d);
    }

    #[test]
    fn byte_size_accounts_for_strings() {
        assert_eq!(Value::Str("abcd".into()).byte_size(), 9);
        assert_eq!(Value::Int(0).byte_size(), 9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::Str("x".into()).to_string(), "x");
    }
}
