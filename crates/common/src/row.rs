//! Rows and schemas.

use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::{DataType, Value};

/// A column definition: name, type and nullability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lower-cased by the binder).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// Whether NULLs are accepted.
    pub nullable: bool,
}

impl Column {
    /// A nullable column of the given name and type.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Column {
            name: name.into().to_ascii_lowercase(),
            ty,
            nullable: true,
        }
    }

    /// A NOT NULL column of the given name and type.
    pub fn not_null(name: impl Into<String>, ty: DataType) -> Self {
        Column {
            nullable: false,
            ..Column::new(name, ty)
        }
    }
}

/// An ordered list of columns describing a row shape.
///
/// Schemas are cheaply cloneable (`Arc` inside) because every operator in a
/// plan carries one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Arc<Vec<Column>>,
}

impl Schema {
    /// Build a schema from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema {
            columns: Arc::new(columns),
        }
    }

    /// The empty schema (used by DDL results).
    pub fn empty() -> Self {
        Schema::new(Vec::new())
    }

    /// All columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Position of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// A schema concatenating `self`'s columns with `other`'s (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut cols = Vec::with_capacity(self.len() + other.len());
        cols.extend_from_slice(self.columns());
        cols.extend_from_slice(other.columns());
        Schema::new(cols)
    }

    /// Validate that `row` matches this schema in arity, type and
    /// nullability; coerces values where [`Value::coerce_to`] allows it.
    pub fn check_row(&self, row: &Row) -> Result<Row> {
        if row.len() != self.len() {
            return Err(Error::type_error(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (v, c) in row.values().iter().zip(self.columns().iter()) {
            if v.is_null() {
                if !c.nullable {
                    return Err(Error::constraint(format!(
                        "column '{}' is NOT NULL",
                        c.name
                    )));
                }
                out.push(Value::Null);
            } else {
                out.push(v.coerce_to(c.ty)?);
            }
        }
        Ok(Row::new(out))
    }
}

/// A tuple of values. The engine passes rows by value between operators; the
/// inner `Vec` is reused where possible to limit allocation in hot paths.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// All values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for the zero-column row.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Consume the row, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Mutable access (used by UPDATE).
    pub fn set(&mut self, idx: usize, v: Value) {
        self.values[idx] = v;
    }

    /// Concatenate two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(self.values());
        v.extend_from_slice(other.values());
        Row::new(v)
    }

    /// Project the row onto the given positions.
    pub fn project(&self, positions: &[usize]) -> Row {
        Row::new(positions.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Approximate byte size (storage + growth accounting).
    pub fn byte_size(&self) -> usize {
        2 + self.values.iter().map(Value::byte_size).sum::<usize>()
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("name", DataType::Str),
        ])
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("Name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn check_row_coerces_and_rejects() {
        let s = schema();
        let ok = s
            .check_row(&Row::new(vec![Value::Str("3".into()), Value::Null]))
            .unwrap();
        assert_eq!(ok.get(0), &Value::Int(3));
        assert!(s
            .check_row(&Row::new(vec![Value::Null, Value::Null]))
            .is_err());
        assert!(s.check_row(&Row::new(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn join_concat_project() {
        let s = schema().join(&schema());
        assert_eq!(s.len(), 4);
        let r = Row::new(vec![Value::Int(1), Value::Int(2)]);
        let j = r.concat(&Row::new(vec![Value::Int(3)]));
        assert_eq!(j.len(), 3);
        assert_eq!(j.project(&[2, 0]).values(), &[Value::Int(3), Value::Int(1)]);
    }
}
