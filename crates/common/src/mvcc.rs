//! Multi-version concurrency-control primitives shared across the stack.
//!
//! Every heap record carries a fixed version header (`begin`, `end`, chain
//! links — see `ingot-storage::heap::VersionMeta`). The types here are the
//! *interpretation* of that header: timestamps, transaction markers, and the
//! snapshot a reader evaluates visibility against. They live in
//! `ingot-common` because storage (which encodes the header), the executor
//! (which filters by it) and the engine (which stamps it at commit) all need
//! the same constants.
//!
//! ## Timestamp encoding
//!
//! A header timestamp field is one of three things:
//!
//! * a **commit timestamp** — a plain `u64` drawn from the transaction
//!   manager's commit sequence (`1, 2, 3, …`; `0` means "committed before
//!   any tracked history", used by bulk/rebuild writes);
//! * a **transaction marker** — [`TXN_MARK`]`| txn_id`, meaning the field is
//!   owned by an uncommitted transaction (a begin marker on a freshly
//!   written version, an end marker on a version a writer intends to
//!   supersede);
//! * the **infinity sentinel** [`TS_INF`] — an `end` that has not happened
//!   (the version is alive) or a chain link that points nowhere.
//!
//! `TXN_MARK` is the top bit, so any marker compares greater than any real
//! commit timestamp; [`TS_INF`] (all ones) also has the bit set, which is
//! why every decoder checks the sentinel *before* the marker bit.

use crate::ids::TxnId;

/// Top bit of a header timestamp: set ⇒ the field holds an uncommitted
/// transaction id, not a commit timestamp.
pub const TXN_MARK: u64 = 1 << 63;

/// "Never" / "nothing": an `end` of `TS_INF` means the version is alive; a
/// chain link of `TS_INF` means no neighbour.
pub const TS_INF: u64 = u64::MAX;

/// Tag a transaction id as an uncommitted-owner marker.
pub fn txn_mark(txn: TxnId) -> u64 {
    TXN_MARK | txn.raw()
}

/// Is `ts` a transaction marker (and not the infinity sentinel)?
pub fn is_txn_mark(ts: u64) -> bool {
    ts != TS_INF && ts & TXN_MARK != 0
}

/// The transaction id inside a marker. Only meaningful when
/// [`is_txn_mark`] holds.
pub fn mark_owner(ts: u64) -> TxnId {
    TxnId(ts & !TXN_MARK)
}

/// The read view of one transaction (or one auto-commit statement).
///
/// A version is visible when its `begin` is either this transaction's own
/// uncommitted write or a commit at-or-before `ts`, *and* its `end` has not
/// happened from this snapshot's point of view (alive, superseded only by
/// an uncommitted *other* transaction, or superseded after `ts`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Highest commit timestamp visible to this snapshot.
    pub ts: u64,
    /// The owning transaction: its own uncommitted versions are visible,
    /// and versions it has marked for supersession are not.
    pub txn: TxnId,
}

impl Snapshot {
    /// A snapshot that sees every committed version and nothing
    /// uncommitted. Used by replay, DDL rebuilds, statistics refresh and
    /// direct (engine-less) catalog access.
    pub fn latest() -> Snapshot {
        // TS_INF-1 keeps the marker bit check meaningful: no commit
        // timestamp ever reaches it, and it is not the sentinel.
        Snapshot {
            ts: TS_INF - 1,
            txn: TxnId(0),
        }
    }

    /// Is a version whose header reads (`begin`, `end`) visible here?
    ///
    /// `begin == end` (a zero-length lifetime) is never visible: it marks a
    /// version superseded within its own creating transaction.
    pub fn sees(&self, begin: u64, end: u64) -> bool {
        if begin == end {
            return false;
        }
        let begin_ok = if is_txn_mark(begin) {
            mark_owner(begin) == self.txn
        } else {
            begin <= self.ts
        };
        if !begin_ok {
            return false;
        }
        if end == TS_INF {
            return true;
        }
        if is_txn_mark(end) {
            // Ended by an uncommitted transaction: dead only to that
            // transaction itself.
            mark_owner(end) != self.txn
        } else {
            end > self.ts
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers_round_trip() {
        let m = txn_mark(TxnId(42));
        assert!(is_txn_mark(m));
        assert_eq!(mark_owner(m), TxnId(42));
        assert!(!is_txn_mark(7));
        assert!(!is_txn_mark(TS_INF), "infinity is not a marker");
    }

    #[test]
    fn committed_visibility_follows_ts() {
        let snap = Snapshot {
            ts: 5,
            txn: TxnId(9),
        };
        assert!(snap.sees(3, TS_INF), "committed before, alive");
        assert!(!snap.sees(6, TS_INF), "committed after the snapshot");
        assert!(snap.sees(3, 7), "superseded after the snapshot");
        assert!(!snap.sees(3, 5), "superseded at-or-before the snapshot");
    }

    #[test]
    fn own_writes_are_visible_and_own_supersessions_are_not() {
        let me = TxnId(9);
        let snap = Snapshot { ts: 5, txn: me };
        assert!(snap.sees(txn_mark(me), TS_INF), "own insert");
        assert!(!snap.sees(txn_mark(TxnId(10)), TS_INF), "other's insert");
        assert!(!snap.sees(3, txn_mark(me)), "row I superseded");
        assert!(snap.sees(3, txn_mark(TxnId(10))), "row another supersedes");
    }

    #[test]
    fn zero_length_lifetime_is_invisible_to_everyone() {
        let snap = Snapshot::latest();
        assert!(!snap.sees(4, 4));
        let own = Snapshot {
            ts: 5,
            txn: TxnId(9),
        };
        let m = txn_mark(TxnId(9));
        assert!(!own.sees(m, m), "intermediate own version");
    }

    #[test]
    fn latest_sees_all_committed_history() {
        let snap = Snapshot::latest();
        assert!(snap.sees(0, TS_INF));
        assert!(snap.sees(u64::MAX >> 1, TS_INF));
        assert!(!snap.sees(txn_mark(TxnId(3)), TS_INF));
        assert!(!snap.sees(3, 9), "committed delete is dead to latest");
    }
}
