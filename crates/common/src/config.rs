//! Engine configuration.

use std::fmt;
use std::str::FromStr;

use crate::error::{Error, Result};

/// How commits reach the disk through the write-ahead log.
///
/// `Always` fsyncs the WAL once per commit; `Group` batches concurrent
/// committers behind a single fsync (leader/follower, bounded by
/// [`EngineConfig::group_commit_window_us`]); `Off` skips the durability
/// barrier entirely — **test-only**: an acknowledged commit may be lost on
/// crash, exactly the gap the WAL exists to close.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum WalFsyncMode {
    /// One fsync per commit (strongest latency isolation, slowest).
    Always,
    /// Leader/follower group commit: one fsync covers every commit that
    /// entered the window (the default).
    #[default]
    Group,
    /// No durability barrier. Test-only: commits are acknowledged before
    /// they are durable.
    Off,
}

impl fmt::Display for WalFsyncMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalFsyncMode::Always => write!(f, "always"),
            WalFsyncMode::Group => write!(f, "group"),
            WalFsyncMode::Off => write!(f, "off"),
        }
    }
}

impl FromStr for WalFsyncMode {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        match s.to_ascii_lowercase().as_str() {
            "always" => Ok(WalFsyncMode::Always),
            "group" => Ok(WalFsyncMode::Group),
            "off" => Ok(WalFsyncMode::Off),
            other => Err(Error::parse(format!(
                "unknown wal_fsync_mode '{other}' (expected always | group | off)"
            ))),
        }
    }
}

/// Tunable knobs of an engine instance.
///
/// The defaults mirror the paper's prototype: monitoring buffers hold 1 000
/// statements before wrapping; the storage daemon (configured separately in
/// `ingot-daemon`) polls every 30 s; heap tables allocate a fixed number of
/// main pages and overflow beyond them.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Buffer-pool capacity in pages. Kept deliberately small relative to
    /// generated data so the "database significantly larger than main
    /// memory" regime of the paper's evaluation is reproduced.
    pub buffer_pool_pages: usize,
    /// Whether the monitoring sensors are compiled in ("Monitoring" /
    /// "Daemon" setups) or absent ("Original" setup).
    pub monitor_enabled: bool,
    /// Ring-buffer capacity of the `statements` IMA table (paper default:
    /// "up to 1000 different statements until the buffer wraps around").
    pub monitor_statement_capacity: usize,
    /// Ring-buffer capacity of the per-execution `workload` IMA table.
    pub monitor_workload_capacity: usize,
    /// Ring-buffer capacity of the `statistics` IMA table (system samples).
    pub monitor_statistics_capacity: usize,
    /// Ring-buffer capacity of the `references` IMA table.
    pub monitor_reference_capacity: usize,
    /// Whether the structured tracing layer (stage + per-operator spans,
    /// latency histograms) starts enabled. Tracing requires monitoring; the
    /// flag can also be flipped at runtime (`SET trace = true` or
    /// `Engine::set_tracing`). Off by default so the statement path costs
    /// exactly what the "Monitoring" setup costs.
    pub trace_enabled: bool,
    /// Distinct statement hashes the tracer keeps aggregated operator stats
    /// and latency histograms for (oldest hash evicted beyond this).
    pub trace_statement_capacity: usize,
    /// Ring-buffer capacity of recent per-statement traces.
    pub trace_ring_capacity: usize,
    /// Main-page extent initially allocated to a HEAP table; inserts beyond
    /// its capacity go to overflow pages (the paper's ">10 % overflow pages"
    /// rule keys off this).
    pub heap_main_pages: usize,
    /// Lock-wait timeout in milliseconds before giving up (deadlocks are
    /// detected eagerly; this bounds pathological waits).
    pub lock_timeout_ms: u64,
    /// Capacity (entries) of the shared plan cache keyed on statement
    /// templates. `0` disables plan caching entirely: every execution
    /// re-parses and re-optimizes, as the engine did before the cache.
    pub plan_cache_capacity: usize,
    /// Simulated latency of one random page read, in nanoseconds, charged to
    /// the [`crate::SimClock`] by the disk model.
    pub disk_random_read_ns: u64,
    /// Simulated latency of one sequential page read, in nanoseconds.
    pub disk_seq_read_ns: u64,
    /// Simulated latency of one page write, in nanoseconds.
    pub disk_write_ns: u64,
    /// Simulated CPU time to process one tuple, in nanoseconds.
    pub cpu_tuple_ns: u64,
    /// How commits reach disk through the write-ahead log (see
    /// [`WalFsyncMode`]); `Off` is test-only.
    pub wal_fsync_mode: WalFsyncMode,
    /// Upper bound, in microseconds, on how long a group-commit leader
    /// dallies for followers to join its fsync batch. Must be non-zero when
    /// `wal_fsync_mode` is `Group` (enforced by `Engine::builder()`).
    pub group_commit_window_us: u64,
    /// Simulated latency of one WAL fsync, in microseconds, spun on the
    /// wall clock before the real fsync is issued. `0` (the default) keeps
    /// tests fast; benches set it to a device-realistic value so group
    /// commit amortises a *visible* cost, like the disk-latency knobs above.
    pub wal_sync_delay_us: u64,
    /// Whether the wait-event subsystem (RAII wait guards on lock queues,
    /// WAL barriers, buffer I/O, retry backoff) and the ASH sampler are
    /// wired in. Requires `monitor_enabled`; the `ash_overhead` bench flips
    /// this off to isolate the subsystem's cost.
    pub wait_events_enabled: bool,
    /// Active Session History sampling interval in milliseconds. The
    /// sampler is cooperative — it fires from statement begin/end and the
    /// daemon's poll, never from a dedicated thread — so this is the
    /// *minimum* spacing between samples. Must be non-zero when the wait
    /// subsystem is on (enforced by `Engine::builder()`).
    pub ash_sample_interval_ms: u64,
    /// Capacity (samples) of the ASH history ring behind `ima$ash`. Must be
    /// non-zero when the wait subsystem is on (enforced by
    /// `Engine::builder()`).
    pub ash_ring_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            buffer_pool_pages: 2048,
            monitor_enabled: true,
            monitor_statement_capacity: 1000,
            monitor_workload_capacity: 4096,
            monitor_statistics_capacity: 4096,
            monitor_reference_capacity: 8192,
            trace_enabled: false,
            trace_statement_capacity: 512,
            trace_ring_capacity: 1024,
            heap_main_pages: 8,
            lock_timeout_ms: 5_000,
            plan_cache_capacity: 256,
            // Calibrated to a 2009-era server disk subsystem with command
            // queueing and read-ahead: ~2 ms effective random read, ~0.2 ms
            // per sequential page, ~0.25 ms write (a 10:1 random:sequential
            // asymmetry — pure seek time would be worse, but real scans and
            // probes overlap I/O).
            disk_random_read_ns: 2_000_000,
            disk_seq_read_ns: 200_000,
            disk_write_ns: 250_000,
            cpu_tuple_ns: 200,
            wal_fsync_mode: WalFsyncMode::Group,
            group_commit_window_us: 100,
            wal_sync_delay_us: 0,
            wait_events_enabled: true,
            ash_sample_interval_ms: 100,
            ash_ring_capacity: 4096,
        }
    }
}

impl EngineConfig {
    /// The paper's "Original" setup: the untouched engine, no sensors.
    pub fn original() -> Self {
        EngineConfig {
            monitor_enabled: false,
            ..Self::default()
        }
    }

    /// The paper's "Monitoring" setup: sensors compiled in.
    pub fn monitoring() -> Self {
        Self::default()
    }

    /// The "Monitoring" setup with the structured tracing layer enabled
    /// from the start (stage spans, per-operator spans, latency histograms).
    pub fn tracing() -> Self {
        EngineConfig {
            trace_enabled: true,
            ..Self::default()
        }
    }

    /// Builder-style override of the buffer-pool size.
    pub fn with_buffer_pool_pages(mut self, pages: usize) -> Self {
        self.buffer_pool_pages = pages;
        self
    }

    /// Builder-style override of the statement ring-buffer capacity.
    pub fn with_statement_capacity(mut self, cap: usize) -> Self {
        self.monitor_statement_capacity = cap;
        self
    }

    /// Builder-style override of heap main-page extent.
    pub fn with_heap_main_pages(mut self, pages: usize) -> Self {
        self.heap_main_pages = pages;
        self
    }

    /// Builder-style override of the runtime tracing flag.
    pub fn with_tracing(mut self, enabled: bool) -> Self {
        self.trace_enabled = enabled;
        self
    }

    /// Builder-style override of the plan-cache capacity (0 disables).
    pub fn with_plan_cache_capacity(mut self, entries: usize) -> Self {
        self.plan_cache_capacity = entries;
        self
    }

    /// Builder-style override of the WAL fsync mode.
    pub fn with_wal_fsync_mode(mut self, mode: WalFsyncMode) -> Self {
        self.wal_fsync_mode = mode;
        self
    }

    /// Builder-style override of the group-commit window (microseconds).
    pub fn with_group_commit_window_us(mut self, us: u64) -> Self {
        self.group_commit_window_us = us;
        self
    }

    /// Builder-style override of the simulated WAL fsync latency
    /// (microseconds); bench-oriented.
    pub fn with_wal_sync_delay_us(mut self, us: u64) -> Self {
        self.wal_sync_delay_us = us;
        self
    }

    /// Builder-style override of the wait-event + ASH subsystem flag.
    pub fn with_wait_events_enabled(mut self, enabled: bool) -> Self {
        self.wait_events_enabled = enabled;
        self
    }

    /// Builder-style override of the ASH sampling interval (milliseconds).
    pub fn with_ash_sample_interval_ms(mut self, ms: u64) -> Self {
        self.ash_sample_interval_ms = ms;
        self
    }

    /// Builder-style override of the ASH history-ring capacity (samples).
    pub fn with_ash_ring_capacity(mut self, samples: usize) -> Self {
        self.ash_ring_capacity = samples;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setups_differ_only_in_monitoring() {
        let orig = EngineConfig::original();
        let mon = EngineConfig::monitoring();
        assert!(!orig.monitor_enabled);
        assert!(mon.monitor_enabled);
        assert_eq!(orig.buffer_pool_pages, mon.buffer_pool_pages);
    }

    #[test]
    fn builder_overrides() {
        let c = EngineConfig::default()
            .with_buffer_pool_pages(16)
            .with_statement_capacity(10)
            .with_heap_main_pages(2);
        assert_eq!(c.buffer_pool_pages, 16);
        assert_eq!(c.monitor_statement_capacity, 10);
        assert_eq!(c.heap_main_pages, 2);
    }

    #[test]
    fn wal_fsync_mode_parse_display_roundtrip() {
        for mode in [WalFsyncMode::Always, WalFsyncMode::Group, WalFsyncMode::Off] {
            assert_eq!(mode.to_string().parse::<WalFsyncMode>().unwrap(), mode);
        }
        assert!("sometimes".parse::<WalFsyncMode>().is_err());
        assert_eq!(EngineConfig::default().wal_fsync_mode, WalFsyncMode::Group);
        assert!(EngineConfig::default().group_commit_window_us > 0);
    }

    #[test]
    fn wal_builder_overrides() {
        let c = EngineConfig::default()
            .with_wal_fsync_mode(WalFsyncMode::Always)
            .with_group_commit_window_us(250)
            .with_wal_sync_delay_us(50);
        assert_eq!(c.wal_fsync_mode, WalFsyncMode::Always);
        assert_eq!(c.group_commit_window_us, 250);
        assert_eq!(c.wal_sync_delay_us, 50);
    }
}
