#![forbid(unsafe_code)]
//! Shared foundation types for the Ingot DBMS.
//!
//! This crate contains the vocabulary used by every other subsystem: SQL
//! [`Value`]s and their [`DataType`]s, [`Row`]s and [`Schema`]s, object
//! identifiers, the unified [`Error`] type, cost units, statement hashing and
//! clock utilities.
//!
//! The engine reproduces the system described in *An Integrated Approach to
//! Performance Monitoring for Autonomous Tuning* (Thiem & Sattler, ICDE 2009);
//! these types are deliberately simple so that the monitoring sensors added in
//! `ingot-core` can log them "right at their source" without any extra
//! catalog or disk access, as the paper requires.

pub mod clock;
pub mod config;
pub mod conn;
pub mod cost;
pub mod error;
pub mod hash;
pub mod ids;
pub mod mvcc;
pub mod net;
pub mod retry;
pub mod ring;
pub mod row;
pub mod value;
pub mod waits;
pub mod wire;

pub use clock::{MonotonicClock, SimClock};
pub use config::{EngineConfig, WalFsyncMode};
pub use conn::{Connection, PreparedStatement, StatementResult};
pub use cost::Cost;
pub use error::{Error, Result};
pub use hash::{fnv1a64, StmtHash};
pub use ids::{AttrId, DatabaseId, IndexId, PageId, SessionId, TableId, TxnId};
pub use mvcc::Snapshot;
pub use net::{SocketSpec, Stream};
pub use retry::{RetryPolicy, SplitMix64};
pub use ring::RingBuffer;
pub use row::{Column, Row, Schema};
pub use value::{DataType, Value};
pub use waits::{
    bind_session, charge_ambient, SessionBinding, SessionWaits, WaitCounters, WaitEvent, WaitGuard,
    WaitRecord, WaitRegistry, WaitRegistryHandle, WaitTotal, WAIT_EVENT_COUNT,
};
pub use wire::{
    Request, Response, WireCodeEntry, WireError, MAX_FRAME_BYTES, PROTOCOL_VERSION, WIRE_CODE_TABLE,
};
