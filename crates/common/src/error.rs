//! The unified error type shared by every Ingot subsystem.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// All failure modes of the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexing / parsing failure, with position information where available.
    Parse(String),
    /// Name resolution failure (unknown table, column, index, database…).
    Binder(String),
    /// Type mismatch during binding or execution.
    Type(String),
    /// Catalog-level failure (duplicate object, missing object…).
    Catalog(String),
    /// Storage-level failure (page full, invalid row id, I/O…).
    Storage(String),
    /// Planner could not produce a plan.
    Plan(String),
    /// Executor runtime failure.
    Execution(String),
    /// Lock manager: the transaction was chosen as a deadlock victim.
    Deadlock {
        /// The transaction that was aborted.
        victim: u64,
    },
    /// Lock manager: lock wait exceeded the configured timeout.
    LockTimeout(String),
    /// Constraint violation (duplicate primary key etc.).
    Constraint(String),
    /// MVCC first-committer-wins validation failed: the row version this
    /// transaction read was superseded by a commit after its snapshot.
    WriteConflict(String),
    /// Monitoring / IMA failure (unknown virtual table etc.).
    Monitor(String),
    /// Daemon failure (workload DB unreachable etc.).
    Daemon(String),
    /// Operating-system I/O error, stringified (std::io::Error is not Clone).
    Io(String),
    /// A *transient* I/O failure: the operation is expected to succeed if
    /// retried (fault injection, EAGAIN-style conditions, brief outages).
    TransientIo(String),
    /// A cached plan was invalidated between probe and execution (DDL,
    /// `CREATE STATISTICS`, virtual-index changes). Retrying re-plans.
    PlanCacheInvalidated(String),
    /// A prepared statement was executed with the wrong number of bound
    /// parameter values.
    ParamArity {
        /// Parameters the statement declares (`$1`‥`$expected`).
        expected: usize,
        /// Values actually supplied.
        got: usize,
    },
    /// Feature parsed but not supported by this engine build.
    Unsupported(String),
    /// Wire-protocol violation (malformed frame, version mismatch, unknown
    /// opcode, handshake out of order). Always fatal for the connection.
    Protocol(String),
}

impl Error {
    /// Shorthand constructor for [`Error::Parse`].
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse(msg.into())
    }
    /// Shorthand constructor for [`Error::Binder`].
    pub fn binder(msg: impl Into<String>) -> Self {
        Error::Binder(msg.into())
    }
    /// Shorthand constructor for [`Error::Type`].
    pub fn type_error(msg: impl Into<String>) -> Self {
        Error::Type(msg.into())
    }
    /// Shorthand constructor for [`Error::Catalog`].
    pub fn catalog(msg: impl Into<String>) -> Self {
        Error::Catalog(msg.into())
    }
    /// Shorthand constructor for [`Error::Storage`].
    pub fn storage(msg: impl Into<String>) -> Self {
        Error::Storage(msg.into())
    }
    /// Shorthand constructor for [`Error::Plan`].
    pub fn plan(msg: impl Into<String>) -> Self {
        Error::Plan(msg.into())
    }
    /// Shorthand constructor for [`Error::Execution`].
    pub fn execution(msg: impl Into<String>) -> Self {
        Error::Execution(msg.into())
    }
    /// Shorthand constructor for [`Error::Constraint`].
    pub fn constraint(msg: impl Into<String>) -> Self {
        Error::Constraint(msg.into())
    }
    /// Shorthand constructor for [`Error::WriteConflict`].
    pub fn write_conflict(msg: impl Into<String>) -> Self {
        Error::WriteConflict(msg.into())
    }
    /// Shorthand constructor for [`Error::Monitor`].
    pub fn monitor(msg: impl Into<String>) -> Self {
        Error::Monitor(msg.into())
    }
    /// Shorthand constructor for [`Error::Daemon`].
    pub fn daemon(msg: impl Into<String>) -> Self {
        Error::Daemon(msg.into())
    }
    /// Shorthand constructor for [`Error::TransientIo`].
    pub fn transient_io(msg: impl Into<String>) -> Self {
        Error::TransientIo(msg.into())
    }
    /// Shorthand constructor for [`Error::PlanCacheInvalidated`].
    pub fn plan_cache_invalidated(msg: impl Into<String>) -> Self {
        Error::PlanCacheInvalidated(msg.into())
    }
    /// Shorthand constructor for [`Error::ParamArity`].
    pub fn param_arity(expected: usize, got: usize) -> Self {
        Error::ParamArity { expected, got }
    }
    /// Shorthand constructor for [`Error::Unsupported`].
    pub fn unsupported(msg: impl Into<String>) -> Self {
        Error::Unsupported(msg.into())
    }
    /// Shorthand constructor for [`Error::Protocol`].
    pub fn protocol(msg: impl Into<String>) -> Self {
        Error::Protocol(msg.into())
    }

    /// Retryability classification: `true` for failures that a capped
    /// backoff-and-retry loop is expected to clear (brief I/O outages, lock
    /// timeouts, deadlock victims), `false` for deterministic failures
    /// (parse/bind/type errors, permanent I/O faults) where retrying only
    /// repeats the failure.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Error::TransientIo(_)
                | Error::LockTimeout(_)
                | Error::Deadlock { .. }
                | Error::PlanCacheInvalidated(_)
                | Error::WriteConflict(_)
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Binder(m) => write!(f, "binder error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Deadlock { victim } => {
                write!(f, "deadlock detected; transaction {victim} aborted")
            }
            Error::LockTimeout(m) => write!(f, "lock timeout: {m}"),
            Error::Constraint(m) => write!(f, "constraint violation: {m}"),
            Error::WriteConflict(m) => write!(f, "write conflict: {m}"),
            Error::Monitor(m) => write!(f, "monitor error: {m}"),
            Error::Daemon(m) => write!(f, "daemon error: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
            Error::TransientIo(m) => write!(f, "transient io error: {m}"),
            Error::PlanCacheInvalidated(m) => write!(f, "plan cache invalidated: {m}"),
            Error::ParamArity { expected, got } => write!(
                f,
                "parameter arity mismatch: statement declares {expected} parameter(s), {got} \
                 value(s) bound"
            ),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_prefixed() {
        assert!(Error::parse("x").to_string().starts_with("parse error"));
        assert!(Error::Deadlock { victim: 7 }.to_string().contains('7'));
    }

    #[test]
    fn io_conversion() {
        let e: Error = std::io::Error::other("boom").into();
        assert!(matches!(e, Error::Io(_)));
    }

    #[test]
    fn transient_classification() {
        assert!(Error::transient_io("blip").is_transient());
        assert!(Error::LockTimeout("t".into()).is_transient());
        assert!(Error::Deadlock { victim: 1 }.is_transient());
        assert!(Error::plan_cache_invalidated("ddl").is_transient());
        assert!(Error::write_conflict("superseded").is_transient());
        assert!(!Error::Io("disk gone".into()).is_transient());
        assert!(!Error::storage("bad page").is_transient());
        assert!(!Error::parse("syntax").is_transient());
        assert!(!Error::param_arity(2, 1).is_transient());
        assert!(!Error::protocol("bad frame").is_transient());
    }

    #[test]
    fn param_arity_display_names_both_counts() {
        let msg = Error::param_arity(3, 1).to_string();
        assert!(msg.contains('3') && msg.contains('1'), "{msg}");
    }
}
