//! Clocks.
//!
//! Two time sources are used in the system:
//!
//! * [`MonotonicClock`] — thin wrapper over `std::time::Instant` used by the
//!   sensors for wall-clock start/stop and for the monitor's self-timing
//!   (Fig 5 needs the share of monitoring time per statement).
//! * [`SimClock`] — a shared, manually-advanced nanosecond counter used by
//!   the disk model and the daemon's retention logic so that experiments
//!   like "seven days of collection" run deterministically in milliseconds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Wall-clock helper: nanoseconds since an arbitrary process-local epoch.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock anchored at "now".
    pub fn new() -> Self {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the clock's epoch.
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

/// A shared simulated clock measured in nanoseconds.
///
/// Cloning shares the underlying counter. The engine advances it when the
/// disk model charges simulated latency; tests and experiment harnesses
/// advance it to fast-forward through retention windows.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in nanoseconds.
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// Current simulated time in whole seconds.
    pub fn now_secs(&self) -> u64 {
        self.now_nanos() / 1_000_000_000
    }

    /// Advance the clock by `delta` nanoseconds, returning the new reading.
    #[inline]
    pub fn advance_nanos(&self, delta: u64) -> u64 {
        self.nanos.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Advance the clock by whole seconds.
    pub fn advance_secs(&self, secs: u64) -> u64 {
        self.advance_nanos(secs * 1_000_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_is_shared() {
        let c = SimClock::new();
        let c2 = c.clone();
        c.advance_secs(5);
        assert_eq!(c2.now_secs(), 5);
        c2.advance_nanos(1_000_000_000);
        assert_eq!(c.now_secs(), 6);
    }
}
