//! Cost units.
//!
//! The Ingres optimizer (and therefore the paper's Fig 3 `workload` table)
//! expresses cost as two components: CPU and disk I/O. We keep the same
//! decomposition and use it uniformly for *estimated* costs (optimizer units)
//! and *actual* costs (measured tuples processed / pages touched), so that
//! the analyzer can compare the two directly, as the paper's first rule does
//! ("actual and estimated costs of a statement differ significantly").

use std::fmt;
use std::ops::{Add, AddAssign};

/// A two-component cost: CPU work and disk I/O.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// CPU component. For estimates: abstract optimizer units (≈ tuples
    /// processed). For actuals: tuples actually processed.
    pub cpu: f64,
    /// I/O component. For estimates: predicted page reads. For actuals:
    /// physical page reads + writes observed at the buffer pool.
    pub io: f64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost { cpu: 0.0, io: 0.0 };

    /// Build a cost from components.
    pub fn new(cpu: f64, io: f64) -> Self {
        Cost { cpu, io }
    }

    /// A CPU-only cost.
    pub fn cpu(cpu: f64) -> Self {
        Cost { cpu, io: 0.0 }
    }

    /// An I/O-only cost.
    pub fn io(io: f64) -> Self {
        Cost { cpu: 0.0, io }
    }

    /// Collapse to a single comparable number. The weight mirrors the
    /// classic assumption that one page I/O costs as much as processing a
    /// few thousand tuples in memory.
    pub fn total(&self) -> f64 {
        self.cpu + self.io * Self::IO_WEIGHT
    }

    /// Relative weight of one I/O versus one CPU unit in [`Cost::total`].
    pub const IO_WEIGHT: f64 = 4000.0;

    /// True if `self.total()` is strictly less than `other.total()`.
    pub fn cheaper_than(&self, other: &Cost) -> bool {
        self.total() < other.total()
    }

    /// Relative deviation between an estimate and an actual, used by the
    /// analyzer's statistics rule: |est − act| / max(act, 1).
    pub fn relative_error(estimate: &Cost, actual: &Cost) -> f64 {
        let e = estimate.total();
        let a = actual.total();
        (e - a).abs() / a.max(1.0)
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            cpu: self.cpu + rhs.cpu,
            io: self.io + rhs.io,
        }
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.cpu += rhs.cpu;
        self.io += rhs.io;
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu={:.1} io={:.1}", self.cpu, self.io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_weights_io() {
        let c = Cost::new(10.0, 1.0);
        assert!(c.total() > 10.0);
        assert!(Cost::cpu(1.0).cheaper_than(&Cost::io(1.0)));
    }

    #[test]
    fn addition() {
        let mut a = Cost::new(1.0, 2.0);
        a += Cost::new(3.0, 4.0);
        assert_eq!(a, Cost::new(4.0, 6.0));
        assert_eq!(a + Cost::ZERO, a);
    }

    #[test]
    fn relative_error_symmetric_in_magnitude() {
        let act = Cost::new(100.0, 0.0);
        assert!((Cost::relative_error(&Cost::new(200.0, 0.0), &act) - 1.0).abs() < 1e-9);
        assert!(Cost::relative_error(&act, &act) < 1e-9);
    }
}
