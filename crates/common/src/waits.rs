//! The wait-event taxonomy and its accounting plumbing.
//!
//! The monitor's sensors (ingot-core) measure where a statement's time is
//! *spent* — parse, optimize, execute. This module measures where time is
//! *lost*: blocked on a lock queue, dallying behind a group-commit leader,
//! waiting for a page to come off the disk. Each loss site charges a closed
//! [`WaitEvent`] through an RAII [`WaitGuard`], which attributes the
//! nanoseconds twice:
//!
//! * **globally**, to the engine's [`WaitRegistry`] (cumulative counters per
//!   event plus a ring of recent [`WaitRecord`]s — the `ima$wait_events`
//!   source), and
//! * **per session**, to the [`SessionWaits`] bound to the executing thread
//!   (the ASH sampler reads the session's *current* wait from here).
//!
//! The module lives in `ingot-common` (not `ingot-trace`) because the
//! instrumented wait paths sit *below* the trace crate in the dependency
//! graph: `common/retry.rs` is in this very crate, and `ingot-txn` /
//! `ingot-storage` depend only on `ingot-common`. `ingot-trace` re-exports
//! everything here so observability consumers keep a single import surface.
//!
//! Attribution uses an ambient thread-local binding ([`bind_session`]):
//! the engine binds the executing session's [`SessionWaits`] (plus the
//! engine's registry) for the duration of one statement, and any guard
//! created further down the stack — the lock manager, the WAL, the buffer
//! pool, the retry loop — charges that session without threading handles
//! through every call signature. Code without an engine (unit tests, loom
//! models) simply constructs managers with no registry: every guard then
//! collapses to a no-op.
//!
//! Construction of wait guards is policed by `ingot-verify` (check 7): only
//! the instrumented modules may begin a wait, so the taxonomy stays closed.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock::MonotonicClock;
use crate::ring::RingBuffer;

/// Number of wait-event kinds (array sizing for [`WaitCounters`]).
pub const WAIT_EVENT_COUNT: usize = 11;

/// The closed taxonomy of places a session can lose time.
///
/// "On CPU" is deliberately *not* a variant: a session that is not inside a
/// wait guard is on CPU by definition, and the ASH sampler records that as
/// the absence of a wait event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitEvent {
    /// Blocked acquiring a shared (read) lock.
    LockWaitS,
    /// Blocked acquiring an exclusive (write) lock.
    LockWaitX,
    /// Waiting on a WAL fsync durability barrier (the physical sync itself).
    WalFsync,
    /// Group commit: a follower waiting for the leader's covering fsync, or
    /// the leader dallying its window for followers to join the batch.
    GroupCommitDally,
    /// Buffer-pool miss: waiting for a page read from the disk backend.
    BufferRead,
    /// Buffer pool at capacity: waiting for the eviction sweep (including
    /// dirty-page write-back) to free a frame.
    BufferEvict,
    /// Sleeping out a retry backoff delay (transient-failure recovery).
    RetryBackoff,
    /// The storage daemon replaying its catch-up buffer after an outage.
    DaemonCatchup,
    /// MVCC point lookup walking a version chain backwards from the head to
    /// find the version visible to an older snapshot. Long walks mean the
    /// GC watermark is lagging (a long-running snapshot pins old versions).
    VersionChainWalk,
    /// Parked on the transaction gate: a `begin` blocked while a checkpoint
    /// quiesce holds the gate closed, or the quiescer itself draining
    /// active transactions.
    TxnQuiesce,
    /// A committer waiting in the publish queue for every earlier commit
    /// timestamp to publish, so `commit_seq` advances without gaps.
    CommitPublish,
}

impl WaitEvent {
    /// Every event, in stable `index()` order.
    pub const ALL: [WaitEvent; WAIT_EVENT_COUNT] = [
        WaitEvent::LockWaitS,
        WaitEvent::LockWaitX,
        WaitEvent::WalFsync,
        WaitEvent::GroupCommitDally,
        WaitEvent::BufferRead,
        WaitEvent::BufferEvict,
        WaitEvent::RetryBackoff,
        WaitEvent::DaemonCatchup,
        WaitEvent::VersionChainWalk,
        WaitEvent::TxnQuiesce,
        WaitEvent::CommitPublish,
    ];

    /// Stable dense index (counter-array slot).
    pub fn index(self) -> usize {
        match self {
            WaitEvent::LockWaitS => 0,
            WaitEvent::LockWaitX => 1,
            WaitEvent::WalFsync => 2,
            WaitEvent::GroupCommitDally => 3,
            WaitEvent::BufferRead => 4,
            WaitEvent::BufferEvict => 5,
            WaitEvent::RetryBackoff => 6,
            WaitEvent::DaemonCatchup => 7,
            WaitEvent::VersionChainWalk => 8,
            WaitEvent::TxnQuiesce => 9,
            WaitEvent::CommitPublish => 10,
        }
    }

    /// Inverse of [`index`](Self::index).
    pub fn from_index(i: usize) -> Option<WaitEvent> {
        Self::ALL.get(i).copied()
    }

    /// Canonical name (used by IMA tables, metrics labels and the workload
    /// DB — parse back with [`from_name`](Self::from_name)).
    pub fn name(self) -> &'static str {
        match self {
            WaitEvent::LockWaitS => "LockWaitS",
            WaitEvent::LockWaitX => "LockWaitX",
            WaitEvent::WalFsync => "WalFsync",
            WaitEvent::GroupCommitDally => "GroupCommitDally",
            WaitEvent::BufferRead => "BufferRead",
            WaitEvent::BufferEvict => "BufferEvict",
            WaitEvent::RetryBackoff => "RetryBackoff",
            WaitEvent::DaemonCatchup => "DaemonCatchup",
            WaitEvent::VersionChainWalk => "VersionChainWalk",
            WaitEvent::TxnQuiesce => "TxnQuiesce",
            WaitEvent::CommitPublish => "CommitPublish",
        }
    }

    /// Parse a canonical name back into the event.
    pub fn from_name(name: &str) -> Option<WaitEvent> {
        Self::ALL.iter().copied().find(|e| e.name() == name)
    }
}

impl fmt::Display for WaitEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Cumulative totals for one event (a [`WaitCounters`] snapshot row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTotal {
    /// The event.
    pub event: WaitEvent,
    /// How many waits completed.
    pub count: u64,
    /// Total nanoseconds lost to this event.
    pub total_ns: u64,
}

/// One completed wait, as kept in the registry's (and each session's)
/// recent-history ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitRecord {
    /// What was waited on.
    pub event: WaitEvent,
    /// Session the wait was charged to (`None` for engine-internal waits
    /// with no bound session, e.g. the daemon's catch-up replay).
    pub session: Option<u64>,
    /// Wall-clock start, nanoseconds on the registry's clock.
    pub start_ns: u64,
    /// How long the wait lasted.
    pub duration_ns: u64,
}

/// Lock-free per-event counters: one `(count, nanos)` pair per
/// [`WaitEvent`], charged with relaxed atomics so the hot paths never
/// serialize on the accounting.
#[derive(Debug, Default)]
pub struct WaitCounters {
    counts: [AtomicU64; WAIT_EVENT_COUNT],
    nanos: [AtomicU64; WAIT_EVENT_COUNT],
}

impl WaitCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one completed wait of `ns` nanoseconds to `event`.
    pub fn charge(&self, event: WaitEvent, ns: u64) {
        let i = event.index();
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.nanos[i].fetch_add(ns, Ordering::Relaxed);
    }

    /// Completed waits for `event`.
    pub fn count(&self, event: WaitEvent) -> u64 {
        self.counts[event.index()].load(Ordering::Relaxed)
    }

    /// Nanoseconds lost to `event`.
    pub fn nanos(&self, event: WaitEvent) -> u64 {
        self.nanos[event.index()].load(Ordering::Relaxed)
    }

    /// Nanoseconds lost across every event.
    pub fn total_ns(&self) -> u64 {
        self.nanos
            .iter()
            .map(|n| n.load(Ordering::Relaxed))
            .fold(0u64, u64::saturating_add)
    }

    /// A row per event (zeros included, so consumers always see the full
    /// taxonomy).
    pub fn snapshot(&self) -> Vec<WaitTotal> {
        WaitEvent::ALL
            .iter()
            .map(|&event| WaitTotal {
                event,
                count: self.count(event),
                total_ns: self.nanos(event),
            })
            .collect()
    }
}

/// Engine-global wait accounting: cumulative [`WaitCounters`] plus a
/// bounded ring of recent [`WaitRecord`]s. One registry per engine instance
/// — deliberately *not* a process global, so concurrently running engines
/// (tests spin up dozens) never cross-contaminate each other's profiles.
#[derive(Debug)]
pub struct WaitRegistry {
    clock: MonotonicClock,
    counters: WaitCounters,
    recent: Mutex<RingBuffer<WaitRecord>>,
}

impl WaitRegistry {
    /// A registry with its own clock and a recent-ring of `recent_capacity`.
    pub fn new(recent_capacity: usize) -> Self {
        Self::with_clock(MonotonicClock::new(), recent_capacity)
    }

    /// A registry timing waits on `clock` (the engine passes its wall clock
    /// so wait timestamps align with sensor timestamps).
    pub fn with_clock(clock: MonotonicClock, recent_capacity: usize) -> Self {
        WaitRegistry {
            clock,
            counters: WaitCounters::new(),
            recent: Mutex::new(RingBuffer::new(recent_capacity)),
        }
    }

    /// The clock waits are measured on.
    pub fn clock(&self) -> MonotonicClock {
        self.clock
    }

    /// The global cumulative counters.
    pub fn counters(&self) -> &WaitCounters {
        &self.counters
    }

    /// Cumulative totals per event (always all [`WAIT_EVENT_COUNT`] rows).
    pub fn snapshot(&self) -> Vec<WaitTotal> {
        self.counters.snapshot()
    }

    /// The most recent completed waits, oldest first.
    pub fn recent(&self) -> Vec<WaitRecord> {
        match self.recent.lock() {
            Ok(ring) => ring.iter().copied().collect(),
            Err(poisoned) => poisoned.into_inner().iter().copied().collect(),
        }
    }

    /// Begin a wait on this registry: returns the RAII guard that charges
    /// the elapsed nanoseconds on drop. Used by instrumented code that holds
    /// a registry handle directly (the storage daemon's catch-up loop); the
    /// lock/WAL/buffer paths go through [`WaitGuard::begin`] instead.
    pub fn begin(self: &Arc<Self>, event: WaitEvent) -> WaitGuard {
        WaitGuard::begin(Some(self), event)
    }

    /// Charge a completed wait of known duration (no guard). The session
    /// bound to the calling thread, if any, is charged too.
    pub fn charge(&self, event: WaitEvent, ns: u64) {
        let start = self.clock.now_nanos().saturating_sub(ns);
        let session = AMBIENT.with(|a| a.borrow().session.clone());
        self.commit_wait(event, start, ns, session.as_ref());
    }

    fn commit_wait(
        &self,
        event: WaitEvent,
        start_ns: u64,
        duration_ns: u64,
        session: Option<&(u64, Arc<SessionWaits>)>,
    ) {
        let record = WaitRecord {
            event,
            session: session.map(|(id, _)| *id),
            start_ns,
            duration_ns,
        };
        self.counters.charge(event, duration_ns);
        match self.recent.lock() {
            Ok(mut ring) => {
                ring.push(record);
            }
            Err(poisoned) => {
                poisoned.into_inner().push(record);
            }
        }
        if let Some((_, waits)) = session {
            waits.record(record);
        }
    }
}

/// Per-session wait accounting: cumulative counters, a small recent-wait
/// ring, and the session's *current* wait state — the field the ASH sampler
/// reads from another thread, hence the atomics.
#[derive(Debug)]
pub struct SessionWaits {
    counters: WaitCounters,
    /// `0` = on CPU; otherwise `event.index() + 1`.
    current: AtomicUsize,
    /// When the current wait began (registry-clock nanoseconds).
    current_since_ns: AtomicU64,
    recent: Mutex<RingBuffer<WaitRecord>>,
}

impl SessionWaits {
    /// Session accounting with a recent-ring of `recent_capacity`.
    pub fn new(recent_capacity: usize) -> Self {
        SessionWaits {
            counters: WaitCounters::new(),
            current: AtomicUsize::new(0),
            current_since_ns: AtomicU64::new(0),
            recent: Mutex::new(RingBuffer::new(recent_capacity)),
        }
    }

    /// This session's cumulative counters.
    pub fn counters(&self) -> &WaitCounters {
        &self.counters
    }

    /// The wait the session is inside right now, with its start timestamp —
    /// `None` means on CPU. Safe to call from any thread (the ASH sampler).
    pub fn current_wait(&self) -> Option<(WaitEvent, u64)> {
        let cur = self.current.load(Ordering::Acquire);
        let event = WaitEvent::from_index(cur.checked_sub(1)?)?;
        Some((event, self.current_since_ns.load(Ordering::Relaxed)))
    }

    /// This session's most recent completed waits, oldest first.
    pub fn recent(&self) -> Vec<WaitRecord> {
        match self.recent.lock() {
            Ok(ring) => ring.iter().copied().collect(),
            Err(poisoned) => poisoned.into_inner().iter().copied().collect(),
        }
    }

    /// Mark `event` as the session's current wait, returning the previous
    /// current-wait state so the owning [`WaitGuard`] can [`restore`]
    /// (Self::restore) it on drop. Returning-and-restoring (rather than
    /// clearing to zero) keeps the ASH view correct if guards ever nest or
    /// a [`charge_ambient`] fires while an outer guard is active.
    fn enter(&self, event: WaitEvent, now_ns: u64) -> (usize, u64) {
        let prev = (
            self.current.load(Ordering::Acquire),
            self.current_since_ns.load(Ordering::Relaxed),
        );
        self.current_since_ns.store(now_ns, Ordering::Relaxed);
        self.current.store(event.index() + 1, Ordering::Release);
        prev
    }

    /// Restore a current-wait state previously returned by [`enter`]
    /// (Self::enter).
    fn restore(&self, prev: (usize, u64)) {
        self.current_since_ns.store(prev.1, Ordering::Relaxed);
        self.current.store(prev.0, Ordering::Release);
    }

    /// Charge one completed wait. Deliberately does *not* touch the
    /// current-wait state: a duration-only charge (e.g. the retry loop's
    /// [`charge_ambient`]) may land while an outer [`WaitGuard`] is still
    /// active, and clearing `current` here would make the ASH sampler see
    /// the rest of that outer wait as on-CPU. The guard that set the state
    /// restores it on drop instead.
    fn record(&self, record: WaitRecord) {
        self.counters.charge(record.event, record.duration_ns);
        match self.recent.lock() {
            Ok(mut ring) => {
                ring.push(record);
            }
            Err(poisoned) => {
                poisoned.into_inner().push(record);
            }
        }
    }
}

#[derive(Clone, Default)]
struct Ambient {
    session: Option<(u64, Arc<SessionWaits>)>,
    registry: Option<Arc<WaitRegistry>>,
}

thread_local! {
    static AMBIENT: RefCell<Ambient> = RefCell::new(Ambient::default());
}

/// RAII restore of the previous ambient binding (see [`bind_session`]).
pub struct SessionBinding {
    prev: Option<Ambient>,
}

impl Drop for SessionBinding {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            AMBIENT.with(|a| *a.borrow_mut() = prev);
        }
    }
}

/// Bind `session` (identified by `session_id`) and `registry` to the calling
/// thread for the lifetime of the returned guard. Every wait begun on this
/// thread — however deep in the stack — is then charged to both. The engine
/// installs this around each statement execution; nesting restores the
/// previous binding on drop.
pub fn bind_session(
    session_id: u64,
    session: Arc<SessionWaits>,
    registry: Arc<WaitRegistry>,
) -> SessionBinding {
    let prev = AMBIENT.with(|a| {
        let mut a = a.borrow_mut();
        let prev = a.clone();
        *a = Ambient {
            session: Some((session_id, session)),
            registry: Some(registry),
        };
        prev
    });
    SessionBinding { prev: Some(prev) }
}

/// Charge a completed wait of known duration to the thread's ambient
/// registry and session. A no-op when nothing is bound (code running outside
/// any engine). This is the non-RAII entry point for waits whose duration is
/// declared rather than measured — the retry loop charges its backoff delay
/// here so simulated-clock waits are accounted at their scheduled length.
pub fn charge_ambient(event: WaitEvent, ns: u64) {
    let registry = AMBIENT.with(|a| a.borrow().registry.clone());
    if let Some(registry) = registry {
        registry.charge(event, ns);
    }
}

struct GuardInner {
    event: WaitEvent,
    start_ns: u64,
    registry: Arc<WaitRegistry>,
    session: Option<(u64, Arc<SessionWaits>)>,
    /// The session's current-wait state when this guard began, restored on
    /// drop (meaningful only when `session` is `Some`).
    prev_wait: (usize, u64),
}

/// RAII wait measurement: created at the top of a wait path, charges the
/// elapsed nanoseconds to the registry (and the ambient session, when one is
/// bound) on drop. A guard with no registry — neither passed nor ambient —
/// is a no-op, which is how un-instrumented constructions (loom models,
/// plain unit tests) pay nothing.
///
/// Dropping restores the session's current-wait state to what it was when
/// the guard began, so an inner wait ending never erases an outer one from
/// the ASH view. Instrumented paths should still avoid *nesting* guards:
/// the cumulative counters charge each guard its full elapsed time, so
/// nested guards double-count the overlapping nanoseconds.
pub struct WaitGuard {
    inner: Option<GuardInner>,
}

impl WaitGuard {
    /// Begin timing `event`. `registry` is the instrumented component's
    /// injected handle; when `None`, the thread's ambient registry (bound by
    /// the engine around statement execution) is used instead.
    pub fn begin(registry: Option<&Arc<WaitRegistry>>, event: WaitEvent) -> WaitGuard {
        let (registry, session) = AMBIENT.with(|a| {
            let a = a.borrow();
            let reg = registry.cloned().or_else(|| a.registry.clone());
            (reg, a.session.clone())
        });
        let Some(registry) = registry else {
            return WaitGuard { inner: None };
        };
        let start_ns = registry.clock().now_nanos();
        let prev_wait = match &session {
            Some((_, waits)) => waits.enter(event, start_ns),
            None => (0, 0),
        };
        WaitGuard {
            inner: Some(GuardInner {
                event,
                start_ns,
                registry,
                session,
                prev_wait,
            }),
        }
    }

    /// Begin timing `event` against the thread's ambient binding only.
    pub fn ambient(event: WaitEvent) -> WaitGuard {
        Self::begin(None, event)
    }

    /// A guard that charges nothing (explicit disabled path).
    pub fn disabled() -> WaitGuard {
        WaitGuard { inner: None }
    }

    /// Is this guard actually measuring?
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for WaitGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let now = inner.registry.clock().now_nanos();
            let duration = now.saturating_sub(inner.start_ns);
            inner.registry.commit_wait(
                inner.event,
                inner.start_ns,
                duration,
                inner.session.as_ref(),
            );
            if let Some((_, waits)) = &inner.session {
                waits.restore(inner.prev_wait);
            }
        }
    }
}

/// A lazily-injected registry handle for components built before the engine
/// (lock manager, buffer pool, WAL): starts empty, set exactly once during
/// engine construction, read with one atomic-ish `get` on the wait paths.
#[derive(Debug, Default)]
pub struct WaitRegistryHandle {
    slot: OnceLock<Arc<WaitRegistry>>,
}

impl WaitRegistryHandle {
    /// An unset handle (all guards no-op until [`set`](Self::set)).
    pub fn new() -> Self {
        Self::default()
    }

    /// Install the registry. Later calls are ignored — the first engine to
    /// wire a component wins, and components are never shared across engines.
    pub fn set(&self, registry: Arc<WaitRegistry>) {
        let _ = self.slot.set(registry);
    }

    /// The installed registry, if any.
    pub fn get(&self) -> Option<&Arc<WaitRegistry>> {
        self.slot.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_closed_and_stable() {
        assert_eq!(WaitEvent::ALL.len(), WAIT_EVENT_COUNT);
        for (i, e) in WaitEvent::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
            assert_eq!(WaitEvent::from_index(i), Some(*e));
            assert_eq!(WaitEvent::from_name(e.name()), Some(*e));
            assert_eq!(e.to_string(), e.name());
        }
        assert_eq!(WaitEvent::from_index(WAIT_EVENT_COUNT), None);
        assert_eq!(WaitEvent::from_name("NoSuchWait"), None);
        // The canonical names, pinned: IMA rows, wl_waits rows and metric
        // labels all carry these strings.
        let names: Vec<&str> = WaitEvent::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            [
                "LockWaitS",
                "LockWaitX",
                "WalFsync",
                "GroupCommitDally",
                "BufferRead",
                "BufferEvict",
                "RetryBackoff",
                "DaemonCatchup",
                "VersionChainWalk",
                "TxnQuiesce",
                "CommitPublish",
            ]
        );
    }

    #[test]
    fn counters_charge_and_snapshot() {
        let c = WaitCounters::new();
        c.charge(WaitEvent::WalFsync, 100);
        c.charge(WaitEvent::WalFsync, 50);
        c.charge(WaitEvent::BufferRead, 7);
        assert_eq!(c.count(WaitEvent::WalFsync), 2);
        assert_eq!(c.nanos(WaitEvent::WalFsync), 150);
        assert_eq!(c.total_ns(), 157);
        let snap = c.snapshot();
        assert_eq!(snap.len(), WAIT_EVENT_COUNT);
        assert!(snap
            .iter()
            .any(|t| t.event == WaitEvent::BufferRead && t.count == 1 && t.total_ns == 7));
        assert!(snap
            .iter()
            .any(|t| t.event == WaitEvent::LockWaitS && t.count == 0));
    }

    #[test]
    fn guard_charges_registry_and_bound_session() {
        let registry = Arc::new(WaitRegistry::new(16));
        let session = Arc::new(SessionWaits::new(16));
        let bound = bind_session(7, Arc::clone(&session), Arc::clone(&registry));
        {
            let guard = WaitGuard::begin(Some(&registry), WaitEvent::LockWaitX);
            assert!(guard.is_active());
            // Mid-wait, the session's current state is visible.
            let (event, _since) = session.current_wait().expect("waiting");
            assert_eq!(event, WaitEvent::LockWaitX);
        }
        drop(bound);
        assert_eq!(registry.counters().count(WaitEvent::LockWaitX), 1);
        assert_eq!(session.counters().count(WaitEvent::LockWaitX), 1);
        assert!(session.current_wait().is_none(), "back on CPU");
        let recent = registry.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].session, Some(7));
        assert_eq!(recent[0].event, WaitEvent::LockWaitX);
        assert_eq!(session.recent().len(), 1);
    }

    #[test]
    fn unbound_guard_is_a_noop() {
        let guard = WaitGuard::ambient(WaitEvent::RetryBackoff);
        assert!(!guard.is_active());
        drop(guard);
        assert!(!WaitGuard::disabled().is_active());
    }

    #[test]
    fn charge_ambient_uses_thread_binding() {
        // Nothing bound: silently dropped.
        charge_ambient(WaitEvent::RetryBackoff, 1_000);
        let registry = Arc::new(WaitRegistry::new(4));
        let session = Arc::new(SessionWaits::new(4));
        let bound = bind_session(3, Arc::clone(&session), Arc::clone(&registry));
        charge_ambient(WaitEvent::RetryBackoff, 2_500);
        drop(bound);
        // Unbound again after the RAII restore.
        charge_ambient(WaitEvent::RetryBackoff, 9_999);
        assert_eq!(registry.counters().count(WaitEvent::RetryBackoff), 1);
        assert_eq!(registry.counters().nanos(WaitEvent::RetryBackoff), 2_500);
        assert_eq!(session.counters().nanos(WaitEvent::RetryBackoff), 2_500);
    }

    #[test]
    fn registry_handle_sets_once() {
        let handle = WaitRegistryHandle::new();
        assert!(handle.get().is_none());
        let a = Arc::new(WaitRegistry::new(4));
        let b = Arc::new(WaitRegistry::new(4));
        handle.set(Arc::clone(&a));
        handle.set(b);
        assert!(Arc::ptr_eq(handle.get().expect("set"), &a));
    }

    #[test]
    fn recent_ring_is_bounded() {
        let registry = Arc::new(WaitRegistry::new(4));
        for _ in 0..10 {
            drop(registry.begin(WaitEvent::BufferEvict));
        }
        assert_eq!(registry.recent().len(), 4);
        assert_eq!(registry.counters().count(WaitEvent::BufferEvict), 10);
    }

    #[test]
    fn charge_during_wait_keeps_current_state() {
        // A duration-only charge landing mid-wait (e.g. charge_ambient from
        // the retry loop) must not clear the session's current-wait state —
        // the ASH sampler would otherwise see the rest of the outer wait as
        // on-CPU (regression: SessionWaits::record stored 0 into current).
        let registry = Arc::new(WaitRegistry::new(8));
        let session = Arc::new(SessionWaits::new(8));
        let bound = bind_session(5, Arc::clone(&session), Arc::clone(&registry));
        {
            let _outer = WaitGuard::begin(Some(&registry), WaitEvent::WalFsync);
            charge_ambient(WaitEvent::RetryBackoff, 1_000);
            let (event, _since) = session.current_wait().expect("still waiting");
            assert_eq!(event, WaitEvent::WalFsync);
        }
        assert!(session.current_wait().is_none(), "back on CPU");
        drop(bound);
        assert_eq!(session.counters().count(WaitEvent::RetryBackoff), 1);
        assert_eq!(session.counters().count(WaitEvent::WalFsync), 1);
    }

    #[test]
    fn nested_guard_restores_outer_wait() {
        // Instrumented paths should not nest guards (the counters would
        // double-charge the overlap), but if they ever do, the inner guard's
        // drop restores the outer wait's state rather than clearing it.
        let registry = Arc::new(WaitRegistry::new(8));
        let session = Arc::new(SessionWaits::new(8));
        let bound = bind_session(6, Arc::clone(&session), Arc::clone(&registry));
        {
            let _outer = WaitGuard::begin(Some(&registry), WaitEvent::LockWaitX);
            let (_, outer_since) = session.current_wait().expect("outer waiting");
            {
                let _inner = WaitGuard::begin(Some(&registry), WaitEvent::BufferRead);
                let (event, _since) = session.current_wait().expect("inner waiting");
                assert_eq!(event, WaitEvent::BufferRead);
            }
            let (event, since) = session.current_wait().expect("outer restored");
            assert_eq!(event, WaitEvent::LockWaitX);
            assert_eq!(since, outer_since);
        }
        assert!(session.current_wait().is_none(), "back on CPU");
        drop(bound);
    }

    #[test]
    fn nested_bindings_restore() {
        let r1 = Arc::new(WaitRegistry::new(4));
        let s1 = Arc::new(SessionWaits::new(4));
        let r2 = Arc::new(WaitRegistry::new(4));
        let s2 = Arc::new(SessionWaits::new(4));
        let outer = bind_session(1, Arc::clone(&s1), Arc::clone(&r1));
        {
            let _inner = bind_session(2, Arc::clone(&s2), Arc::clone(&r2));
            charge_ambient(WaitEvent::DaemonCatchup, 10);
        }
        charge_ambient(WaitEvent::DaemonCatchup, 5);
        drop(outer);
        assert_eq!(r2.counters().nanos(WaitEvent::DaemonCatchup), 10);
        assert_eq!(r1.counters().nanos(WaitEvent::DaemonCatchup), 5);
        assert_eq!(s2.counters().nanos(WaitEvent::DaemonCatchup), 10);
        assert_eq!(s1.counters().nanos(WaitEvent::DaemonCatchup), 5);
    }
}
