//! Client/server transport vocabulary: socket specs and connected streams.
//!
//! Shared by `ingot-server` (which adds listening and bind-race-safe stale
//! socket recovery on top) and `ingot-client` (which adds handshake and
//! auto-spawn). Only connected-stream plumbing lives here.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use crate::error::Result;

/// Where a server listens / a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketSpec {
    /// Unix-domain socket at this filesystem path.
    Unix(PathBuf),
    /// TCP listen/connect address, e.g. `127.0.0.1:4871`.
    Tcp(String),
}

impl SocketSpec {
    /// Parse a spec string: `tcp:HOST:PORT` is TCP, `unix:PATH` or any
    /// plain path is a Unix socket.
    pub fn parse(s: &str) -> SocketSpec {
        if let Some(addr) = s.strip_prefix("tcp:") {
            SocketSpec::Tcp(addr.to_string())
        } else if let Some(path) = s.strip_prefix("unix:") {
            SocketSpec::Unix(PathBuf::from(path))
        } else {
            SocketSpec::Unix(PathBuf::from(s))
        }
    }
}

impl std::fmt::Display for SocketSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocketSpec::Unix(p) => write!(f, "unix:{}", p.display()),
            SocketSpec::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// A connected byte stream over either transport.
#[derive(Debug)]
pub enum Stream {
    /// Unix-domain connection.
    Unix(UnixStream),
    /// TCP connection.
    Tcp(TcpStream),
}

impl Stream {
    /// Clone the OS handle (out-of-band shutdown, split read/write).
    pub fn try_clone(&self) -> Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    /// Bound the blocking time of reads so poll flags get checked.
    pub fn set_read_timeout(&self, d: Option<Duration>) -> Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(d)?,
            Stream::Tcp(s) => s.set_read_timeout(d)?,
        }
        Ok(())
    }

    /// Tear the connection down in both directions; a peer blocked in
    /// `read` observes EOF/error immediately.
    pub fn shutdown(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Connect to `spec` (client side; the server also uses this as its
/// liveness probe during stale-socket recovery).
pub fn connect(spec: &SocketSpec) -> Result<Stream> {
    Ok(match spec {
        SocketSpec::Unix(p) => Stream::Unix(UnixStream::connect(p)?),
        SocketSpec::Tcp(a) => {
            let s = TcpStream::connect(a.as_str())?;
            s.set_nodelay(true).ok();
            Stream::Tcp(s)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing() {
        assert_eq!(
            SocketSpec::parse("tcp:127.0.0.1:4871"),
            SocketSpec::Tcp("127.0.0.1:4871".into())
        );
        assert_eq!(
            SocketSpec::parse("unix:/tmp/x.sock"),
            SocketSpec::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            SocketSpec::parse("/tmp/y.sock"),
            SocketSpec::Unix(PathBuf::from("/tmp/y.sock"))
        );
        assert_eq!(SocketSpec::parse("tcp:[::1]:9").to_string(), "tcp:[::1]:9");
    }
}
