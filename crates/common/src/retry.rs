//! Retry with capped exponential backoff and deterministic, seeded jitter.
//!
//! The storage daemon must survive transient workload-DB failures without
//! operator intervention (the "always on" promise of §IV): failed appends
//! and flushes are retried on a backoff schedule instead of being dropped.
//! Two properties keep this testable:
//!
//! * **Determinism** — jitter comes from a seeded [`SplitMix64`] stream, so
//!   a fixed [`RetryPolicy`] always produces the identical delay schedule.
//! * **Simulated time** — waits can be charged to the shared [`SimClock`]
//!   ([`RetryPolicy::run_sim`]), so a test that exercises eight retries with
//!   second-scale backoff completes in microseconds of wall time.
//!
//! Only errors classified as transient by [`Error::is_transient`] are
//! retried; deterministic failures surface immediately.

use std::time::Duration;

use crate::clock::SimClock;
use crate::error::Result;
use crate::waits::{charge_ambient, WaitEvent};

/// A tiny deterministic PRNG (SplitMix64). Used for backoff jitter and by
/// the fault-injection layer for corruption bytes; both need reproducible
/// streams without pulling in an external crate.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, bound)`; 0 when `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Capped exponential backoff policy with deterministic seeded jitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `max_attempts = 1` means no
    /// retry at all). Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Hard cap on any single delay, jitter included.
    pub max_delay: Duration,
    /// Seed for the jitter stream; the same seed yields the same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            seed: 0x696E_676F_7472_7972, // "ingotryr"
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// The deterministic delay schedule: one entry per possible retry
    /// (`max_attempts - 1` entries). Entry *k* is `base · 2^k`, capped at
    /// `max_delay`, with half-range jitter: the delay is drawn uniformly
    /// from `[d/2, d]` so schedules neither synchronise across daemons nor
    /// collapse to zero.
    pub fn schedule(&self) -> Vec<Duration> {
        let mut rng = SplitMix64::new(self.seed);
        let cap = self.max_delay.as_nanos() as u64;
        let base = self.base_delay.as_nanos() as u64;
        (0..self.max_attempts.max(1) - 1)
            .map(|k| {
                let exp = base.saturating_mul(1u64.checked_shl(k).unwrap_or(u64::MAX));
                let d = exp.min(cap);
                let half = d / 2;
                let jittered = half + rng.next_below(half + 1);
                Duration::from_nanos(jittered.min(cap))
            })
            .collect()
    }

    /// Run `op` until it succeeds, the error is not transient, or attempts
    /// are exhausted. `wait` is invoked with each backoff delay before the
    /// corresponding retry (callers sleep, advance a simulated clock, count
    /// retries, …). `op` receives the 1-based attempt number.
    pub fn run<T>(
        &self,
        mut wait: impl FnMut(Duration),
        mut op: impl FnMut(u32) -> Result<T>,
    ) -> Result<T> {
        let delays = self.schedule();
        let attempts = self.max_attempts.max(1);
        for attempt in 1..=attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < attempts => {
                    let delay = delays[(attempt - 1) as usize];
                    wait(delay);
                    // Charge the *declared* delay, not a wall measurement:
                    // under run_sim the wait advances a simulated clock and
                    // wall elapsed would read ~0.
                    charge_ambient(WaitEvent::RetryBackoff, delay.as_nanos() as u64);
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on the final attempt")
    }

    /// [`RetryPolicy::run`] with waits charged to the simulated clock, so
    /// retry storms are instant in wall-clock terms but still visible to
    /// retention windows and growth accounting.
    pub fn run_sim<T>(&self, clock: &SimClock, op: impl FnMut(u32) -> Result<T>) -> Result<T> {
        self.run(
            |d| {
                clock.advance_nanos(d.as_nanos() as u64);
            },
            op,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    #[test]
    fn schedule_is_deterministic_and_capped() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 42,
        };
        let a = p.schedule();
        let b = p.schedule();
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
        assert!(a.iter().all(|d| *d <= p.max_delay));
        // Early delays respect the half-range floor.
        assert!(a[0] >= Duration::from_millis(5));
    }

    #[test]
    fn transient_errors_are_retried_until_success() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(8),
            seed: 7,
        };
        let clock = SimClock::new();
        let mut calls = 0;
        let out = p.run_sim(&clock, |_| {
            calls += 1;
            if calls < 3 {
                Err(Error::transient_io("blip"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out.unwrap(), 3);
        assert!(clock.now_nanos() > 0, "waits must advance the sim clock");
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let out: Result<()> = p.run(
            |_| {},
            |_| {
                calls += 1;
                Err(Error::Io("disk gone".into()))
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 1, "non-transient errors must not be retried");
    }

    #[test]
    fn attempts_are_exhausted() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            seed: 1,
        };
        let mut calls = 0;
        let out: Result<()> = p.run(
            |_| {},
            |_| {
                calls += 1;
                Err(Error::transient_io("still down"))
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 3);
    }
}
