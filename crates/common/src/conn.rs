//! The unified client surface: [`Connection`] / [`PreparedStatement`].
//!
//! Ingot runs either embedded (an in-process `Session` on an `Engine`) or
//! client/server (a wire client talking to `ingot-server` over a socket).
//! Both transports implement the same two traits, so shells, examples and
//! bench harnesses are written once against `&dyn Connection` and run
//! unmodified over either. The traits are deliberately dyn-compatible: no
//! generics, no associated types, prepared handles come back boxed and
//! borrow the connection they were prepared on.
//!
//! [`StatementResult`] lives here (not in `ingot-core`) because it is the
//! vocabulary of the surface itself — the wire protocol serialises it
//! losslessly, so a remote caller sees the same costs, wall-clock and wait
//! attribution an embedded caller does.

use crate::cost::Cost;
use crate::error::Result;
use crate::row::Row;
use crate::value::Value;

/// The result of executing one statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatementResult {
    /// Result rows (queries / EXPLAIN).
    pub rows: Vec<Row>,
    /// Output column names.
    pub columns: Vec<String>,
    /// Rows affected (DML).
    pub affected: u64,
    /// The optimizer's estimated cost.
    pub est_cost: Cost,
    /// Actual cost: CPU = tuples processed, IO = physical page accesses.
    pub actual_cost: Cost,
    /// Wall-clock of the whole statement, nanoseconds.
    pub wallclock_ns: u64,
    /// Nanoseconds of `wallclock_ns` lost inside wait events (lock queues,
    /// WAL barriers, buffer I/O, retry backoff). Zero when the wait
    /// subsystem is off.
    pub wait_ns: u64,
}

/// A reusable validated statement bound to the connection that prepared it.
///
/// Embedded, this is a thin wrapper over `ingot_core::Prepared` (template in
/// the shared plan cache); remote, it is a server-side handle — the
/// statement is parsed and cached in the server process and only parameter
/// values cross the wire per execution.
pub trait PreparedStatement {
    /// Number of parameter markers the statement declares.
    fn param_count(&self) -> usize;
    /// Execute with `params` bound positionally (`$1` ↔ `params[0]`). The
    /// value count must match [`param_count`](Self::param_count) exactly.
    fn execute(&self, params: &[Value]) -> Result<StatementResult>;
}

/// One SQL endpoint: the verbs shared by the embedded session and the wire
/// client (`prepare` / `execute` / `query` / `set`, plus explicit
/// transaction control).
pub trait Connection {
    /// Execute one SQL statement (DDL, DML or query).
    fn execute(&self, sql: &str) -> Result<StatementResult>;

    /// Execute a statement expected to return rows. Embedded this is
    /// identical to [`execute`](Self::execute); the wire client sends the
    /// dedicated `query` verb so read-only intent is visible to the server.
    fn query(&self, sql: &str) -> Result<StatementResult> {
        self.execute(sql)
    }

    /// Validate `sql` once and return a reusable handle that executes it
    /// with bound parameter values (`$1`… or `?` markers).
    fn prepare(&self, sql: &str) -> Result<Box<dyn PreparedStatement + '_>>;

    /// `SET name = value` as a first-class verb (runtime knobs: `trace`…).
    fn set(&self, name: &str, value: &Value) -> Result<()>;

    /// Open an explicit transaction (locks held until commit/rollback).
    fn begin(&self) -> Result<()>;

    /// Commit the open transaction. Returns only after the commit is
    /// durable per the engine's WAL configuration — an acknowledged commit
    /// survives a crash, embedded or remote.
    fn commit(&self) -> Result<()>;

    /// Roll back the open transaction.
    fn rollback(&self) -> Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The traits must stay dyn-compatible: the whole point of the redesign
    /// is writing tools against `&dyn Connection`.
    #[test]
    fn traits_are_dyn_compatible() {
        struct Null;
        impl PreparedStatement for Null {
            fn param_count(&self) -> usize {
                0
            }
            fn execute(&self, _params: &[Value]) -> Result<StatementResult> {
                Ok(StatementResult::default())
            }
        }
        impl Connection for Null {
            fn execute(&self, _sql: &str) -> Result<StatementResult> {
                Ok(StatementResult::default())
            }
            fn prepare(&self, _sql: &str) -> Result<Box<dyn PreparedStatement + '_>> {
                Ok(Box::new(Null))
            }
            fn set(&self, _name: &str, _value: &Value) -> Result<()> {
                Ok(())
            }
            fn begin(&self) -> Result<()> {
                Ok(())
            }
            fn commit(&self) -> Result<()> {
                Ok(())
            }
            fn rollback(&self) -> Result<()> {
                Ok(())
            }
        }
        let conn: &dyn Connection = &Null;
        assert!(conn.query("select 1").unwrap().rows.is_empty());
        let stmt = conn.prepare("select 1").unwrap();
        assert_eq!(stmt.param_count(), 0);
    }
}
