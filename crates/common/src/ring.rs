//! Bounded ring buffers.
//!
//! "To limit the overall memory requirements for the monitoring, all data
//! structures were implemented as ring buffers that contain a moving window
//! of data with a configurable size." (§IV-A)

use std::collections::VecDeque;

/// A bounded FIFO that drops its oldest entry when full.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// Entries ever pushed (including dropped ones).
    total: u64,
}

impl<T> RingBuffer<T> {
    /// A ring of the given capacity (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            items: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            total: 0,
        }
    }

    /// Append, evicting the oldest entry when at capacity. Returns the
    /// evicted entry, if any.
    pub fn push(&mut self, item: T) -> Option<T> {
        self.total += 1;
        let evicted = if self.items.len() == self.capacity {
            self.items.pop_front()
        } else {
            None
        };
        self.items.push_back(item);
        evicted
    }

    /// Entries currently held (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries ever pushed, including those that wrapped out.
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_keeping_most_recent() {
        let mut r = RingBuffer::new(3);
        for i in 0..5 {
            r.push(i);
        }
        let held: Vec<i32> = r.iter().copied().collect();
        assert_eq!(held, vec![2, 3, 4]);
        assert_eq!(r.total_pushed(), 5);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn eviction_returns_oldest() {
        let mut r = RingBuffer::new(2);
        assert_eq!(r.push(1), None);
        assert_eq!(r.push(2), None);
        assert_eq!(r.push(3), Some(1));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = RingBuffer::new(0);
        r.push(1);
        r.push(2);
        assert_eq!(r.len(), 1);
        assert_eq!(*r.iter().next().unwrap(), 2);
    }
}
