//! Regenerate the frames section of `crates/common/wire_layout.txt`.
//!
//! Usage after a deliberate frame-layout change (with PROTOCOL_VERSION
//! already bumped): run this, replace everything after the `---` line with
//! the printed section, and append the printed `version N hash H` header
//! line *below* the existing ones (the ledger is append-only history).
//!
//! ```text
//! cargo run -p ingot-common --example gen_wire_layout
//! ```

use ingot_common::hash::fnv1a64;
use ingot_common::wire::{layout_descriptor, PROTOCOL_VERSION};

fn main() {
    let section = layout_descriptor();
    let hash = fnv1a64(section.as_bytes());
    println!("version {PROTOCOL_VERSION} hash {hash:016x}");
    println!("---");
    print!("{section}");
}
