//! Property tests for the retry/backoff schedule (ISSUE 1, satellite 3):
//! for any policy the schedule must be deterministic for a fixed seed,
//! always capped at `max_delay`, and exactly `max_attempts - 1` long.

use std::time::Duration;

use ingot_common::retry::RetryPolicy;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_deterministic_for_fixed_seed(
        max_attempts in 1u32..16,
        base_ms in 1u64..1_000,
        cap_ms in 1u64..5_000,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy {
            max_attempts,
            base_delay: Duration::from_millis(base_ms),
            max_delay: Duration::from_millis(cap_ms),
            seed,
        };
        let a = policy.schedule();
        let b = policy.clone().schedule();
        prop_assert_eq!(&a, &b, "same policy + seed must yield the same schedule");
        prop_assert_eq!(a.len(), (max_attempts - 1) as usize);
    }

    #[test]
    fn schedule_always_capped_and_positive(
        max_attempts in 2u32..16,
        base_ms in 1u64..1_000,
        cap_ms in 1u64..5_000,
        seed in any::<u64>(),
    ) {
        let cap = Duration::from_millis(cap_ms);
        let policy = RetryPolicy {
            max_attempts,
            base_delay: Duration::from_millis(base_ms),
            max_delay: cap,
            seed,
        };
        for (k, d) in policy.schedule().into_iter().enumerate() {
            prop_assert!(d <= cap, "delay #{} ({:?}) exceeds cap {:?}", k, d, cap);
            // Jitter floor: a delay never drops below half the un-jittered value.
            let exp = Duration::from_millis(base_ms)
                .saturating_mul(1u32.checked_shl(k as u32).unwrap_or(u32::MAX))
                .min(cap);
            prop_assert!(d >= exp / 2, "delay #{} ({:?}) below jitter floor", k, d);
        }
    }
}
