#![forbid(unsafe_code)]
//! Offline vendored shim for the `crossbeam` crate.
//!
//! The Ingot build image has no network access and no cargo registry cache, so
//! external crates are vendored as minimal local shims (see DESIGN.md §10.4).
//! Ingot only uses `crossbeam::channel` (bounded MPSC with iterator drain),
//! which maps directly onto `std::sync::mpsc`. The real crate's MPMC
//! receivers and `select!` are not provided — nothing in the workspace needs
//! them.

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug for any `T`, payload elided, so callers may
    // `unwrap()` sends of non-Debug values.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    enum SenderInner<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    /// Sending half of a channel. Cloneable; dropping every clone
    /// disconnects the channel.
    pub struct Sender<T> {
        inner: SenderInner<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                SenderInner::Bounded(tx) => SenderInner::Bounded(tx.clone()),
                SenderInner::Unbounded(tx) => SenderInner::Unbounded(tx.clone()),
            };
            Sender { inner }
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderInner::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                SenderInner::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Iterate over received values, ending when senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: SenderInner::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: SenderInner::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_send_receive_and_drain() {
        let (tx, rx) = channel::bounded::<u32>(8);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        let got: Vec<u32> = rx.into_iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn recv_blocks_until_sender_side_produces() {
        let (tx, rx) = channel::bounded::<u32>(1);
        let t = std::thread::spawn(move || tx.send(9).unwrap());
        assert_eq!(rx.recv(), Ok(9));
        assert!(rx.recv().is_err());
        t.join().unwrap();
    }
}
