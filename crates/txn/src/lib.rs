#![forbid(unsafe_code)]
//! Transactions and locking.
//!
//! The paper's Fig 8 ("Locks Diagram") visualises "the number of used locks
//! together with indicators for lock waits and deadlocks" sampled by the
//! statistics sensor. This crate provides the substrate: a two-mode (S/X)
//! lock manager over table- and row-granular resources with wait-for-graph
//! deadlock detection, exporting exactly the counters the sensor reads.

pub mod lock;

pub use lock::{LockInfo, LockManager, LockMode, LockStats, Resource};

use std::sync::atomic::{AtomicU64, Ordering};

use ingot_common::TxnId;

/// Allocates transaction ids.
#[derive(Debug, Default)]
pub struct TxnManager {
    next: AtomicU64,
    active: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
}

impl TxnManager {
    /// A fresh manager.
    pub fn new() -> Self {
        TxnManager {
            next: AtomicU64::new(1),
            ..Default::default()
        }
    }

    /// Start a transaction.
    pub fn begin(&self) -> TxnId {
        self.active.fetch_add(1, Ordering::Relaxed);
        TxnId(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Record a commit.
    pub fn commit(&self, _txn: TxnId) {
        self.active.fetch_sub(1, Ordering::Relaxed);
        self.committed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an abort (deadlock victim or user rollback).
    pub fn abort(&self, _txn: TxnId) {
        self.active.fetch_sub(1, Ordering::Relaxed);
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Currently active transactions.
    pub fn active_count(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// Transactions committed so far.
    pub fn committed_count(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Transactions aborted so far.
    pub fn aborted_count(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_lifecycle_counts() {
        let m = TxnManager::new();
        let a = m.begin();
        let b = m.begin();
        assert_ne!(a, b);
        assert_eq!(m.active_count(), 2);
        m.commit(a);
        m.abort(b);
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.committed_count(), 1);
        assert_eq!(m.aborted_count(), 1);
    }
}
