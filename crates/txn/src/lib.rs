#![forbid(unsafe_code)]
//! Transactions and locking.
//!
//! The paper's Fig 8 ("Locks Diagram") visualises "the number of used locks
//! together with indicators for lock waits and deadlocks" sampled by the
//! statistics sensor. This crate provides the substrate: a two-mode (S/X)
//! lock manager over table- and row-granular resources with wait-for-graph
//! deadlock detection, exporting exactly the counters the sensor reads.

pub mod lock;

pub use lock::{LockInfo, LockManager, LockMode, LockStats, Resource};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ingot_common::{Error, Result, TxnId};
use parking_lot::{Condvar, Mutex};

/// State behind the quiesce gate: live transaction count plus whether a
/// checkpoint is currently draining them.
#[derive(Debug, Default)]
struct Gate {
    active: u64,
    quiescing: bool,
}

/// Allocates transaction ids and provides the checkpoint *quiesce gate*:
/// [`TxnManager::quiesce`] blocks new transactions and waits for in-flight
/// ones to finish, giving the checkpoint a moment with no concurrent DML so
/// the flushed pages and the WAL truncation point agree.
#[derive(Debug, Default)]
pub struct TxnManager {
    next: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    gate: Mutex<Gate>,
    cv: Condvar,
}

/// Holds the quiesce gate closed. New transactions resume when dropped.
#[derive(Debug)]
pub struct QuiesceGuard<'a> {
    mgr: &'a TxnManager,
}

impl Drop for QuiesceGuard<'_> {
    fn drop(&mut self) {
        let mut g = self.mgr.gate.lock();
        g.quiescing = false;
        drop(g);
        self.mgr.cv.notify_all();
    }
}

impl TxnManager {
    /// A fresh manager.
    pub fn new() -> Self {
        TxnManager {
            next: AtomicU64::new(1),
            ..Default::default()
        }
    }

    /// Start a transaction. Blocks while a [`TxnManager::quiesce`] guard is
    /// held.
    pub fn begin(&self) -> TxnId {
        let mut g = self.gate.lock();
        while g.quiescing {
            self.cv.wait(&mut g);
        }
        g.active += 1;
        drop(g);
        TxnId(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// One transaction left the system: update the gate and wake anyone
    /// draining (a quiescer waiting for zero, or begins parked on the gate).
    fn finish_one(&self) {
        let mut g = self.gate.lock();
        g.active = g.active.saturating_sub(1);
        let wake = g.active == 0 || g.quiescing;
        drop(g);
        if wake {
            self.cv.notify_all();
        }
    }

    /// Record a commit.
    pub fn commit(&self, _txn: TxnId) {
        self.committed.fetch_add(1, Ordering::Relaxed);
        self.finish_one();
    }

    /// Record an abort (deadlock victim or user rollback).
    pub fn abort(&self, _txn: TxnId) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
        self.finish_one();
    }

    /// Close the gate: block new [`TxnManager::begin`]s and wait up to
    /// `timeout` for active transactions to drain. On success the returned
    /// guard keeps the gate closed until dropped; on timeout the gate
    /// reopens and an error is returned (the checkpoint should retry later
    /// rather than stall writers forever).
    ///
    /// Spurious or early condvar wakeups re-wait with the same slice, so the
    /// total wait can exceed `timeout` slightly; it remains bounded because
    /// every wakeup source in this module reflects a real state change.
    pub fn quiesce(&self, timeout: Duration) -> Result<QuiesceGuard<'_>> {
        let mut g = self.gate.lock();
        while g.quiescing {
            // Another quiescer is draining; take over once it reopens.
            if self.cv.wait_for(&mut g, timeout).timed_out() && g.quiescing {
                return Err(Error::execution(
                    "quiesce: another checkpoint is in progress",
                ));
            }
        }
        g.quiescing = true;
        while g.active > 0 {
            if self.cv.wait_for(&mut g, timeout).timed_out() && g.active > 0 {
                g.quiescing = false;
                drop(g);
                self.cv.notify_all();
                return Err(Error::execution(format!(
                    "quiesce: transactions still active after {timeout:?}"
                )));
            }
        }
        Ok(QuiesceGuard { mgr: self })
    }

    /// Currently active transactions.
    pub fn active_count(&self) -> u64 {
        self.gate.lock().active
    }

    /// Transactions committed so far.
    pub fn committed_count(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Transactions aborted so far.
    pub fn aborted_count(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn quiesce_drains_and_blocks_begins() {
        let m = Arc::new(TxnManager::new());
        let t = m.begin();
        // Can't drain while `t` is active.
        assert!(m.quiesce(Duration::from_millis(20)).is_err());
        m.commit(t);
        let guard = m.quiesce(Duration::from_secs(1)).unwrap();
        // A begin on another thread parks until the guard drops.
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            let t = m2.begin();
            m2.commit(t);
        });
        drop(guard);
        h.join().unwrap();
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.committed_count(), 2);
    }

    #[test]
    fn quiesce_reopens_gate_on_timeout() {
        let m = TxnManager::new();
        let t = m.begin();
        assert!(m.quiesce(Duration::from_millis(10)).is_err());
        // The failed quiesce must not leave the gate closed.
        let t2 = m.begin();
        m.commit(t);
        m.abort(t2);
        assert_eq!(m.active_count(), 0);
    }

    #[test]
    fn txn_lifecycle_counts() {
        let m = TxnManager::new();
        let a = m.begin();
        let b = m.begin();
        assert_ne!(a, b);
        assert_eq!(m.active_count(), 2);
        m.commit(a);
        m.abort(b);
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.committed_count(), 1);
        assert_eq!(m.aborted_count(), 1);
    }
}
