#![forbid(unsafe_code)]
//! Transactions and locking.
//!
//! The paper's Fig 8 ("Locks Diagram") visualises "the number of used locks
//! together with indicators for lock waits and deadlocks" sampled by the
//! statistics sensor. This crate provides the substrate: a two-mode (S/X)
//! lock manager over table- and row-granular resources with wait-for-graph
//! deadlock detection, exporting exactly the counters the sensor reads.

pub mod lock;

pub use lock::{LockInfo, LockManager, LockMode, LockStats, Resource};

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use std::sync::Arc;

use ingot_common::waits::{WaitEvent, WaitGuard, WaitRegistry, WaitRegistryHandle};
use ingot_common::{Error, Result, Snapshot, TxnId};
use parking_lot::{Condvar, Mutex};

/// Why a transaction aborted — the taxonomy behind `ima$transactions` and
/// the `ingot_txn_aborts_total{cause=…}` metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// Explicit `ROLLBACK` (or session drop with an open transaction).
    User,
    /// Chosen as a deadlock victim by the lock manager.
    Deadlock,
    /// A lock wait exceeded the configured timeout.
    LockTimeout,
    /// MVCC first-committer-wins: the version this transaction based a
    /// write on was superseded by a commit after its snapshot.
    WriteConflict,
    /// Anything else (statement error mid-transaction, WAL append failure…).
    Other,
}

/// Number of abort causes (sizes the per-cause counter array).
pub const ABORT_CAUSE_COUNT: usize = 5;

impl AbortCause {
    /// Every cause, in stable `index()` order.
    pub const ALL: [AbortCause; ABORT_CAUSE_COUNT] = [
        AbortCause::User,
        AbortCause::Deadlock,
        AbortCause::LockTimeout,
        AbortCause::WriteConflict,
        AbortCause::Other,
    ];

    /// Stable dense index (counter-array slot).
    pub fn index(self) -> usize {
        match self {
            AbortCause::User => 0,
            AbortCause::Deadlock => 1,
            AbortCause::LockTimeout => 2,
            AbortCause::WriteConflict => 3,
            AbortCause::Other => 4,
        }
    }

    /// Canonical label (IMA rows, metric labels).
    pub fn name(self) -> &'static str {
        match self {
            AbortCause::User => "user",
            AbortCause::Deadlock => "deadlock",
            AbortCause::LockTimeout => "lock_timeout",
            AbortCause::WriteConflict => "write_conflict",
            AbortCause::Other => "other",
        }
    }

    /// Classify an abort by the error that caused it.
    pub fn from_error(e: &Error) -> AbortCause {
        match e {
            Error::Deadlock { .. } => AbortCause::Deadlock,
            Error::LockTimeout(_) => AbortCause::LockTimeout,
            Error::WriteConflict(_) => AbortCause::WriteConflict,
            _ => AbortCause::Other,
        }
    }
}

/// State behind the quiesce gate: live transaction count plus whether a
/// checkpoint is currently draining them.
#[derive(Debug, Default)]
struct Gate {
    active: u64,
    quiescing: bool,
}

/// Allocates transaction ids and provides the checkpoint *quiesce gate*:
/// [`TxnManager::quiesce`] blocks new transactions and waits for in-flight
/// ones to finish, giving the checkpoint a moment with no concurrent DML so
/// the flushed pages and the WAL truncation point agree.
///
/// Since PR 8 it is also the MVCC timestamp authority: it allocates commit
/// timestamps (a single monotone `commit_seq`), hands out read
/// [`Snapshot`]s, tracks which snapshots are still active (the GC
/// watermark), validates first-committer-wins at commit, and counts aborts
/// by [`AbortCause`].
#[derive(Debug, Default)]
pub struct TxnManager {
    next: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    gate: Mutex<Gate>,
    cv: Condvar,
    /// Highest *published* commit timestamp. Readers snapshot this; a
    /// committing transaction bumps it only after stamping its versions.
    commit_seq: AtomicU64,
    /// Highest *reserved* commit timestamp ([`TxnManager::start_commit`]).
    /// Runs ahead of `commit_seq` while commits are stamping or waiting on
    /// their durability barrier.
    next_commit: AtomicU64,
    /// Pairs with `publish_cv` to publish reserved timestamps in order.
    publish_gate: Mutex<()>,
    publish_cv: Condvar,
    /// Active read snapshots: raw txn id → snapshot ts. The minimum value
    /// is the version-chain GC watermark.
    snapshots: Mutex<HashMap<u64, u64>>,
    abort_causes: [AtomicU64; ABORT_CAUSE_COUNT],
    /// First-committer-wins validation failures (a subset of the
    /// `write_conflict` aborts: conflicts can also surface at write time).
    validation_failures: AtomicU64,
    gc_runs: AtomicU64,
    gc_versions_removed: AtomicU64,
    gc_last_watermark: AtomicU64,
    /// Version-chain shape as of the last GC sweep (the sweep walks every
    /// version anyway, so it refreshes these for `ima$transactions`).
    chain_versions: AtomicU64,
    chain_count: AtomicU64,
    chain_longest: AtomicU64,
    /// Abort-path undo applications that failed (storage-level
    /// inconsistency: the WAL stays the recovery authority, but each one is
    /// surfaced through `ima$transactions` instead of vanishing).
    undo_failures: AtomicU64,
    /// Wait-event registry for the gate/publish parks (unset ⇒ no-op
    /// guards, e.g. unit tests without an engine).
    waits: WaitRegistryHandle,
}

/// Holds the quiesce gate closed. New transactions resume when dropped.
#[derive(Debug)]
pub struct QuiesceGuard<'a> {
    mgr: &'a TxnManager,
}

impl Drop for QuiesceGuard<'_> {
    fn drop(&mut self) {
        let mut g = self.mgr.gate.lock();
        g.quiescing = false;
        drop(g);
        self.mgr.cv.notify_all();
    }
}

impl TxnManager {
    /// A fresh manager.
    pub fn new() -> Self {
        TxnManager {
            next: AtomicU64::new(1),
            ..Default::default()
        }
    }

    /// Start a transaction. Blocks while a [`TxnManager::quiesce`] guard is
    /// held.
    pub fn begin(&self) -> TxnId {
        let mut g = self.gate.lock();
        while g.quiescing {
            let _gate = WaitGuard::begin(self.waits.get(), WaitEvent::TxnQuiesce);
            self.cv.wait(&mut g);
        }
        g.active += 1;
        drop(g);
        TxnId(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// One transaction left the system: update the gate and wake anyone
    /// draining (a quiescer waiting for zero, or begins parked on the gate).
    fn finish_one(&self) {
        let mut g = self.gate.lock();
        g.active = g.active.saturating_sub(1);
        let wake = g.active == 0 || g.quiescing;
        drop(g);
        if wake {
            self.cv.notify_all();
        }
    }

    /// Record a commit.
    pub fn commit(&self, txn: TxnId) {
        self.release_snapshot(txn);
        self.committed.fetch_add(1, Ordering::Relaxed);
        self.finish_one();
    }

    /// Record a read-only commit. Identical bookkeeping to [`Self::commit`],
    /// under a distinct name because the caller owes no durability barrier:
    /// an empty write set has nothing to make durable. `ingot-verify` polices
    /// the two separately (check 6).
    pub fn commit_read_only(&self, txn: TxnId) {
        self.commit(txn);
    }

    /// Record an abort with its cause.
    pub fn abort_with(&self, txn: TxnId, cause: AbortCause) {
        self.release_snapshot(txn);
        if let Some(ctr) = self.abort_causes.get(cause.index()) {
            ctr.fetch_add(1, Ordering::Relaxed);
        }
        self.aborted.fetch_add(1, Ordering::Relaxed);
        self.finish_one();
    }

    /// Record an abort (deadlock victim or user rollback).
    pub fn abort(&self, txn: TxnId) {
        self.abort_with(txn, AbortCause::User);
    }

    /// Close the gate: block new [`TxnManager::begin`]s and wait up to
    /// `timeout` for active transactions to drain. On success the returned
    /// guard keeps the gate closed until dropped; on timeout the gate
    /// reopens and an error is returned (the checkpoint should retry later
    /// rather than stall writers forever).
    ///
    /// Spurious or early condvar wakeups re-wait with the same slice, so the
    /// total wait can exceed `timeout` slightly; it remains bounded because
    /// every wakeup source in this module reflects a real state change.
    pub fn quiesce(&self, timeout: Duration) -> Result<QuiesceGuard<'_>> {
        let mut g = self.gate.lock();
        while g.quiescing {
            // Another quiescer is draining; take over once it reopens.
            let _gate = WaitGuard::begin(self.waits.get(), WaitEvent::TxnQuiesce);
            if self.cv.wait_for(&mut g, timeout).timed_out() && g.quiescing {
                return Err(Error::execution(
                    "quiesce: another checkpoint is in progress",
                ));
            }
        }
        g.quiescing = true;
        while g.active > 0 {
            let _drain = WaitGuard::begin(self.waits.get(), WaitEvent::TxnQuiesce);
            if self.cv.wait_for(&mut g, timeout).timed_out() && g.active > 0 {
                g.quiescing = false;
                drop(g);
                self.cv.notify_all();
                return Err(Error::execution(format!(
                    "quiesce: transactions still active after {timeout:?}"
                )));
            }
        }
        Ok(QuiesceGuard { mgr: self })
    }

    // ----- MVCC timestamp authority -------------------------------------

    /// Highest published commit timestamp: the `ts` a fresh snapshot gets.
    pub fn read_ts(&self) -> u64 {
        self.commit_seq.load(Ordering::Acquire)
    }

    /// Restore the commit sequence after WAL replay (recovery stamps
    /// versions with their logged commit timestamps; new commits must start
    /// above all of them).
    pub fn restore_commit_seq(&self, ts: u64) {
        self.commit_seq.fetch_max(ts, Ordering::Release);
        self.next_commit.fetch_max(ts, Ordering::Release);
    }

    /// Acquire a read snapshot for `txn` and register it as active; it is
    /// released by [`TxnManager::commit`] / [`TxnManager::abort_with`] (or
    /// explicitly by [`TxnManager::release_snapshot`]). Registered snapshots
    /// hold the GC watermark back.
    pub fn snapshot(&self, txn: TxnId) -> Snapshot {
        let ts = self.read_ts();
        self.snapshots.lock().insert(txn.raw(), ts);
        Snapshot { ts, txn }
    }

    /// Drop `txn`'s registered snapshot, if any.
    pub fn release_snapshot(&self, txn: TxnId) {
        self.snapshots.lock().remove(&txn.raw());
    }

    /// Active snapshots as `(txn id, snapshot ts)` pairs, unordered.
    pub fn active_snapshots(&self) -> Vec<(u64, u64)> {
        self.snapshots
            .lock()
            .iter()
            .map(|(&t, &s)| (t, s))
            .collect()
    }

    /// The version-chain GC watermark: the oldest active snapshot ts, or
    /// the current commit sequence when no snapshot is registered. Versions
    /// whose committed `end` is at or below the watermark are invisible to
    /// every present and future snapshot.
    pub fn gc_watermark(&self) -> u64 {
        let oldest = self.snapshots.lock().values().copied().min();
        oldest.unwrap_or_else(|| self.read_ts())
    }

    /// First-committer-wins validation, called by the engine commit path
    /// *before* the commit record is logged. `conflict` names the losing
    /// row when the write set was superseded; `None` means the write set is
    /// intact (every superseded version still carries this transaction's
    /// uncommitted marker).
    pub fn validate_write_set(&self, txn: TxnId, conflict: Option<String>) -> Result<()> {
        match conflict {
            None => Ok(()),
            Some(what) => {
                self.validation_failures.fetch_add(1, Ordering::Relaxed);
                Err(Error::write_conflict(format!(
                    "transaction {txn} lost first-committer-wins validation on {what}"
                )))
            }
        }
    }

    /// Reserve the next commit timestamp. The caller logs the commit record,
    /// waits out its durability barrier and stamps its write-set versions —
    /// all *concurrently* with other committers (reservation holds no lock,
    /// so group commit still batches barriers) — then calls
    /// [`CommitTicket::publish`]. Publishes complete in reservation order:
    /// a reader that can see timestamp `t` can also see every stamp of every
    /// commit at or below `t`. Dropping the ticket without publishing
    /// abandons the timestamp — the sequence still advances past it (later
    /// reservations must not wait forever), but nothing was stamped with an
    /// abandoned timestamp, so it commits "nothing".
    pub fn start_commit(&self) -> CommitTicket<'_> {
        let ts = self.next_commit.fetch_add(1, Ordering::Relaxed) + 1;
        CommitTicket {
            mgr: self,
            ts,
            done: false,
        }
    }

    /// Record one GC sweep for the observability counters.
    pub fn note_gc(&self, versions_removed: u64, watermark: u64) {
        self.gc_runs.fetch_add(1, Ordering::Relaxed);
        self.gc_versions_removed
            .fetch_add(versions_removed, Ordering::Relaxed);
        self.gc_last_watermark.store(watermark, Ordering::Relaxed);
    }

    /// Record the version-chain shape observed by the last GC sweep:
    /// `(versions, chains, longest)` summed/maxed across all tables.
    pub fn note_chain_shape(&self, versions: u64, chains: u64, longest: u64) {
        self.chain_versions.store(versions, Ordering::Relaxed);
        self.chain_count.store(chains, Ordering::Relaxed);
        self.chain_longest.store(longest, Ordering::Relaxed);
    }

    /// The chain shape recorded by [`TxnManager::note_chain_shape`]:
    /// `(versions, chains, longest)`.
    pub fn chain_shape(&self) -> (u64, u64, u64) {
        (
            self.chain_versions.load(Ordering::Relaxed),
            self.chain_count.load(Ordering::Relaxed),
            self.chain_longest.load(Ordering::Relaxed),
        )
    }

    /// GC sweeps performed.
    pub fn gc_runs(&self) -> u64 {
        self.gc_runs.load(Ordering::Relaxed)
    }

    /// Versions physically reclaimed by GC.
    pub fn gc_versions_removed(&self) -> u64 {
        self.gc_versions_removed.load(Ordering::Relaxed)
    }

    /// Watermark of the most recent GC sweep.
    pub fn gc_last_watermark(&self) -> u64 {
        self.gc_last_watermark.load(Ordering::Relaxed)
    }

    /// Aborts recorded for `cause`.
    pub fn aborts_by_cause(&self, cause: AbortCause) -> u64 {
        self.abort_causes
            .get(cause.index())
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// First-committer-wins validation failures.
    pub fn validation_failures(&self) -> u64 {
        self.validation_failures.load(Ordering::Relaxed)
    }

    /// Record one failed abort-path undo application.
    pub fn note_undo_failure(&self) {
        self.undo_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Abort-path undo applications that failed so far.
    pub fn undo_failures(&self) -> u64 {
        self.undo_failures.load(Ordering::Relaxed)
    }

    /// Install the wait-event registry; gate and publish parks then charge
    /// [`WaitEvent::TxnQuiesce`] / [`WaitEvent::CommitPublish`].
    pub fn set_wait_registry(&self, registry: Arc<WaitRegistry>) {
        self.waits.set(registry);
    }

    /// Currently active transactions.
    pub fn active_count(&self) -> u64 {
        self.gate.lock().active
    }

    /// Transactions committed so far.
    pub fn committed_count(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Transactions aborted so far.
    pub fn aborted_count(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }
}

/// A reserved commit timestamp. The engine stamps its write-set versions
/// with [`CommitTicket::ts`], then calls [`CommitTicket::publish`]; only the
/// publish makes the timestamp visible to new snapshots, so a reader that
/// can see the timestamp can also see every stamp written before it
/// (release/acquire pairing on `commit_seq`). Dropping without publishing
/// abandons the timestamp (still advances the sequence — see
/// [`TxnManager::start_commit`]).
pub struct CommitTicket<'a> {
    mgr: &'a TxnManager,
    ts: u64,
    done: bool,
}

impl CommitTicket<'_> {
    /// The commit timestamp to stamp versions with.
    pub fn ts(&self) -> u64 {
        self.ts
    }

    /// Publish the timestamp: new snapshots now read at-or-above it. Blocks
    /// until every earlier reservation has published or been abandoned, so
    /// `commit_seq` never exposes a timestamp whose predecessors are still
    /// stamping.
    pub fn publish(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let mut gate = self.mgr.publish_gate.lock();
        while self.mgr.commit_seq.load(Ordering::Relaxed) != self.ts - 1 {
            let _turn = WaitGuard::begin(self.mgr.waits.get(), WaitEvent::CommitPublish);
            self.mgr.publish_cv.wait(&mut gate);
        }
        self.mgr.commit_seq.store(self.ts, Ordering::Release);
        drop(gate);
        self.mgr.publish_cv.notify_all();
    }
}

impl Drop for CommitTicket<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn quiesce_drains_and_blocks_begins() {
        let m = Arc::new(TxnManager::new());
        let t = m.begin();
        // Can't drain while `t` is active.
        assert!(m.quiesce(Duration::from_millis(20)).is_err());
        m.commit(t);
        let guard = m.quiesce(Duration::from_secs(1)).unwrap();
        // A begin on another thread parks until the guard drops.
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            let t = m2.begin();
            m2.commit(t);
        });
        drop(guard);
        h.join().unwrap();
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.committed_count(), 2);
    }

    #[test]
    fn quiesce_reopens_gate_on_timeout() {
        let m = TxnManager::new();
        let t = m.begin();
        assert!(m.quiesce(Duration::from_millis(10)).is_err());
        // The failed quiesce must not leave the gate closed.
        let t2 = m.begin();
        m.commit(t);
        m.abort(t2);
        assert_eq!(m.active_count(), 0);
    }

    #[test]
    fn commit_timestamps_publish_in_order() {
        let m = TxnManager::new();
        assert_eq!(m.read_ts(), 0);
        let t1 = m.start_commit();
        assert_eq!(t1.ts(), 1);
        t1.publish();
        assert_eq!(m.read_ts(), 1);
        // An abandoned ticket advances the sequence without committing
        // anything (nothing is ever stamped with its timestamp).
        drop(m.start_commit());
        assert_eq!(m.read_ts(), 2);
        let t2 = m.start_commit();
        assert_eq!(t2.ts(), 3);
        t2.publish();
        assert_eq!(m.read_ts(), 3);
        m.restore_commit_seq(40);
        assert_eq!(m.read_ts(), 40);
        m.restore_commit_seq(7);
        assert_eq!(m.read_ts(), 40, "restore never goes backwards");
    }

    #[test]
    fn snapshots_pin_the_gc_watermark() {
        let m = TxnManager::new();
        m.restore_commit_seq(10);
        assert_eq!(m.gc_watermark(), 10, "no snapshots: watermark = seq");
        let a = m.begin();
        let snap = m.snapshot(a);
        assert_eq!(snap.ts, 10);
        m.start_commit().publish(); // seq -> 11
        assert_eq!(m.gc_watermark(), 10, "active snapshot holds it back");
        assert_eq!(m.active_snapshots(), vec![(a.raw(), 10)]);
        m.commit(a);
        assert_eq!(m.gc_watermark(), 11, "commit releases the snapshot");
        assert!(m.active_snapshots().is_empty());
    }

    #[test]
    fn aborts_are_counted_by_cause() {
        let m = TxnManager::new();
        let a = m.begin();
        let b = m.begin();
        let c = m.begin();
        m.abort(a);
        m.abort_with(b, AbortCause::WriteConflict);
        m.abort_with(c, AbortCause::Deadlock);
        assert_eq!(m.aborted_count(), 3);
        assert_eq!(m.aborts_by_cause(AbortCause::User), 1);
        assert_eq!(m.aborts_by_cause(AbortCause::WriteConflict), 1);
        assert_eq!(m.aborts_by_cause(AbortCause::Deadlock), 1);
        assert_eq!(m.aborts_by_cause(AbortCause::LockTimeout), 0);
    }

    #[test]
    fn validation_counts_and_classifies() {
        let m = TxnManager::new();
        let t = m.begin();
        assert!(m.validate_write_set(t, None).is_ok());
        let err = m
            .validate_write_set(t, Some("row 3 of table 1".into()))
            .unwrap_err();
        assert!(matches!(err, Error::WriteConflict(_)));
        assert!(err.is_transient());
        assert_eq!(m.validation_failures(), 1);
        assert_eq!(AbortCause::from_error(&err), AbortCause::WriteConflict);
        m.abort_with(t, AbortCause::from_error(&err));
        assert_eq!(m.aborts_by_cause(AbortCause::WriteConflict), 1);
    }

    #[test]
    fn gc_counters_accumulate() {
        let m = TxnManager::new();
        m.note_gc(5, 3);
        m.note_gc(2, 9);
        assert_eq!(m.gc_runs(), 2);
        assert_eq!(m.gc_versions_removed(), 7);
        assert_eq!(m.gc_last_watermark(), 9);
    }

    #[test]
    fn txn_lifecycle_counts() {
        let m = TxnManager::new();
        let a = m.begin();
        let b = m.begin();
        assert_ne!(a, b);
        assert_eq!(m.active_count(), 2);
        m.commit(a);
        m.abort(b);
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.committed_count(), 1);
        assert_eq!(m.aborted_count(), 1);
    }

    #[test]
    fn undo_failures_are_counted() {
        let m = TxnManager::new();
        assert_eq!(m.undo_failures(), 0);
        m.note_undo_failure();
        m.note_undo_failure();
        assert_eq!(m.undo_failures(), 2);
    }

    #[test]
    fn timed_out_quiesce_charges_txn_quiesce() {
        let m = TxnManager::new();
        let registry = Arc::new(WaitRegistry::new(8));
        m.set_wait_registry(Arc::clone(&registry));
        let active = m.begin();
        // The drain parks on the gate for the (tiny) timeout, charging
        // TxnQuiesce, then gives up because `active` never retires.
        let err = m.quiesce(Duration::from_millis(1)).expect_err("times out");
        assert!(err.to_string().contains("still active"));
        assert!(registry.counters().count(WaitEvent::TxnQuiesce) >= 1);
        m.commit(active);
        // Gate reopened: a fresh quiesce with nothing active is immediate.
        drop(m.quiesce(Duration::from_millis(1)).expect("empty system"));
    }

    #[test]
    fn out_of_order_publish_charges_commit_publish() {
        let m = TxnManager::new();
        let registry = Arc::new(WaitRegistry::new(8));
        m.set_wait_registry(Arc::clone(&registry));
        let first = m.start_commit();
        let second = m.start_commit();
        let parked = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                parked.store(true, Ordering::SeqCst);
                // Blocks (charging CommitPublish) until `first` publishes.
                second.publish();
            });
            while !parked.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            // Give the publisher time to reach the publish queue before
            // unblocking it, so the out-of-order park actually happens
            // (test scheduling slack, not synchronisation — ordering stays
            // correct either way, the charge assertion just needs the park).
            #[allow(clippy::disallowed_methods)]
            std::thread::sleep(Duration::from_millis(50));
            first.publish();
        });
        assert_eq!(m.read_ts(), 2);
        assert!(registry.counters().count(WaitEvent::CommitPublish) >= 1);
    }
}
