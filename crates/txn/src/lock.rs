//! The lock manager.
//!
//! Two modes (shared / exclusive), two granularities (table / row), FIFO-ish
//! granting, wait-for-graph deadlock detection with the *requester* chosen as
//! victim, and a wait timeout as a backstop. All counters feed the monitor's
//! statistics sensor (Fig 8: locks in use, lock waits, deadlocks).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ingot_common::waits::{WaitEvent, WaitGuard, WaitRegistry, WaitRegistryHandle};
use ingot_common::{Error, Result, TableId, TxnId};
use std::sync::Arc;
// Under `--cfg loom` the primitives come from the model-checking shim, which
// injects schedule perturbation at every acquire/notify edge (see the
// loom-shim crate and the `loom_lock_manager` integration test).
#[cfg(loom)]
use loom::sync::{Condvar, Mutex};
#[cfg(not(loom))]
use parking_lot::{Condvar, Mutex};

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (readers).
    Shared,
    /// Exclusive (writers).
    Exclusive,
}

impl LockMode {
    fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

/// A lockable resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// A whole table.
    Table(TableId),
    /// One row, identified by its packed [`RowId`](ingot_common::PageId).
    Row(TableId, u64),
}

/// One granted or waiting lock request, as exposed through `ima$locks`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockInfo {
    /// The owning (or waiting) transaction.
    pub txn: TxnId,
    /// The locked resource.
    pub resource: Resource,
    /// Requested mode.
    pub mode: LockMode,
    /// `true` when granted, `false` when still queued.
    pub granted: bool,
}

/// Counters exported to the statistics sensor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Locks currently granted.
    pub held: u64,
    /// Transactions currently blocked waiting for a lock.
    pub waiting: u64,
    /// Total lock requests that had to wait.
    pub waits_total: u64,
    /// Total deadlocks detected.
    pub deadlocks_total: u64,
    /// Total locks granted over the manager's lifetime.
    pub granted_total: u64,
}

#[derive(Debug)]
struct LockState {
    granted: Vec<(TxnId, LockMode)>,
    /// Waiting requests in arrival order.
    queue: VecDeque<(TxnId, LockMode)>,
}

#[derive(Default)]
struct Inner {
    locks: HashMap<Resource, LockState>,
    /// Resources held per transaction (for release-all).
    by_txn: HashMap<TxnId, Vec<Resource>>,
    /// waiter → resource it is blocked on.
    waiting_on: HashMap<TxnId, Resource>,
}

/// The lock manager.
pub struct LockManager {
    inner: Mutex<Inner>,
    cond: Condvar,
    timeout: Duration,
    waits_total: AtomicU64,
    deadlocks_total: AtomicU64,
    granted_total: AtomicU64,
    /// Wait-event sink, injected by the engine after construction. Unset
    /// (unit tests, loom models) every block below charges nothing.
    waits: WaitRegistryHandle,
}

impl LockManager {
    /// A manager with the given wait timeout.
    pub fn new(timeout: Duration) -> Self {
        LockManager {
            inner: Mutex::new(Inner::default()),
            cond: Condvar::new(),
            timeout,
            waits_total: AtomicU64::new(0),
            deadlocks_total: AtomicU64::new(0),
            granted_total: AtomicU64::new(0),
            waits: WaitRegistryHandle::new(),
        }
    }

    /// Route blocked-time accounting to `registry` (`LockWaitS` /
    /// `LockWaitX` wait events). Called once by the engine during wiring.
    pub fn set_wait_registry(&self, registry: Arc<WaitRegistry>) {
        self.waits.set(registry);
    }

    /// Acquire `mode` on `res` for `txn`, blocking until granted.
    ///
    /// Errors with [`Error::Deadlock`] when granting would close a cycle in
    /// the wait-for graph (the requester is the victim and must release its
    /// locks and retry), or [`Error::LockTimeout`] after the configured
    /// timeout.
    pub fn lock(&self, txn: TxnId, res: Resource, mode: LockMode) -> Result<()> {
        // Begun lazily at the first enqueue below; dropping it (on grant,
        // deadlock, or timeout) charges the blocked nanoseconds as
        // `LockWaitS` / `LockWaitX` to the registry and the ambient session.
        let mut wait_guard: Option<WaitGuard> = None;
        let mut inner = self.inner.lock();

        // Re-entrancy / upgrade handling.
        if let Some(state) = inner.locks.get_mut(&res) {
            let held = state
                .granted
                .iter()
                .find(|(t, _)| *t == txn)
                .map(|&(_, m)| m);
            if let Some(held) = held {
                if held == LockMode::Exclusive || mode == LockMode::Shared {
                    return Ok(()); // already sufficient
                }
                // Upgrade S → X: immediate when sole holder.
                if state.granted.len() == 1 {
                    if let Some(entry) = state.granted.first_mut() {
                        entry.1 = LockMode::Exclusive;
                    }
                    return Ok(());
                }
                // Otherwise fall through to waiting (the S lock stays held;
                // upgrade completes when other holders leave).
            }
        }

        loop {
            let grantable = {
                let state = inner.locks.entry(res).or_insert_with(|| LockState {
                    granted: Vec::new(),
                    queue: VecDeque::new(),
                });
                let others_compatible = state
                    .granted
                    .iter()
                    .filter(|(t, _)| *t != txn)
                    .all(|(_, m)| m.compatible(mode));
                // FIFO fairness: a request is grantable only when no other
                // waiter is ahead of it in the queue.
                let no_earlier_waiter = match state.queue.iter().position(|(t, _)| *t == txn) {
                    Some(pos) => pos == 0,
                    None => state.queue.is_empty(),
                };
                others_compatible && no_earlier_waiter
            };
            if grantable {
                let state = inner.locks.entry(res).or_insert_with(|| LockState {
                    granted: Vec::new(),
                    queue: VecDeque::new(),
                });
                state.queue.retain(|(t, _)| *t != txn);
                if let Some(entry) = state.granted.iter_mut().find(|(t, _)| *t == txn) {
                    entry.1 = LockMode::Exclusive; // completed upgrade
                } else {
                    state.granted.push((txn, mode));
                    inner.by_txn.entry(txn).or_default().push(res);
                }
                inner.waiting_on.remove(&txn);
                self.granted_total.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }

            // Must wait: enqueue (once) and check for deadlock.
            if let Some(state) = inner.locks.get_mut(&res) {
                if !state.queue.iter().any(|(t, _)| *t == txn) {
                    state.queue.push_back((txn, mode));
                    self.waits_total.fetch_add(1, Ordering::Relaxed);
                }
            }
            if wait_guard.is_none() {
                let event = match mode {
                    LockMode::Shared => WaitEvent::LockWaitS,
                    LockMode::Exclusive => WaitEvent::LockWaitX,
                };
                wait_guard = Some(WaitGuard::begin(self.waits.get(), event));
            }
            inner.waiting_on.insert(txn, res);
            if self.closes_cycle(&inner, txn) {
                // The requester is the victim: remove it from the queue and
                // report the deadlock.
                if let Some(state) = inner.locks.get_mut(&res) {
                    state.queue.retain(|(t, _)| *t != txn);
                }
                inner.waiting_on.remove(&txn);
                self.deadlocks_total.fetch_add(1, Ordering::Relaxed);
                self.cond.notify_all();
                return Err(Error::Deadlock { victim: txn.raw() });
            }

            let timed_out = self.cond.wait_for(&mut inner, self.timeout).timed_out();
            if timed_out {
                if let Some(state) = inner.locks.get_mut(&res) {
                    state.queue.retain(|(t, _)| *t != txn);
                }
                inner.waiting_on.remove(&txn);
                // Our departure can make a waiter queued behind us grantable
                // (FIFO fairness keys on queue position): wake everyone to
                // re-check, exactly as the deadlock-victim path does.
                self.cond.notify_all();
                return Err(Error::LockTimeout(format!(
                    "txn {txn} gave up on {res:?} after {:?}",
                    self.timeout
                )));
            }
        }
    }

    /// Does `txn`'s wait close a cycle in the wait-for graph?
    fn closes_cycle(&self, inner: &Inner, txn: TxnId) -> bool {
        // Edges: waiter → every holder of the resource it waits on (and
        // earlier waiters, which also precede it).
        let mut visited: HashSet<TxnId> = HashSet::new();
        let mut stack: Vec<TxnId> = vec![txn];
        let mut first = true;
        while let Some(cur) = stack.pop() {
            if !first && cur == txn {
                return true;
            }
            first = false;
            if !visited.insert(cur) {
                continue;
            }
            if let Some(res) = inner.waiting_on.get(&cur) {
                if let Some(state) = inner.locks.get(res) {
                    for (holder, _) in &state.granted {
                        if *holder != cur {
                            stack.push(*holder);
                        }
                    }
                    // FIFO: only waiters *ahead* of `cur` in the queue block it.
                    for (waiter, _) in &state.queue {
                        if *waiter == cur {
                            break;
                        }
                        stack.push(*waiter);
                    }
                }
            }
        }
        false
    }

    /// Release every lock held by `txn` (commit/abort) and wake waiters.
    pub fn release_all(&self, txn: TxnId) {
        let mut inner = self.inner.lock();
        if let Some(resources) = inner.by_txn.remove(&txn) {
            for res in resources {
                if let Some(state) = inner.locks.get_mut(&res) {
                    state.granted.retain(|(t, _)| *t != txn);
                    if state.granted.is_empty() && state.queue.is_empty() {
                        inner.locks.remove(&res);
                    }
                }
            }
        }
        inner.waiting_on.remove(&txn);
        self.cond.notify_all();
    }

    /// Point-in-time dump of every granted and queued lock request, ordered
    /// by resource then grant state (granted first). Feeds `ima$locks`.
    pub fn snapshot_locks(&self) -> Vec<LockInfo> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for (res, state) in &inner.locks {
            for (txn, mode) in &state.granted {
                out.push(LockInfo {
                    txn: *txn,
                    resource: *res,
                    mode: *mode,
                    granted: true,
                });
            }
            for (txn, mode) in &state.queue {
                out.push(LockInfo {
                    txn: *txn,
                    resource: *res,
                    mode: *mode,
                    granted: false,
                });
            }
        }
        out.sort_by_key(|i| {
            let (t, r) = match i.resource {
                Resource::Table(t) => (t.0, u64::MAX),
                Resource::Row(t, r) => (t.0, r),
            };
            (t, r, !i.granted, i.txn.raw())
        });
        out
    }

    /// Current counters for the statistics sensor.
    pub fn stats(&self) -> LockStats {
        let inner = self.inner.lock();
        let held = inner
            .locks
            .values()
            .map(|s| s.granted.len() as u64)
            .sum::<u64>();
        LockStats {
            held,
            waiting: inner.waiting_on.len() as u64,
            waits_total: self.waits_total.load(Ordering::Relaxed),
            deadlocks_total: self.deadlocks_total.load(Ordering::Relaxed),
            granted_total: self.granted_total.load(Ordering::Relaxed),
        }
    }
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new(Duration::from_secs(5))
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests pace contending threads with real sleeps
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn mgr() -> Arc<LockManager> {
        Arc::new(LockManager::new(Duration::from_millis(500)))
    }

    const T: Resource = Resource::Table(TableId(1));

    #[test]
    fn shared_locks_coexist() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Shared).unwrap();
        m.lock(TxnId(2), T, LockMode::Shared).unwrap();
        assert_eq!(m.stats().held, 2);
        m.release_all(TxnId(1));
        m.release_all(TxnId(2));
        assert_eq!(m.stats().held, 0);
    }

    #[test]
    fn reentrant_and_upgrade() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Shared).unwrap();
        m.lock(TxnId(1), T, LockMode::Shared).unwrap();
        m.lock(TxnId(1), T, LockMode::Exclusive).unwrap(); // sole-holder upgrade
        assert_eq!(m.stats().held, 1);
        m.lock(TxnId(1), T, LockMode::Shared).unwrap(); // X covers S
        m.release_all(TxnId(1));
    }

    #[test]
    fn exclusive_blocks_and_wakes() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock(TxnId(2), T, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(m.stats().waiting, 1);
        m.release_all(TxnId(1));
        h.join().unwrap().unwrap();
        assert!(m.stats().waits_total >= 1);
        m.release_all(TxnId(2));
    }

    #[test]
    fn timeout_fires() {
        let m = Arc::new(LockManager::new(Duration::from_millis(50)));
        m.lock(TxnId(1), T, LockMode::Exclusive).unwrap();
        let err = m.lock(TxnId(2), T, LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, Error::LockTimeout(_)));
        m.release_all(TxnId(1));
    }

    #[test]
    fn deadlock_detected() {
        let m = mgr();
        let r1 = Resource::Row(TableId(1), 1);
        let r2 = Resource::Row(TableId(1), 2);
        m.lock(TxnId(1), r1, LockMode::Exclusive).unwrap();
        m.lock(TxnId(2), r2, LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        // Txn 1 waits for r2 (held by 2) in a thread.
        let h = std::thread::spawn(move || m2.lock(TxnId(1), r2, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        // Txn 2 requesting r1 closes the cycle: it becomes the victim.
        let err = m.lock(TxnId(2), r1, LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, Error::Deadlock { victim: 2 }));
        assert_eq!(m.stats().deadlocks_total, 1);
        // The victim aborts; txn 1 then acquires r2.
        m.release_all(TxnId(2));
        h.join().unwrap().unwrap();
        m.release_all(TxnId(1));
        assert_eq!(m.stats().held, 0);
    }

    #[test]
    fn fifo_s_does_not_starve_x() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Shared).unwrap();
        // X waiter queues.
        let m2 = Arc::clone(&m);
        let hx = std::thread::spawn(move || m2.lock(TxnId(2), T, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        // A later S request must not jump the X waiter.
        let m3 = Arc::clone(&m);
        let hs = std::thread::spawn(move || m3.lock(TxnId(3), T, LockMode::Shared));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(m.stats().waiting, 2);
        m.release_all(TxnId(1));
        hx.join().unwrap().unwrap();
        m.release_all(TxnId(2));
        hs.join().unwrap().unwrap();
        m.release_all(TxnId(3));
    }

    #[test]
    fn timeout_of_queue_head_wakes_later_waiter() {
        // T1 holds S. T2 queues for X and will time out. T3 queues for S
        // behind T2 (FIFO blocks it despite S/S compatibility) — when T2
        // gives up, T3 must be woken and granted rather than sleeping
        // through its own timeout.
        let m = Arc::new(LockManager::new(Duration::from_millis(300)));
        m.lock(TxnId(1), T, LockMode::Shared).unwrap();
        let m2 = Arc::clone(&m);
        let h2 = std::thread::spawn(move || m2.lock(TxnId(2), T, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        let m3 = Arc::clone(&m);
        let h3 = std::thread::spawn(move || m3.lock(TxnId(3), T, LockMode::Shared));
        assert!(matches!(h2.join().unwrap(), Err(Error::LockTimeout(_))));
        h3.join()
            .unwrap()
            .expect("later S waiter must be granted after the queue head times out");
        assert_eq!(m.stats().held, 2);
        m.release_all(TxnId(1));
        m.release_all(TxnId(3));
    }

    #[test]
    fn row_locks_are_independent() {
        let m = mgr();
        m.lock(TxnId(1), Resource::Row(TableId(1), 1), LockMode::Exclusive)
            .unwrap();
        // Different row: no conflict.
        m.lock(TxnId(2), Resource::Row(TableId(1), 2), LockMode::Exclusive)
            .unwrap();
        assert_eq!(m.stats().held, 2);
        m.release_all(TxnId(1));
        m.release_all(TxnId(2));
    }
}
