#![cfg(loom)]
//! Model tests for the MVCC commit protocol: snapshot isolation of the
//! [`CommitTicket`] publish step and first-committer-wins validation.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p ingot-txn --test
//! loom_mvcc`. Each body executes under `loom::model`, which re-runs it
//! across many seeded interleavings (see the loom-shim crate).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use ingot_common::mvcc::{txn_mark, TS_INF};
use ingot_txn::{AbortCause, TxnManager};
use loom::sync::Arc;
use loom::thread;

/// A snapshot taken at any point around a two-row commit sees either both
/// of the transaction's versions or neither — never a torn prefix. The
/// writer stamps both `begin` cells with its reserved timestamp *before*
/// publishing; the reader resolves visibility with `Snapshot::sees` against
/// whatever it observes. Publish-order (release on `commit_seq`, acquire in
/// `snapshot`) is what makes the stamped values visible to any snapshot
/// whose `ts` covers them.
#[test]
fn snapshot_never_observes_a_torn_commit() {
    loom::model(|| {
        let m = Arc::new(TxnManager::new());
        let writer = m.begin();
        // Two uncommitted versions of one transaction, begin = txn marker.
        let row_a = Arc::new(AtomicU64::new(txn_mark(writer)));
        let row_b = Arc::new(AtomicU64::new(txn_mark(writer)));

        let w = {
            let m = Arc::clone(&m);
            let row_a = Arc::clone(&row_a);
            let row_b = Arc::clone(&row_b);
            thread::spawn(move || {
                let ticket = m.start_commit();
                row_a.store(ticket.ts(), Ordering::Release);
                thread::yield_now();
                row_b.store(ticket.ts(), Ordering::Release);
                let ts = ticket.ts();
                ticket.publish();
                m.commit(writer);
                ts
            })
        };

        let r = {
            let m = Arc::clone(&m);
            let row_a = Arc::clone(&row_a);
            let row_b = Arc::clone(&row_b);
            thread::spawn(move || {
                let reader = m.begin();
                let snap = m.snapshot(reader);
                let sees_a = snap.sees(row_a.load(Ordering::Acquire), TS_INF);
                let sees_b = snap.sees(row_b.load(Ordering::Acquire), TS_INF);
                m.commit_read_only(reader);
                (snap.ts, sees_a, sees_b)
            })
        };

        let commit_ts = w.join().unwrap();
        let (snap_ts, sees_a, sees_b) = r.join().unwrap();
        assert_eq!(
            sees_a, sees_b,
            "torn commit: snapshot ts {snap_ts} saw one of the two versions \
             of commit {commit_ts}"
        );
        if snap_ts >= commit_ts {
            assert!(
                sees_a && sees_b,
                "snapshot ts {snap_ts} covers commit {commit_ts} but missed \
                 its stamps"
            );
        }
    });
}

/// Two transactions race to supersede the same version chain head; the
/// write-time conflict check (a CAS on the head's `end` marker) plus
/// first-committer-wins validation lets exactly one of them commit, under
/// any interleaving. The loser records a `WriteConflict` abort and never
/// publishes a timestamp.
#[test]
fn first_committer_wins_never_double_commits() {
    loom::model(|| {
        let m = Arc::new(TxnManager::new());
        // The hot chain head: `end == TS_INF` means "not superseded yet".
        let head_end = Arc::new(AtomicU64::new(TS_INF));
        let committed = Arc::new(AtomicUsize::new(0));

        let contender = |m: &Arc<TxnManager>| {
            let m = Arc::clone(m);
            let head_end = Arc::clone(&head_end);
            let committed = Arc::clone(&committed);
            thread::spawn(move || {
                let txn = m.begin();
                let _snap = m.snapshot(txn);
                // Write-time conflict check: claim the head or lose.
                let claimed = head_end
                    .compare_exchange(TS_INF, txn_mark(txn), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok();
                thread::yield_now();
                let conflict = (!claimed).then(|| "the hot row".to_string());
                match m.validate_write_set(txn, conflict) {
                    Ok(()) => {
                        let ticket = m.start_commit();
                        head_end.store(ticket.ts(), Ordering::Release);
                        ticket.publish();
                        m.commit(txn);
                        committed.fetch_add(1, Ordering::SeqCst);
                        true
                    }
                    Err(_) => {
                        m.abort_with(txn, AbortCause::WriteConflict);
                        false
                    }
                }
            })
        };

        let a = contender(&m);
        let b = contender(&m);
        let wins = [a.join().unwrap(), b.join().unwrap()]
            .iter()
            .filter(|&&w| w)
            .count();
        assert_eq!(wins, 1, "exactly one contender must commit");
        assert_eq!(committed.load(Ordering::SeqCst), 1);
        assert_eq!(m.committed_count(), 1);
        assert_eq!(m.aborts_by_cause(AbortCause::WriteConflict), 1);
        assert_eq!(m.validation_failures(), 1);
        let end = head_end.load(Ordering::Acquire);
        assert!(
            end != TS_INF && end <= m.read_ts(),
            "the surviving stamp must be a published commit timestamp"
        );
    });
}

/// Quiesce-based GC can never run concurrently with an open transaction:
/// either the sweep waits the transaction out or it times out — it never
/// observes a half-open state. (Regression guard for the daemon's
/// poll-cadence sweep racing session commits.)
#[test]
fn quiesce_excludes_active_transactions() {
    loom::model(|| {
        let m = Arc::new(TxnManager::new());
        let h = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                let t = m.begin();
                thread::yield_now();
                m.commit_read_only(t);
            })
        };
        if let Ok(_guard) = m.quiesce(Duration::from_millis(100)) {
            assert_eq!(m.active_count(), 0, "quiesce admitted an active txn");
        }
        h.join().unwrap();
    });
}
