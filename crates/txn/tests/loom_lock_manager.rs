#![cfg(loom)]
//! Model tests for [`LockManager`] grant/wait/timeout under perturbed
//! schedules.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p ingot-txn --test
//! loom_lock_manager`. Each body executes under `loom::model`, which re-runs
//! it across many seeded interleavings (see the loom-shim crate).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use ingot_common::{Error, TableId, TxnId};
use ingot_txn::{LockManager, LockMode, Resource};
use loom::sync::Arc;
use loom::thread;

const T: Resource = Resource::Table(TableId(1));

/// Exclusive locks exclude: no two holders are ever inside the critical
/// section at once, under any interleaving.
#[test]
fn exclusive_lock_is_mutually_exclusive() {
    loom::model(|| {
        let m = Arc::new(LockManager::new(Duration::from_secs(5)));
        let in_cs = Arc::new(AtomicBool::new(false));
        let hs: Vec<_> = (1..=3)
            .map(|t| {
                let m = Arc::clone(&m);
                let in_cs = Arc::clone(&in_cs);
                thread::spawn(move || {
                    m.lock(TxnId(t), T, LockMode::Exclusive).unwrap();
                    assert!(
                        !in_cs.swap(true, Ordering::SeqCst),
                        "two X holders in the critical section"
                    );
                    thread::yield_now();
                    in_cs.store(false, Ordering::SeqCst);
                    m.release_all(TxnId(t));
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(m.stats().held, 0);
    });
}

/// Crosswise requests deadlock: exactly one requester is chosen victim, and
/// after it aborts the survivor is granted — under any interleaving.
#[test]
fn deadlock_victim_unblocks_survivor() {
    loom::model(|| {
        let m = Arc::new(LockManager::new(Duration::from_secs(5)));
        let r1 = Resource::Row(TableId(1), 1);
        let r2 = Resource::Row(TableId(1), 2);
        m.lock(TxnId(1), r1, LockMode::Exclusive).unwrap();
        m.lock(TxnId(2), r2, LockMode::Exclusive).unwrap();
        let cross = |me: u64, want: Resource| {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                let r = m.lock(TxnId(me), want, LockMode::Exclusive);
                if r.is_err() {
                    // Victim aborts, releasing what it holds.
                    m.release_all(TxnId(me));
                }
                r
            })
        };
        let h1 = cross(1, r2);
        let h2 = cross(2, r1);
        let results = [h1.join().unwrap(), h2.join().unwrap()];
        let deadlocks = results
            .iter()
            .filter(|r| matches!(r, Err(Error::Deadlock { .. })))
            .count();
        let grants = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(deadlocks, 1, "exactly one victim: {results:?}");
        assert_eq!(grants, 1, "the survivor must be granted: {results:?}");
    });
}

/// The timeout path must wake waiters queued behind the timed-out request
/// (regression: it removed itself from the queue without `notify_all`, so a
/// compatible later waiter slept through its own timeout).
#[test]
fn timeout_of_queue_head_wakes_later_waiter() {
    loom::model(|| {
        let m = Arc::new(LockManager::new(Duration::from_millis(60)));
        m.lock(TxnId(1), T, LockMode::Shared).unwrap();
        let h2 = {
            let m = Arc::clone(&m);
            thread::spawn(move || m.lock(TxnId(2), T, LockMode::Exclusive))
        };
        let h3 = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                // Start strictly after T2 so T2's timeout (and its wake-up
                // notify) fires while this wait is still pending. Queue
                // behind the X waiter (FIFO) in most interleavings; in the
                // rest the S/S grant is immediate. Either way this must not
                // time out.
                #[allow(clippy::disallowed_methods)] // deliberate start offset
                std::thread::sleep(Duration::from_millis(15));
                m.lock(TxnId(3), T, LockMode::Shared)
            })
        };
        assert!(h2.join().unwrap().is_err(), "the X waiter must time out");
        h3.join()
            .unwrap()
            .expect("the S waiter must be woken and granted");
        m.release_all(TxnId(1));
        m.release_all(TxnId(3));
        assert_eq!(m.stats().held, 0);
    });
}
