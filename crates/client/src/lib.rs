#![forbid(unsafe_code)]
//! `ingot-client`: the wire half of the unified [`Connection`] surface.
//!
//! [`ClientConnection`] speaks the `ingot_common::wire` protocol to an
//! `ingot-server` over a Unix or TCP socket and implements the same
//! [`Connection`] / [`PreparedStatement`] traits as the in-process
//! `ingot_core::Session` — shells, examples and bench harnesses written
//! against `&dyn Connection` run unmodified over either transport.
//!
//! Errors round-trip losslessly: a remote `WriteConflict` arrives as
//! [`ingot_common::Error::WriteConflict`] with `is_transient()` intact, so
//! client-side retry loops behave exactly as embedded ones.
//!
//! The server reaps connections silent for longer than its heartbeat
//! budget (5 s by default), so every `ClientConnection` runs a background
//! heartbeat thread that pings whenever the connection has been idle for
//! [`HEARTBEAT_INTERVAL_MS`] — a user pausing at a shell prompt, or an app
//! holding a pooled connection, never gets reaped while the process is
//! alive. [`ClientConnection::connect_with`] can tune or disable it.
//!
//! [`connect_or_spawn`] adds the auto-spawn convenience: if nothing is
//! accepting on the socket, it launches the `ingot-server` binary and
//! retries with backoff — combined with the server's idle auto-shutdown,
//! the daemon becomes an on-demand resident process.

use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ingot_common::net::{connect as net_connect, SocketSpec, Stream};
use ingot_common::wire::{self, Request, Response, MAX_FRAME_BYTES, PROTOCOL_VERSION};
use ingot_common::{
    Connection, Error, MonotonicClock, PreparedStatement, Result, StatementResult, Value,
};
use parking_lot::{Condvar, Mutex};

/// Default automatic heartbeat cadence: ping after this much idle time.
/// Well under the server's default 5 s `heartbeat_timeout_ms`; a server
/// configured tighter than this needs [`ClientConnection::connect_with`].
pub const HEARTBEAT_INTERVAL_MS: u64 = 1_000;

/// Heartbeat-thread park granularity: short ticks keep `Drop`'s join
/// prompt without busy-waiting.
const HEARTBEAT_TICK_MS: u64 = 200;

/// State shared between the caller and the background heartbeat thread.
struct ConnInner {
    stream: Mutex<Stream>,
    /// OS-handle clone for out-of-band shutdown: lets `Drop` unblock a
    /// heartbeat round-trip stuck on a dead server without needing the
    /// stream mutex that round-trip is holding.
    oob: Option<Stream>,
    closed: AtomicBool,
    /// When the last round-trip completed, nanoseconds on `clock`; the
    /// heartbeat thread only pings a connection idle past its interval.
    last_traffic_ns: AtomicU64,
    clock: MonotonicClock,
    hb_mutex: Mutex<()>,
    hb_cv: Condvar,
}

impl ConnInner {
    fn touch(&self) {
        self.last_traffic_ns
            .store(self.clock.now_nanos(), Ordering::Relaxed);
    }

    /// One request/response exchange. The mutex spans the whole exchange,
    /// so caller and heartbeat round-trips never interleave on the stream.
    fn roundtrip(&self, req: &Request) -> Result<Response> {
        let mut stream = self.stream.lock();
        wire::write_request(&mut *stream, req)?;
        let resp = read_response(&mut stream)?;
        self.touch();
        Ok(resp)
    }
}

/// Keeps an idle connection alive: pings once the connection has been
/// quiet for a full interval, exits on close or on the first wire error
/// (a dead server is the next caller's error to surface, not ours).
fn heartbeat_loop(inner: &ConnInner, interval_ns: u64) {
    loop {
        if inner.closed.load(Ordering::Relaxed) {
            return;
        }
        let idle = inner
            .clock
            .now_nanos()
            .saturating_sub(inner.last_traffic_ns.load(Ordering::Relaxed));
        if idle < interval_ns {
            let wait_ms = ((interval_ns - idle) / 1_000_000 + 1).min(HEARTBEAT_TICK_MS);
            let mut g = inner.hb_mutex.lock();
            let _ = inner.hb_cv.wait_for(&mut g, Duration::from_millis(wait_ms));
            continue;
        }
        let ping = || -> Result<()> {
            let mut stream = inner.stream.lock();
            // Closed while we waited for the stream: nothing to do.
            if inner.closed.load(Ordering::Relaxed) {
                return Ok(());
            }
            wire::write_request(&mut *stream, &Request::Heartbeat)?;
            match read_response(&mut stream)? {
                Response::Pong => Ok(()),
                Response::Err(w) => Err(w.into_error()),
                other => Err(Error::protocol(format!("expected pong, got {other:?}"))),
            }
        };
        match ping() {
            Ok(()) => inner.touch(),
            Err(_) => return,
        }
    }
}

/// A live wire connection to an `ingot-server`.
///
/// Thread-safe: the single underlying stream is serialized by a mutex, so
/// one `ClientConnection` is one server session with one outstanding
/// request at a time (open more connections for parallelism — that is what
/// the fleet bench does). A background thread heartbeats the connection
/// whenever it sits idle, so the server's orphan reaper only ever fires on
/// clients whose *process* vanished.
pub struct ClientConnection {
    inner: Arc<ConnInner>,
    session_id: u64,
    heartbeater: Option<std::thread::JoinHandle<()>>,
}

impl ClientConnection {
    /// Connect and handshake with the default client label.
    pub fn connect(spec: &SocketSpec) -> Result<ClientConnection> {
        Self::connect_with_name(spec, "ingot-client")
    }

    /// Connect and handshake, identifying as `name` in `ima$connections`.
    pub fn connect_with_name(spec: &SocketSpec, name: &str) -> Result<ClientConnection> {
        Self::connect_with(spec, name, HEARTBEAT_INTERVAL_MS)
    }

    /// Connect with an explicit automatic-heartbeat interval in
    /// milliseconds. Pass a value comfortably under the server's
    /// `heartbeat_timeout_ms`; `0` disables automatic heartbeats entirely —
    /// the caller then owns liveness via [`heartbeat`](Self::heartbeat)
    /// (tests use this to impersonate a vanished client).
    pub fn connect_with(
        spec: &SocketSpec,
        name: &str,
        heartbeat_interval_ms: u64,
    ) -> Result<ClientConnection> {
        let mut stream = net_connect(spec)?;
        wire::write_request(
            &mut stream,
            &Request::Hello {
                version: PROTOCOL_VERSION,
                client: name.to_string(),
            },
        )?;
        match read_response(&mut stream)? {
            Response::HelloOk { session_id, .. } => {
                let oob = stream.try_clone().ok();
                let clock = MonotonicClock::new();
                let inner = Arc::new(ConnInner {
                    stream: Mutex::new(stream),
                    oob,
                    closed: AtomicBool::new(false),
                    last_traffic_ns: AtomicU64::new(clock.now_nanos()),
                    clock,
                    hb_mutex: Mutex::new(()),
                    hb_cv: Condvar::new(),
                });
                let heartbeater = (heartbeat_interval_ms > 0).then(|| {
                    let inner = Arc::clone(&inner);
                    let interval_ns = heartbeat_interval_ms.saturating_mul(1_000_000);
                    std::thread::spawn(move || heartbeat_loop(&inner, interval_ns))
                });
                Ok(ClientConnection {
                    inner,
                    session_id,
                    heartbeater,
                })
            }
            Response::Err(w) => Err(w.into_error()),
            other => Err(Error::protocol(format!("expected hello_ok, got {other:?}"))),
        }
    }

    /// The engine session id serving this connection (joins against
    /// `ima$connections.session` and the ASH tables).
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Explicit liveness ping; resets the server's orphan-reaper deadline.
    /// The background heartbeat thread already does this for idle
    /// connections — call it yourself only with heartbeats disabled.
    pub fn heartbeat(&self) -> Result<()> {
        match self.inner.roundtrip(&Request::Heartbeat)? {
            Response::Pong => Ok(()),
            Response::Err(w) => Err(w.into_error()),
            other => Err(Error::protocol(format!("expected pong, got {other:?}"))),
        }
    }

    /// Ask the server process to drain and exit (admin verb). Unix-socket
    /// peers are always honoured; over TCP the server refuses unless it was
    /// started with `--allow-remote-shutdown`, and this connection stays
    /// usable after the refusal.
    pub fn shutdown_server(&self) -> Result<()> {
        match self.inner.roundtrip(&Request::Shutdown)? {
            Response::Goodbye => {
                self.inner.closed.store(true, Ordering::Relaxed);
                self.inner.hb_cv.notify_all();
                Ok(())
            }
            Response::Err(w) => Err(w.into_error()),
            other => Err(Error::protocol(format!("expected goodbye, got {other:?}"))),
        }
    }

    /// Orderly close. Dropping the connection does this best-effort.
    pub fn close(self) -> Result<()> {
        self.inner.closed.store(true, Ordering::Relaxed);
        self.inner.hb_cv.notify_all();
        match self.inner.roundtrip(&Request::Close)? {
            Response::Goodbye => Ok(()),
            Response::Err(w) => Err(w.into_error()),
            other => Err(Error::protocol(format!("expected goodbye, got {other:?}"))),
        }
    }

    fn statement(&self, req: &Request) -> Result<StatementResult> {
        match self.inner.roundtrip(req)? {
            Response::Rows(r) => Ok(r),
            Response::Ok => Ok(StatementResult::default()),
            Response::Err(w) => Err(w.into_error()),
            Response::Goodbye => Err(Error::protocol("server is draining")),
            other => Err(Error::protocol(format!("unexpected response {other:?}"))),
        }
    }

    fn unit(&self, req: &Request) -> Result<()> {
        match self.inner.roundtrip(req)? {
            Response::Ok => Ok(()),
            Response::Err(w) => Err(w.into_error()),
            Response::Goodbye => Err(Error::protocol("server is draining")),
            other => Err(Error::protocol(format!("unexpected response {other:?}"))),
        }
    }
}

impl Drop for ClientConnection {
    fn drop(&mut self) {
        if !self.inner.closed.swap(true, Ordering::Relaxed) {
            // Best-effort orderly close; the server also copes with a bare
            // EOF (and its reaper with neither). Never wait behind a
            // heartbeat round-trip that may itself be stuck on a dead
            // server — fall back to an out-of-band shutdown instead.
            match self.inner.stream.try_lock() {
                Some(mut stream) => {
                    let _ = wire::write_request(&mut *stream, &Request::Close);
                    stream.shutdown();
                }
                None => {
                    if let Some(s) = &self.inner.oob {
                        s.shutdown();
                    }
                }
            }
        }
        self.inner.hb_cv.notify_all();
        if let Some(t) = self.heartbeater.take() {
            let _ = t.join();
        }
    }
}

fn read_response(stream: &mut Stream) -> Result<Response> {
    match wire::read_frame(stream, MAX_FRAME_BYTES)? {
        Some((op, body)) => Response::decode(op, &body),
        None => Err(Error::protocol("server closed the connection")),
    }
}

/// A server-side prepared handle (the statement lives in the server's plan
/// cache; only parameter values cross the wire per execution).
pub struct ClientPrepared<'a> {
    conn: &'a ClientConnection,
    id: u64,
    param_count: usize,
}

impl PreparedStatement for ClientPrepared<'_> {
    fn param_count(&self) -> usize {
        self.param_count
    }

    fn execute(&self, params: &[Value]) -> Result<StatementResult> {
        self.conn.statement(&Request::ExecutePrepared {
            id: self.id,
            params: params.to_vec(),
        })
    }
}

impl Drop for ClientPrepared<'_> {
    fn drop(&mut self) {
        if !self.conn.inner.closed.load(Ordering::Relaxed) {
            let _ = self
                .conn
                .inner
                .roundtrip(&Request::ClosePrepared { id: self.id });
        }
    }
}

impl Connection for ClientConnection {
    fn execute(&self, sql: &str) -> Result<StatementResult> {
        self.statement(&Request::Execute {
            sql: sql.to_string(),
            params: Vec::new(),
        })
    }

    fn query(&self, sql: &str) -> Result<StatementResult> {
        self.statement(&Request::Query {
            sql: sql.to_string(),
        })
    }

    fn prepare(&self, sql: &str) -> Result<Box<dyn PreparedStatement + '_>> {
        match self.inner.roundtrip(&Request::Prepare {
            sql: sql.to_string(),
        })? {
            Response::PreparedOk { id, param_count } => Ok(Box::new(ClientPrepared {
                conn: self,
                id,
                param_count: param_count as usize,
            })),
            Response::Err(w) => Err(w.into_error()),
            other => Err(Error::protocol(format!(
                "expected prepared_ok, got {other:?}"
            ))),
        }
    }

    fn set(&self, name: &str, value: &Value) -> Result<()> {
        self.unit(&Request::Set {
            name: name.to_string(),
            value: value.clone(),
        })
    }

    fn begin(&self) -> Result<()> {
        self.unit(&Request::Begin)
    }

    fn commit(&self) -> Result<()> {
        self.unit(&Request::Commit)
    }

    fn rollback(&self) -> Result<()> {
        self.unit(&Request::Rollback)
    }
}

/// How [`connect_or_spawn`] launches a server when none is listening.
#[derive(Debug, Clone, Default)]
pub struct SpawnOptions {
    /// Server binary. Defaults to `$INGOT_SERVER_BIN`, falling back to
    /// `ingot-server` on `PATH`.
    pub server_bin: Option<std::path::PathBuf>,
    /// `--data DIR` for the spawned server (file-backed storage).
    pub data_dir: Option<std::path::PathBuf>,
    /// `--idle-shutdown-ms` for the spawned server (on-demand daemons
    /// usually want this so an abandoned server exits by itself).
    pub idle_shutdown_ms: Option<u64>,
    /// Extra argv appended verbatim.
    pub extra_args: Vec<String>,
    /// Total connect-retry budget in milliseconds (default 5000).
    pub connect_timeout_ms: Option<u64>,
}

impl SpawnOptions {
    fn bin(&self) -> std::path::PathBuf {
        self.server_bin
            .clone()
            .or_else(|| std::env::var_os("INGOT_SERVER_BIN").map(Into::into))
            .unwrap_or_else(|| "ingot-server".into())
    }
}

/// Connect to `spec`; if nothing is accepting, spawn an `ingot-server`
/// there and retry with backoff until it comes up (or the budget runs out).
///
/// Spawn happens at most once; the retry loop also covers the case where a
/// *different* client's freshly spawned server is still binding, so
/// concurrent auto-spawns converge on one server (the loser's bind fails
/// against the winner's live socket and its spawned process exits).
pub fn connect_or_spawn(spec: &SocketSpec, opts: &SpawnOptions) -> Result<ClientConnection> {
    match ClientConnection::connect(spec) {
        Ok(c) => return Ok(c),
        Err(Error::Protocol(m)) => return Err(Error::Protocol(m)),
        Err(_) => {}
    }
    let mut cmd = Command::new(opts.bin());
    cmd.arg("--socket")
        .arg(spec.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(dir) = &opts.data_dir {
        cmd.arg("--data").arg(dir);
    }
    if let Some(ms) = opts.idle_shutdown_ms {
        cmd.arg("--idle-shutdown-ms").arg(ms.to_string());
    }
    cmd.args(&opts.extra_args);
    cmd.spawn()
        .map_err(|e| Error::daemon(format!("spawning {:?} failed: {e}", opts.bin())))?;
    let clock = MonotonicClock::new();
    let budget_ns = opts
        .connect_timeout_ms
        .unwrap_or(5_000)
        .saturating_mul(1_000_000);
    let mut backoff_ms = 5u64;
    let mut last_err = None;
    while clock.now_nanos() < budget_ns {
        match ClientConnection::connect(spec) {
            Ok(c) => return Ok(c),
            Err(Error::Protocol(m)) => return Err(Error::Protocol(m)),
            Err(e) => last_err = Some(e),
        }
        // Waiting out a cold server start; there is no event to block on
        // (the socket file appears whenever the child finishes binding), so
        // a plain backoff sleep is the honest tool here.
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(Duration::from_millis(backoff_ms));
        backoff_ms = (backoff_ms * 2).min(200);
    }
    Err(last_err
        .unwrap_or_else(|| Error::daemon(format!("server on {spec} did not come up in time"))))
}
