#![forbid(unsafe_code)]
//! A miniature, dependency-free stand-in for the [loom] model checker.
//!
//! The real loom crate is not vendorable in this offline workspace, so this
//! shim reproduces the *shape* of loom testing — `loom::model(|| …)` bodies
//! that exercise synchronisation primitives across many interleavings — with
//! **seeded schedule perturbation** instead of exhaustive state-space
//! exploration: every `model` iteration reseeds a global xorshift stream,
//! and each primitive operation consults it to inject `yield_now` calls and
//! microsecond stalls at the acquire/notify boundaries where interleavings
//! matter. This is the spirit of loom's bounded "random" strategy: far
//! weaker than exhaustive DPOR, far stronger than a single lucky schedule.
//!
//! API surface: `loom::model`, `loom::thread::{spawn, yield_now}`, and
//! `loom::sync::{Arc, Mutex, Condvar, RwLock}`. The sync types mirror
//! **parking_lot's** API (not std's poisoning API), because that is what the
//! production code under test uses — `#[cfg(loom)]` swaps the import and
//! nothing else changes.
//!
//! [loom]: https://docs.rs/loom

pub mod rt {
    //! The seeded perturbation stream shared by every shim primitive.

    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    static STATE: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);

    /// Reseed the stream (start of a `model` iteration).
    pub fn reset(seed: u64) {
        STATE.store(seed | 1, Ordering::SeqCst);
    }

    fn next() -> u64 {
        // fetch_add of an odd constant makes every call site draw a distinct
        // value even under contention; the mix below decorrelates them.
        let s = STATE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        let mut x = s ^ (s >> 33);
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 29;
        x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        x ^ (x >> 32)
    }

    /// Perturbation point: called before lock acquisition, after release,
    /// and around notifies. Sometimes yields the OS slice, occasionally
    /// stalls long enough for another thread to win a race window.
    #[allow(clippy::disallowed_methods)] // the stall *is* the perturbation
    pub fn maybe_yield() {
        let x = next();
        if x.is_multiple_of(4) {
            std::thread::yield_now();
        } else if x.is_multiple_of(61) {
            std::thread::sleep(Duration::from_micros(x % 50));
        }
    }
}

pub mod thread {
    //! `std::thread` with perturbed spawn/join edges.

    pub use std::thread::{yield_now, JoinHandle};

    /// Spawn with a perturbation point on both sides of the thread start,
    /// so the parent racing the child is itself part of the explored space.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        crate::rt::maybe_yield();
        std::thread::spawn(move || {
            crate::rt::maybe_yield();
            f()
        })
    }
}

pub mod sync {
    //! parking_lot-shaped sync primitives with perturbation points.

    pub use std::sync::Arc;

    use std::time::Duration;

    pub use parking_lot::{MutexGuard, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult};

    /// [`parking_lot::Mutex`] with schedule perturbation on `lock`.
    #[derive(Default)]
    pub struct Mutex<T>(parking_lot::Mutex<T>);

    impl<T> Mutex<T> {
        /// A new unlocked mutex.
        pub fn new(value: T) -> Self {
            Mutex(parking_lot::Mutex::new(value))
        }

        /// Acquire, with perturbation before and after the acquire edge.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            crate::rt::maybe_yield();
            let g = self.0.lock();
            crate::rt::maybe_yield();
            g
        }
    }

    /// [`parking_lot::Condvar`] with perturbation around wait/notify.
    #[derive(Default)]
    pub struct Condvar(parking_lot::Condvar);

    impl Condvar {
        /// A new condition variable.
        pub fn new() -> Self {
            Condvar(parking_lot::Condvar::new())
        }

        /// Wake every waiter (perturbed so the wake races re-acquisition).
        pub fn notify_all(&self) {
            crate::rt::maybe_yield();
            self.0.notify_all();
        }

        /// Wake one waiter.
        pub fn notify_one(&self) {
            crate::rt::maybe_yield();
            self.0.notify_one();
        }

        /// Timed wait; the guard is re-acquired before returning.
        pub fn wait_for<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            timeout: Duration,
        ) -> WaitTimeoutResult {
            crate::rt::maybe_yield();
            let r = self.0.wait_for(guard, timeout);
            crate::rt::maybe_yield();
            r
        }
    }

    /// [`parking_lot::RwLock`] with schedule perturbation on both modes.
    #[derive(Default)]
    pub struct RwLock<T>(parking_lot::RwLock<T>);

    impl<T> RwLock<T> {
        /// A new unlocked lock.
        pub fn new(value: T) -> Self {
            RwLock(parking_lot::RwLock::new(value))
        }

        /// Shared acquire.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            crate::rt::maybe_yield();
            let g = self.0.read();
            crate::rt::maybe_yield();
            g
        }

        /// Exclusive acquire.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            crate::rt::maybe_yield();
            let g = self.0.write();
            crate::rt::maybe_yield();
            g
        }
    }
}

/// Run `f` under many perturbed schedules (default 64; override with
/// `LOOM_ITERS`). Mirrors `loom::model`: panics/assert failures inside `f`
/// propagate and fail the test.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iters: u64 = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    for i in 0..iters {
        rt::reset(0x5DEE_CE66_D001 ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        f();
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{Arc, Condvar, Mutex, RwLock};
    use std::time::Duration;

    #[test]
    fn model_runs_many_iterations() {
        let count = Arc::new(Mutex::new(0u32));
        let c = Arc::clone(&count);
        super::model(move || {
            *c.lock() += 1;
        });
        assert_eq!(*count.lock(), 64);
    }

    #[test]
    fn mutex_counter_is_race_free() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0u64));
            let hs: Vec<_> = (0..3)
                .map(|_| {
                    let m = Arc::clone(&m);
                    super::thread::spawn(move || {
                        for _ in 0..10 {
                            *m.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(*m.lock(), 30);
        });
    }

    #[test]
    fn condvar_wait_for_times_out_and_wakes() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_modes() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
