#![forbid(unsafe_code)]
//! Offline vendored shim for the `criterion` crate.
//!
//! The Ingot build image has no network access and no cargo registry cache, so
//! external crates are vendored as minimal local shims (see DESIGN.md §10.4).
//! This one keeps Ingot's `benches/` targets compiling and runnable: same
//! types and macros (`Criterion`, `BenchmarkGroup`, `BenchmarkId`,
//! `Throughput`, `criterion_group!`, `criterion_main!`, `black_box`), backed
//! by a plain wall-clock harness that prints mean ns/iter.
//!
//! It does **not** reproduce criterion's statistics (outlier rejection,
//! bootstrap confidence intervals, HTML reports). Numbers printed here are
//! smoke-level timings; the publishable measurements in `results/` come from
//! the dedicated `crates/bench/src/bin/` harnesses, which never depended on
//! criterion.

use std::time::{Duration, Instant};

/// Opaque value barrier, forwarding to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, e.g. `lookup/1024`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just a parameter, e.g. `64`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { id: s.clone() }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
    min_iters: u64,
    measurement: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a few unmeasured calls so lazy init does not dominate.
        for _ in 0..3 {
            black_box(f());
        }
        let budget = self.measurement.min(Duration::from_secs(2));
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(f());
            iters += 1;
            if (start.elapsed() >= budget && iters >= self.min_iters) || iters >= 1_000_000 {
                break;
            }
        }
        self.iters = iters;
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Set the nominal sample count (kept for API compatibility; the shim
    /// harness is time-budgeted rather than sample-counted).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Set the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.measurement, self.sample_size, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            measurement: self.measurement,
            sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the nominal sample count (used as the minimum iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Set the measurement time budget for benches in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotate per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(
            &id,
            self.measurement,
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(
            &id,
            self.measurement,
            self.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher {
        mean_ns: 0.0,
        iters: 0,
        min_iters: sample_size as u64,
        measurement,
    };
    f(&mut bencher);
    let mut line = format!(
        "bench {id:<48} {:>12.1} ns/iter ({} iters)",
        bencher.mean_ns, bencher.iters
    );
    if let Some(t) = throughput {
        let per_sec = |n: u64| n as f64 * 1e9 / bencher.mean_ns.max(1.0);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!(", {:.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(", {:.0} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// Bundle benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_chain_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(5))
            .throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::from_parameter(4), |b| {
            b.iter(|| black_box(2 * 2))
        });
        group.bench_with_input(BenchmarkId::new("input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
