//! Property-based tests of the SQL front end: total safety on arbitrary
//! input and round-trip structure on generated statements.

use ingot_sql::{parse_statement, BinOp, Expr, SelectItem, Statement};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The parser must never panic, whatever bytes arrive.
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = parse_statement(&input);
    }

    /// Nor on inputs biased towards SQL-looking fragments.
    #[test]
    fn parser_never_panics_on_sqlish(
        parts in prop::collection::vec(
            prop_oneof![
                Just("select".to_owned()),
                Just("from".to_owned()),
                Just("where".to_owned()),
                Just("and".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just(",".to_owned()),
                Just("'txt'".to_owned()),
                Just("42".to_owned()),
                Just("*".to_owned()),
                Just("=".to_owned()),
                ident(),
            ],
            0..24,
        )
    ) {
        let _ = parse_statement(&parts.join(" "));
    }

    /// Generated point selects parse into exactly the expected tree.
    #[test]
    fn point_select_roundtrip(table in ident(), col in ident(), v in any::<i32>()) {
        let sql = format!("select {col} from {table} where {col} = {v}");
        let Statement::Select(s) = parse_statement(&sql).unwrap() else {
            return Err(TestCaseError::fail("not a select"));
        };
        prop_assert_eq!(&s.from[0].name, &table);
        prop_assert_eq!(s.items.len(), 1);
        let SelectItem::Expr { expr: Expr::Column { name, .. }, .. } = &s.items[0] else {
            return Err(TestCaseError::fail("not a column"));
        };
        prop_assert_eq!(name, &col);
        let Some(Expr::Binary { op: BinOp::Eq, right, .. }) = s.filter else {
            return Err(TestCaseError::fail("no eq filter"));
        };
        prop_assert_eq!(
            *right,
            Expr::Literal(ingot_common::Value::Int(i64::from(v)))
        );
    }

    /// String literals with embedded quotes survive lexing.
    #[test]
    fn string_literal_roundtrip(content in "[a-zA-Z0-9 ]{0,20}", quotes in 0usize..3) {
        let mut text = content.clone();
        for _ in 0..quotes {
            text.push('\'');
        }
        let escaped = text.replace('\'', "''");
        let sql = format!("select '{escaped}'");
        let Statement::Select(s) = parse_statement(&sql).unwrap() else {
            return Err(TestCaseError::fail("not a select"));
        };
        let SelectItem::Expr { expr: Expr::Literal(ingot_common::Value::Str(got)), .. } =
            &s.items[0]
        else {
            return Err(TestCaseError::fail("not a string literal"));
        };
        prop_assert_eq!(got, &text);
    }

    /// Integer literals round-trip exactly (including negatives).
    #[test]
    fn integer_literal_roundtrip(v in any::<i64>()) {
        let sql = format!("select {v}");
        let Statement::Select(s) = parse_statement(&sql).unwrap() else {
            return Err(TestCaseError::fail("not a select"));
        };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            return Err(TestCaseError::fail("no expr"));
        };
        prop_assert_eq!(expr, &Expr::Literal(ingot_common::Value::Int(v)));
    }

    /// Conjunct splitting and re-joining is lossless.
    #[test]
    fn conjuncts_roundtrip(n in 1usize..6) {
        let cols: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
        let pred = cols
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c} = {i}"))
            .collect::<Vec<_>>()
            .join(" and ");
        let sql = format!("select 1 from t where {pred}");
        let Statement::Select(s) = parse_statement(&sql).unwrap() else {
            return Err(TestCaseError::fail("not a select"));
        };
        let filter = s.filter.unwrap();
        let parts = filter.conjuncts();
        prop_assert_eq!(parts.len(), n);
        let rejoined = Expr::conjoin(parts.into_iter().cloned().collect()).unwrap();
        prop_assert_eq!(rejoined.conjuncts().len(), n);
    }
}
