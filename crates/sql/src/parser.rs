//! The recursive-descent parser.

use ingot_common::{DataType, Error, Result, Value};

use crate::ast::*;
use crate::lexer::{Lexer, Token};

/// Parse exactly one statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.parse_stmt()?;
    p.eat(&Token::Semi);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&Token::Semi) {}
        if p.peek() == &Token::Eof {
            return Ok(out);
        }
        out.push(p.parse_stmt()?);
        if !p.eat(&Token::Semi) {
            p.expect_eof()?;
            return Ok(out);
        }
    }
}

/// Token-stream parser. Use [`parse_statement`] / [`parse_statements`] unless
/// you need incremental parsing.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Lex `sql` and position at the first token.
    pub fn new(sql: &str) -> Result<Self> {
        Ok(Parser {
            tokens: Lexer::new(sql).tokenize()?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &'static str) -> bool {
        if self.peek() == &Token::Keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_kw(&mut self, kw: &'static str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "unexpected trailing input: {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            // Non-reserved use of keywords as identifiers is common in
            // generated schemas (a column named `key`, `set`, …); allow any
            // keyword where an identifier is required except the statement
            // starters.
            Token::Keyword(k)
                if !matches!(
                    k,
                    "SELECT" | "FROM" | "WHERE" | "GROUP" | "ORDER" | "AND" | "OR"
                ) =>
            {
                Ok(k.to_ascii_lowercase())
            }
            other => Err(Error::parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    /// Parse one statement.
    pub fn parse_stmt(&mut self) -> Result<Statement> {
        match self.peek().clone() {
            Token::Keyword("SELECT") => Ok(Statement::Select(self.parse_select()?)),
            Token::Keyword("INSERT") => self.parse_insert(),
            Token::Keyword("UPDATE") => self.parse_update(),
            Token::Keyword("DELETE") => self.parse_delete(),
            Token::Keyword("CREATE") => self.parse_create(),
            Token::Keyword("DROP") => self.parse_drop(),
            Token::Keyword("MODIFY") => self.parse_modify(),
            Token::Keyword("EXPLAIN") => {
                self.bump();
                let analyze = self.eat_kw("ANALYZE");
                Ok(Statement::Explain {
                    analyze,
                    inner: Box::new(self.parse_stmt()?),
                })
            }
            Token::Keyword("SET") => self.parse_set(),
            other => Err(Error::parse(format!("unexpected token {other:?}"))),
        }
    }

    // ---- SELECT ---------------------------------------------------------------

    fn parse_select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = vec![self.parse_select_item()?];
        while self.eat(&Token::Comma) {
            items.push(self.parse_select_item()?);
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            from.push(self.parse_table_ref()?);
            while self.eat(&Token::Comma) {
                from.push(self.parse_table_ref()?);
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.parse_expr()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            Some(self.parse_u64()?)
        } else {
            None
        };
        let offset = if self.eat_kw("OFFSET") {
            Some(self.parse_u64()?)
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            filter,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_u64(&mut self) -> Result<u64> {
        match self.bump() {
            Token::Int(i) if i >= 0 => Ok(i as u64),
            other => Err(Error::parse(format!(
                "expected non-negative integer, found {other:?}"
            ))),
        }
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.peek() == &Token::Star {
            self.bump();
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let (Token::Ident(t), Token::Dot) = (self.peek().clone(), self.peek2().clone()) {
            if self.tokens.get(self.pos + 2) == Some(&Token::Star) {
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(t));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Token::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        let alias = self.parse_alias()?;
        let mut joins = Vec::new();
        loop {
            let is_join = if self.eat_kw("JOIN") {
                true
            } else if self.peek() == &Token::Keyword("INNER") {
                self.bump();
                self.expect_kw("JOIN")?;
                true
            } else {
                false
            };
            if !is_join {
                break;
            }
            let jname = self.ident()?;
            let jalias = self.parse_alias()?;
            self.expect_kw("ON")?;
            let on = self.parse_expr()?;
            joins.push(Join {
                name: jname,
                alias: jalias,
                on,
            });
        }
        Ok(TableRef { name, alias, joins })
    }

    fn parse_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("AS") {
            return Ok(Some(self.ident()?));
        }
        if let Token::Ident(_) = self.peek() {
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }

    // ---- DML ------------------------------------------------------------------

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if self.peek() == &Token::LParen {
            self.bump();
            let mut cols = vec![self.ident()?];
            while self.eat(&Token::Comma) {
                cols.push(self.ident()?);
            }
            self.expect(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut vals = vec![self.parse_expr()?];
            while self.eat(&Token::Comma) {
                vals.push(self.parse_expr()?);
            }
            self.expect(&Token::RParen)?;
            rows.push(vals);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn parse_update(&mut self) -> Result<Statement> {
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            sets.push((col, self.parse_expr()?));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            filter,
        })
    }

    fn parse_delete(&mut self) -> Result<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let filter = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    // ---- DDL ------------------------------------------------------------------

    fn parse_create(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            return self.parse_create_table();
        }
        if self.eat_kw("UNIQUE") {
            self.expect_kw("INDEX")?;
            return self.parse_create_index(true);
        }
        if self.eat_kw("INDEX") {
            return self.parse_create_index(false);
        }
        if self.eat_kw("STATISTICS") {
            // `CREATE STATISTICS ON t [(cols)]`; `ON`/`FOR` optional.
            let _ = self.eat_kw("ON");
            let table = self.ident()?;
            let mut columns = Vec::new();
            if self.eat(&Token::LParen) {
                columns.push(self.ident()?);
                while self.eat(&Token::Comma) {
                    columns.push(self.ident()?);
                }
                self.expect(&Token::RParen)?;
            }
            return Ok(Statement::CreateStatistics { table, columns });
        }
        Err(Error::parse(format!(
            "expected TABLE, INDEX or STATISTICS after CREATE, found {:?}",
            self.peek()
        )))
    }

    fn parse_create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key: Vec<String> = Vec::new();
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                self.expect(&Token::LParen)?;
                loop {
                    primary_key.push(self.ident()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            } else {
                let col_name = self.ident()?;
                let ty = self.parse_type()?;
                let mut not_null = false;
                let mut pk = false;
                loop {
                    if self.eat_kw("NOT") {
                        self.expect_kw("NULL")?;
                        not_null = true;
                    } else if self.eat_kw("NULL") {
                        not_null = false;
                    } else if self.eat_kw("PRIMARY") {
                        self.expect_kw("KEY")?;
                        pk = true;
                        not_null = true;
                    } else {
                        break;
                    }
                }
                if pk {
                    primary_key.push(col_name.clone());
                }
                columns.push(ColumnDef {
                    name: col_name,
                    ty,
                    not_null,
                    primary_key: pk,
                });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable {
            name,
            columns,
            primary_key,
        })
    }

    fn parse_type(&mut self) -> Result<DataType> {
        let name = self.ident()?;
        let ty = match name.as_str() {
            "int" | "integer" | "bigint" | "smallint" | "int4" | "int8" => DataType::Int,
            "float" | "float8" | "double" | "real" | "decimal" | "numeric" => DataType::Float,
            "varchar" | "char" | "text" | "string" => DataType::Str,
            "bool" | "boolean" => DataType::Bool,
            other => return Err(Error::parse(format!("unknown type '{other}'"))),
        };
        // Optional length/precision: VARCHAR(40), DECIMAL(10,2).
        if self.eat(&Token::LParen) {
            self.parse_u64()?;
            if self.eat(&Token::Comma) {
                self.parse_u64()?;
            }
            self.expect(&Token::RParen)?;
        }
        Ok(ty)
    }

    fn parse_create_index(&mut self, unique: bool) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = vec![self.ident()?];
        while self.eat(&Token::Comma) {
            columns.push(self.ident()?);
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            columns,
            unique,
        })
    }

    fn parse_drop(&mut self) -> Result<Statement> {
        self.expect_kw("DROP")?;
        if self.eat_kw("TABLE") {
            return Ok(Statement::DropTable {
                name: self.ident()?,
            });
        }
        if self.eat_kw("INDEX") {
            return Ok(Statement::DropIndex {
                name: self.ident()?,
            });
        }
        Err(Error::parse(format!(
            "expected TABLE or INDEX after DROP, found {:?}",
            self.peek()
        )))
    }

    fn parse_modify(&mut self) -> Result<Statement> {
        self.expect_kw("MODIFY")?;
        let table = self.ident()?;
        self.expect_kw("TO")?;
        let to = self.ident()?;
        Ok(Statement::Modify { table, to })
    }

    fn parse_set(&mut self) -> Result<Statement> {
        self.expect_kw("SET")?;
        let name = self.ident()?;
        self.expect(&Token::Eq)?;
        let value = match self.bump() {
            Token::Int(i) => Value::Int(i),
            Token::Float(f) => Value::Float(f),
            Token::Str(s) => Value::Str(s),
            Token::Keyword("TRUE") => Value::Bool(true),
            Token::Keyword("FALSE") => Value::Bool(false),
            Token::Ident(s) => Value::Str(s),
            // Bare words that happen to be SQL keywords (`group`, `order`)
            // are legal knob values, as in `set wal_fsync_mode = group`.
            Token::Keyword(k) => Value::Str(k.to_ascii_lowercase()),
            other => return Err(Error::parse(format!("bad SET value {other:?}"))),
        };
        Ok(Statement::Set { name, value })
    }

    // ---- expressions -------------------------------------------------------------

    /// Parse a full expression (lowest precedence: OR).
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat_kw("OR") {
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_not()?;
        while self.eat_kw("AND") {
            let rhs = self.parse_not()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let e = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let lhs = self.parse_additive()?;
        // Postfix predicates: IS NULL / BETWEEN / IN / LIKE, possibly NOT-ed.
        let negated = if self.peek() == &Token::Keyword("NOT")
            && matches!(
                self.peek2(),
                Token::Keyword("BETWEEN") | Token::Keyword("IN") | Token::Keyword("LIKE")
            ) {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw("IS") {
            let neg = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated: neg,
            });
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.parse_additive()?;
            self.expect_kw("AND")?;
            let hi = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect(&Token::LParen)?;
            let mut list = vec![self.parse_expr()?];
            while self.eat(&Token::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = match self.bump() {
                Token::Str(s) => s,
                other => {
                    return Err(Error::parse(format!(
                        "LIKE needs a string pattern, found {other:?}"
                    )))
                }
            };
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern,
                negated,
            });
        }
        if negated {
            return Err(Error::parse("dangling NOT before comparison"));
        }
        let op = match self.peek() {
            Token::Eq => BinOp::Eq,
            Token::Neq => BinOp::Neq,
            Token::Lt => BinOp::Lt,
            Token::Le => BinOp::Le,
            Token::Gt => BinOp::Gt,
            Token::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_additive()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            let e = self.parse_unary()?;
            // Fold negative literals.
            return Ok(match e {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat(&Token::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Token::Int(i) => Ok(Expr::Literal(Value::Int(i))),
            Token::Param(n) => Ok(Expr::Param(n as usize - 1)),
            Token::Float(f) => Ok(Expr::Literal(Value::Float(f))),
            Token::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            Token::Keyword("NULL") => Ok(Expr::Literal(Value::Null)),
            Token::Keyword("TRUE") => Ok(Expr::Literal(Value::Bool(true))),
            Token::Keyword("FALSE") => Ok(Expr::Literal(Value::Bool(false))),
            Token::LParen => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                // Function call?
                if self.peek() == &Token::LParen {
                    self.bump();
                    if name == "count" && self.peek() == &Token::Star {
                        self.bump();
                        self.expect(&Token::RParen)?;
                        return Ok(Expr::CountStar);
                    }
                    let distinct = self.eat_kw("DISTINCT");
                    let mut args = Vec::new();
                    if self.peek() != &Token::RParen {
                        args.push(self.parse_expr()?);
                        while self.eat(&Token::Comma) {
                            args.push(self.parse_expr()?);
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Call {
                        func: name,
                        args,
                        distinct,
                    });
                }
                // Qualified column `t.c`?
                if self.eat(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(Error::parse(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn paper_point_query() {
        // The paper's 1m-test statement shape.
        let s = sel("select p.nref_id from protein p where p.nref_id = 'NF00000001'");
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.from[0].name, "protein");
        assert_eq!(s.from[0].alias.as_deref(), Some("p"));
        assert!(s.filter.is_some());
    }

    #[test]
    fn paper_join_query() {
        // The paper's 50k-test statement shape.
        let s = sel("select p.nref_id, sequence, ordinal from protein p \
             join organism o on p.nref_id = o.nref_id where p.nref_id = 'NF001'");
        assert_eq!(s.items.len(), 3);
        assert_eq!(s.from[0].joins.len(), 1);
        assert_eq!(s.from[0].joins[0].name, "organism");
        assert!(matches!(
            s.from[0].joins[0].on,
            Expr::Binary { op: BinOp::Eq, .. }
        ));
    }

    #[test]
    fn group_order_limit() {
        let s = sel("select taxon_id, count(*) as n, avg(len) from protein \
             group by taxon_id having count(*) > 10 order by n desc, taxon_id limit 5 offset 2");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
        assert_eq!(s.limit, Some(5));
        assert_eq!(s.offset, Some(2));
    }

    #[test]
    fn precedence_and_or_comparison() {
        let s = sel("select 1 from t where a = 1 and b = 2 or c = 3");
        let Expr::Binary { op, left, .. } = s.filter.unwrap() else {
            panic!()
        };
        assert_eq!(op, BinOp::Or);
        assert!(matches!(*left, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn arithmetic_precedence() {
        let s = sel("select 1 + 2 * 3 from t");
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        let Expr::Binary { op, right, .. } = expr else {
            panic!()
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn between_in_like_is_null() {
        let s = sel("select 1 from t where a between 1 and 5 and b in (1, 2) \
             and c like 'NF%' and d is not null and e not in (3)");
        let conj = s.filter.as_ref().unwrap().conjuncts().len();
        assert_eq!(conj, 5);
    }

    #[test]
    fn insert_multi_row() {
        let st = parse_statement(
            "insert into protein (nref_id, name) values ('NF1', 'a'), ('NF2', 'b')",
        )
        .unwrap();
        let Statement::Insert {
            table,
            columns,
            rows,
        } = st
        else {
            panic!()
        };
        assert_eq!(table, "protein");
        assert_eq!(columns.unwrap().len(), 2);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn update_delete() {
        let st = parse_statement("update t set a = a + 1, b = 'x' where id = 3").unwrap();
        let Statement::Update { sets, filter, .. } = st else {
            panic!()
        };
        assert_eq!(sets.len(), 2);
        assert!(filter.is_some());
        let st = parse_statement("delete from t where id < 10").unwrap();
        assert!(matches!(st, Statement::Delete { .. }));
    }

    #[test]
    fn create_table_with_pk_variants() {
        let st = parse_statement(
            "create table protein (nref_id varchar(12) not null primary key, \
             name text, len int, score float)",
        )
        .unwrap();
        let Statement::CreateTable {
            columns,
            primary_key,
            ..
        } = st
        else {
            panic!()
        };
        assert_eq!(columns.len(), 4);
        assert_eq!(primary_key, vec!["nref_id"]);
        assert!(columns[0].not_null);

        let st = parse_statement("create table m (a int, b int, primary key (a, b))").unwrap();
        let Statement::CreateTable { primary_key, .. } = st else {
            panic!()
        };
        assert_eq!(primary_key, vec!["a", "b"]);
    }

    #[test]
    fn ingres_admin_statements() {
        assert_eq!(
            parse_statement("modify protein to btree").unwrap(),
            Statement::Modify {
                table: "protein".into(),
                to: "btree".into()
            }
        );
        assert_eq!(
            parse_statement("create statistics on protein (len, taxon_id)").unwrap(),
            Statement::CreateStatistics {
                table: "protein".into(),
                columns: vec!["len".into(), "taxon_id".into()]
            }
        );
        assert!(matches!(
            parse_statement("create unique index pid on protein (nref_id)").unwrap(),
            Statement::CreateIndex { unique: true, .. }
        ));
        assert!(matches!(
            parse_statement("explain select 1 from t").unwrap(),
            Statement::Explain { analyze: false, .. }
        ));
        assert!(matches!(
            parse_statement("EXPLAIN ANALYZE select 1 from t").unwrap(),
            Statement::Explain { analyze: true, .. }
        ));
        // ANALYZE only has meaning directly after EXPLAIN.
        assert!(parse_statement("analyze select 1 from t").is_err());
    }

    #[test]
    fn script_parsing() {
        let stmts =
            parse_statements("create table t (a int); insert into t values (1); select * from t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(parse_statements("").unwrap().is_empty());
        assert!(parse_statements(";;").unwrap().is_empty());
    }

    #[test]
    fn negative_literals_fold() {
        let s = sel("select -5, -2.5 from t");
        assert_eq!(
            s.items[0],
            SelectItem::Expr {
                expr: Expr::Literal(Value::Int(-5)),
                alias: None
            }
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_statement("select from").is_err());
        assert!(parse_statement("insert t values (1)").is_err());
        assert!(parse_statement("create table t (a unknown_type)").is_err());
        assert!(parse_statement("select 1 from t where").is_err());
        assert!(parse_statement("select 1 extra garbage !").is_err());
    }

    #[test]
    fn parameter_markers_parse_into_exprs() {
        let s = sel("select name from protein where nref_id = $1");
        let Expr::Binary { right, .. } = s.filter.unwrap() else {
            panic!()
        };
        assert_eq!(*right, Expr::Param(0));
        // Anonymous markers number left to right across the statement.
        let s = sel("select 1 from t where a = ? and b between ? and ?");
        assert_eq!(param_count(&Statement::Select(s)), 3);
        // Markers in INSERT rows.
        let st = parse_statement("insert into t (a, b) values ($1, $2)").unwrap();
        assert_eq!(param_count(&st), 2);
    }

    #[test]
    fn qualified_wildcard() {
        let s = sel("select p.* from protein p");
        assert_eq!(s.items[0], SelectItem::QualifiedWildcard("p".into()));
    }

    #[test]
    fn count_star_and_distinct() {
        let s = sel("select count(*), count(distinct a), sum(b) from t");
        assert_eq!(s.items.len(), 3);
        assert!(matches!(
            s.items[0],
            SelectItem::Expr {
                expr: Expr::CountStar,
                ..
            }
        ));
        let SelectItem::Expr {
            expr: Expr::Call { distinct, .. },
            ..
        } = &s.items[1]
        else {
            panic!()
        };
        assert!(distinct);
    }

    #[test]
    fn set_statement() {
        assert_eq!(
            parse_statement("set monitor_enabled = true").unwrap(),
            Statement::Set {
                name: "monitor_enabled".into(),
                value: Value::Bool(true)
            }
        );
    }
}
