//! The SQL lexer.
//!
//! Hand-rolled and allocation-light: identifiers and string literals are the
//! only tokens that allocate. Keywords are recognised case-insensitively but
//! kept as plain uppercase strings in [`Token::Keyword`] so the parser can
//! match on them without a large enum.

use ingot_common::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier (not a keyword), lower-cased.
    Ident(String),
    /// Reserved word, upper-cased.
    Keyword(&'static str),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes removed, `''` unescaped).
    Str(String),
    /// Parameter marker, 1-based: `$3` lexes as `Param(3)`, and each bare
    /// `?` is numbered left to right (`?` … `?` ⇒ `Param(1)`, `Param(2)`).
    Param(u32),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// All reserved words. Everything else lexes as [`Token::Ident`].
const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "AS",
    "JOIN",
    "INNER",
    "ON",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "ASC",
    "DESC",
    "LIMIT",
    "OFFSET",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "CREATE",
    "TABLE",
    "DROP",
    "INDEX",
    "UNIQUE",
    "PRIMARY",
    "KEY",
    "MODIFY",
    "TO",
    "STATISTICS",
    "EXPLAIN",
    "ANALYZE",
    "NULL",
    "TRUE",
    "FALSE",
    "IS",
    "IN",
    "BETWEEN",
    "LIKE",
    "DISTINCT",
];

/// Tokenises an input string.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    /// Count of `?` markers seen so far (each becomes the next `$n`).
    anon_params: u32,
}

impl<'a> Lexer<'a> {
    /// A lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            anon_params: 0,
        }
    }

    /// Tokenise the whole input (with a trailing [`Token::Eof`]).
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::with_capacity(self.src.len() / 4 + 4);
        loop {
            let t = self.next_token()?;
            let done = t == Token::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> u8 {
        if self.pos < self.src.len() {
            self.src[self.pos]
        } else {
            0
        }
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn skip_ws_and_comments(&mut self) -> Result<()> {
        loop {
            while self.peek().is_ascii_whitespace() {
                self.pos += 1;
            }
            // `-- line comment`
            if self.peek() == b'-' && self.src.get(self.pos + 1) == Some(&b'-') {
                while self.pos < self.src.len() && self.peek() != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            // `/* block comment */`
            if self.peek() == b'/' && self.src.get(self.pos + 1) == Some(&b'*') {
                let start = self.pos;
                self.pos += 2;
                loop {
                    if self.pos + 1 >= self.src.len() {
                        return Err(Error::parse(format!(
                            "unterminated comment at byte {start}"
                        )));
                    }
                    if self.peek() == b'*' && self.src[self.pos + 1] == b'/' {
                        self.pos += 2;
                        break;
                    }
                    self.pos += 1;
                }
                continue;
            }
            return Ok(());
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_ws_and_comments()?;
        if self.pos >= self.src.len() {
            return Ok(Token::Eof);
        }
        let start = self.pos;
        let c = self.bump();
        Ok(match c {
            b'(' => Token::LParen,
            b')' => Token::RParen,
            b',' => Token::Comma,
            b'.' => Token::Dot,
            b';' => Token::Semi,
            b'*' => Token::Star,
            b'+' => Token::Plus,
            b'-' => Token::Minus,
            b'/' => Token::Slash,
            b'%' => Token::Percent,
            b'=' => Token::Eq,
            b'<' => match self.peek() {
                b'=' => {
                    self.pos += 1;
                    Token::Le
                }
                b'>' => {
                    self.pos += 1;
                    Token::Neq
                }
                _ => Token::Lt,
            },
            b'>' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    Token::Ge
                } else {
                    Token::Gt
                }
            }
            b'!' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    Token::Neq
                } else {
                    return Err(Error::parse(format!("unexpected '!' at byte {start}")));
                }
            }
            // Anonymous parameter marker: each `?` gets the next ordinal.
            b'?' => {
                self.anon_params += 1;
                Token::Param(self.anon_params)
            }
            b'\'' => {
                let mut s = String::new();
                loop {
                    if self.pos >= self.src.len() {
                        return Err(Error::parse(format!(
                            "unterminated string literal at byte {start}"
                        )));
                    }
                    let ch = self.bump();
                    if ch == b'\'' {
                        if self.peek() == b'\'' {
                            self.pos += 1;
                            s.push('\'');
                        } else {
                            break;
                        }
                    } else {
                        s.push(ch as char);
                    }
                }
                Token::Str(s)
            }
            b'"' => {
                // Double-quoted identifier.
                let mut s = String::new();
                loop {
                    if self.pos >= self.src.len() {
                        return Err(Error::parse(format!(
                            "unterminated quoted identifier at byte {start}"
                        )));
                    }
                    let ch = self.bump();
                    if ch == b'"' {
                        break;
                    }
                    s.push(ch as char);
                }
                Token::Ident(s.to_ascii_lowercase())
            }
            b'0'..=b'9' => {
                while self.peek().is_ascii_digit() {
                    self.pos += 1;
                }
                let mut is_float = false;
                if self.peek() == b'.' && self.src.get(self.pos + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    self.pos += 1;
                    while self.peek().is_ascii_digit() {
                        self.pos += 1;
                    }
                }
                if matches!(self.peek(), b'e' | b'E') {
                    let save = self.pos;
                    self.pos += 1;
                    if matches!(self.peek(), b'+' | b'-') {
                        self.pos += 1;
                    }
                    if self.peek().is_ascii_digit() {
                        is_float = true;
                        while self.peek().is_ascii_digit() {
                            self.pos += 1;
                        }
                    } else {
                        self.pos = save;
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                if is_float {
                    Token::Float(
                        text.parse()
                            .map_err(|_| Error::parse(format!("bad float '{text}'")))?,
                    )
                } else {
                    Token::Int(
                        text.parse()
                            .map_err(|_| Error::parse(format!("bad integer '{text}'")))?,
                    )
                }
            }
            // Explicit parameter marker `$n`. Only a *leading* `$` followed by
            // a digit is a parameter; `$` inside an identifier (`ima$tables`)
            // and `$`-prefixed names (`$sort0`) keep lexing as identifiers.
            b'$' if self.peek().is_ascii_digit() => {
                let num_start = self.pos;
                while self.peek().is_ascii_digit() {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[num_start..self.pos]).unwrap();
                let n: u32 = text
                    .parse()
                    .map_err(|_| Error::parse(format!("bad parameter marker '${text}'")))?;
                if n == 0 {
                    return Err(Error::parse("parameter markers are 1-based; $0 is invalid"));
                }
                Token::Param(n)
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'$' => {
                while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'$') {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                let upper = text.to_ascii_uppercase();
                match KEYWORDS.iter().find(|&&k| k == upper) {
                    Some(&k) => Token::Keyword(k),
                    None => Token::Ident(text.to_ascii_lowercase()),
                }
            }
            other => {
                return Err(Error::parse(format!(
                    "unexpected character '{}' at byte {start}",
                    other as char
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(s: &str) -> Vec<Token> {
        Lexer::new(s).tokenize().unwrap()
    }

    #[test]
    fn keywords_and_idents() {
        let t = lex("SELECT nref_id FROM Protein");
        assert_eq!(
            t,
            vec![
                Token::Keyword("SELECT"),
                Token::Ident("nref_id".into()),
                Token::Keyword("FROM"),
                Token::Ident("protein".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("42")[0], Token::Int(42));
        assert_eq!(lex("3.5")[0], Token::Float(3.5));
        assert_eq!(lex("1e3")[0], Token::Float(1000.0));
        assert_eq!(lex("2.5e-1")[0], Token::Float(0.25));
        // A bare `1e` is an int followed by an ident.
        assert_eq!(lex("1e")[..2], [Token::Int(1), Token::Ident("e".into())]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(lex("'NF001'")[0], Token::Str("NF001".into()));
        assert_eq!(lex("'it''s'")[0], Token::Str("it's".into()));
        assert!(Lexer::new("'open").tokenize().is_err());
    }

    #[test]
    fn operators() {
        let t = lex("a <= b <> c >= d != e");
        assert_eq!(t[1], Token::Le);
        assert_eq!(t[3], Token::Neq);
        assert_eq!(t[5], Token::Ge);
        assert_eq!(t[7], Token::Neq);
    }

    #[test]
    fn comments_are_skipped() {
        let t = lex("select -- everything\n 1 /* or nothing */ ;");
        assert_eq!(
            t,
            vec![
                Token::Keyword("SELECT"),
                Token::Int(1),
                Token::Semi,
                Token::Eof
            ]
        );
        assert!(Lexer::new("/* open").tokenize().is_err());
    }

    #[test]
    fn quoted_identifier() {
        assert_eq!(lex("\"Weird Name\"")[0], Token::Ident("weird name".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Lexer::new("a # b").tokenize().is_err());
        assert!(Lexer::new("a ! b").tokenize().is_err());
    }

    #[test]
    fn parameter_markers() {
        // Explicit `$n` markers keep their ordinal.
        assert_eq!(lex("$1")[0], Token::Param(1));
        assert_eq!(lex("$12")[0], Token::Param(12));
        // Anonymous `?` markers number left to right.
        let t = lex("a = ? and b = ?");
        assert_eq!(t[2], Token::Param(1));
        assert_eq!(t[6], Token::Param(2));
        // `$` stays an identifier character everywhere else.
        assert_eq!(
            lex("ima$statements")[0],
            Token::Ident("ima$statements".into())
        );
        assert_eq!(lex("$sort0")[0], Token::Ident("$sort0".into()));
        assert_eq!(lex("a$1")[0], Token::Ident("a$1".into()));
        // 1-based: `$0` is rejected.
        assert!(Lexer::new("$0").tokenize().is_err());
    }
}
