#![forbid(unsafe_code)]
//! SQL front end: lexer, abstract syntax tree and recursive-descent parser.
//!
//! The dialect covers what the paper's evaluation workloads need — multi-way
//! joins, aggregates, grouping and ordering for the NREF2J/NREF3J analytic
//! queries; parameterised point selects for the 50k/1m tests — plus the
//! Ingres-flavoured administration statements the monitoring/tuning loop
//! relies on: `MODIFY t TO BTREE`, `CREATE STATISTICS`, `CREATE [UNIQUE]
//! INDEX` and `EXPLAIN`.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    param_count, BinOp, ColumnDef, Expr, Join, OrderItem, SelectItem, SelectStmt, Statement,
    TableRef, UnOp,
};
pub use lexer::{Lexer, Token};
pub use parser::{parse_statement, parse_statements, Parser};
