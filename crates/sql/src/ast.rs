//! The abstract syntax tree produced by the parser.

use ingot_common::{DataType, Value};

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT …`
    Select(SelectStmt),
    /// `INSERT INTO t [(cols)] VALUES (…), (…)`
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list, if given.
        columns: Option<Vec<String>>,
        /// One expression list per row.
        rows: Vec<Vec<Expr>>,
    },
    /// `UPDATE t SET c = e, … [WHERE p]`
    Update {
        /// Target table.
        table: String,
        /// Assignments in order.
        sets: Vec<(String, Expr)>,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// `DELETE FROM t [WHERE p]`
    Delete {
        /// Target table.
        table: String,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// `CREATE TABLE t (…)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// Primary-key column names (from inline `PRIMARY KEY` or a trailing
        /// `PRIMARY KEY (…)` clause).
        primary_key: Vec<String>,
    },
    /// `DROP TABLE t`
    DropTable {
        /// Table name.
        name: String,
    },
    /// `CREATE [UNIQUE] INDEX name ON t (cols)`
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column names.
        columns: Vec<String>,
        /// Uniqueness constraint.
        unique: bool,
    },
    /// `DROP INDEX name`
    DropIndex {
        /// Index name.
        name: String,
    },
    /// Ingres `MODIFY t TO BTREE|HEAP`
    Modify {
        /// Table name.
        table: String,
        /// Target structure keyword (validated by the binder).
        to: String,
    },
    /// `CREATE STATISTICS ON t [(cols)]` — the `optimizedb` analogue.
    CreateStatistics {
        /// Table name.
        table: String,
        /// Columns to build histograms for; empty = all.
        columns: Vec<String>,
    },
    /// `EXPLAIN [ANALYZE] <statement>`
    Explain {
        /// `EXPLAIN ANALYZE`: actually execute the plan instrumented and
        /// render estimates alongside actuals.
        analyze: bool,
        /// The explained statement.
        inner: Box<Statement>,
    },
    /// `SET name = literal` (engine knobs).
    Set {
        /// Parameter name.
        name: String,
        /// New value.
        value: Value,
    },
}

/// One column in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// NOT NULL constraint.
    pub not_null: bool,
    /// Inline `PRIMARY KEY` marker.
    pub primary_key: bool,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// `FROM` clause: comma-separated table references, each with its own
    /// `JOIN` chain.
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub filter: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT`.
    pub limit: Option<u64>,
    /// `OFFSET`.
    pub offset: Option<u64>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A base table in `FROM`, with its joined tables.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
    /// `JOIN … ON …` chain hanging off this table.
    pub joins: Vec<Join>,
}

/// One `JOIN` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Joined table name.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
    /// The `ON` predicate.
    pub on: Expr,
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: Expr,
    /// Descending order.
    pub desc: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl BinOp {
    /// True for `= <> < <= > >=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical `NOT`.
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A bind-parameter marker, 0-based (`$1` parses as `Param(0)`). Values
    /// are substituted at execute time by the prepared-statement path.
    Param(usize),
    /// A column reference, optionally qualified.
    Column {
        /// Table or alias qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN lo AND hi`
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] IN (v, …)`
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'` (`%` and `_` wildcards).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// The pattern literal.
        pattern: String,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// A function call — aggregates (`COUNT/SUM/AVG/MIN/MAX`) and scalar
    /// functions (`ABS`, `LENGTH`, …).
    Call {
        /// Function name, lower-cased.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `COUNT(DISTINCT x)` etc.
        distinct: bool,
    },
    /// `COUNT(*)`
    CountStar,
}

impl Expr {
    /// Convenience: column reference without qualifier.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            table: None,
            name: name.to_owned(),
        }
    }

    /// Convenience: integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// Convenience: binary expression.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// Split a conjunctive predicate into its AND-ed factors.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary {
                    op: BinOp::And,
                    left,
                    right,
                } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Highest parameter ordinal referenced in this expression (1-based),
    /// 0 when the expression is parameter-free.
    pub fn max_param(&self) -> usize {
        match self {
            Expr::Param(i) => i + 1,
            Expr::Literal(_) | Expr::Column { .. } | Expr::CountStar => 0,
            Expr::Binary { left, right, .. } => left.max_param().max(right.max_param()),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
                expr.max_param()
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.max_param().max(lo.max_param()).max(hi.max_param())
            }
            Expr::InList { expr, list, .. } => list
                .iter()
                .map(Expr::max_param)
                .fold(expr.max_param(), usize::max),
            Expr::Call { args, .. } => args.iter().map(Expr::max_param).max().unwrap_or(0),
        }
    }

    /// Recombine factors with AND (inverse of [`Expr::conjuncts`]).
    pub fn conjoin(mut factors: Vec<Expr>) -> Option<Expr> {
        let first = if factors.is_empty() {
            return None;
        } else {
            factors.remove(0)
        };
        Some(
            factors
                .into_iter()
                .fold(first, |acc, f| Expr::bin(BinOp::And, acc, f)),
        )
    }
}

/// Number of bind parameters a statement declares: the highest marker
/// ordinal referenced anywhere in it (`$1 … $n` ⇒ `n`). DDL and admin
/// statements never carry parameters.
pub fn param_count(stmt: &Statement) -> usize {
    fn opt(e: &Option<Expr>) -> usize {
        e.as_ref().map_or(0, Expr::max_param)
    }
    match stmt {
        Statement::Select(s) => select_param_count(s),
        Statement::Insert { rows, .. } => rows
            .iter()
            .flatten()
            .map(Expr::max_param)
            .max()
            .unwrap_or(0),
        Statement::Update { sets, filter, .. } => sets
            .iter()
            .map(|(_, e)| e.max_param())
            .max()
            .unwrap_or(0)
            .max(opt(filter)),
        Statement::Delete { filter, .. } => opt(filter),
        Statement::Explain { inner, .. } => param_count(inner),
        Statement::CreateTable { .. }
        | Statement::DropTable { .. }
        | Statement::CreateIndex { .. }
        | Statement::DropIndex { .. }
        | Statement::Modify { .. }
        | Statement::CreateStatistics { .. }
        | Statement::Set { .. } => 0,
    }
}

fn select_param_count(s: &SelectStmt) -> usize {
    let mut n = 0;
    for item in &s.items {
        if let SelectItem::Expr { expr, .. } = item {
            n = n.max(expr.max_param());
        }
    }
    for t in &s.from {
        for j in &t.joins {
            n = n.max(j.on.max_param());
        }
    }
    if let Some(f) = &s.filter {
        n = n.max(f.max_param());
    }
    for g in &s.group_by {
        n = n.max(g.max_param());
    }
    if let Some(h) = &s.having {
        n = n.max(h.max_param());
    }
    for o in &s.order_by {
        n = n.max(o.expr.max_param());
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::And, Expr::col("a"), Expr::col("b")),
            Expr::bin(BinOp::Or, Expr::col("c"), Expr::col("d")),
        );
        let c = e.conjuncts();
        assert_eq!(c.len(), 3);
        assert_eq!(c[0], &Expr::col("a"));
        // OR factor stays intact.
        assert!(matches!(c[2], Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn conjoin_roundtrip() {
        let parts = vec![Expr::col("a"), Expr::col("b"), Expr::col("c")];
        let joined = Expr::conjoin(parts).unwrap();
        assert_eq!(joined.conjuncts().len(), 3);
        assert!(Expr::conjoin(vec![]).is_none());
    }

    #[test]
    fn param_count_takes_highest_ordinal() {
        use crate::parser::parse_statement;
        let s = parse_statement("select a from t where a = $2 and b = $1").unwrap();
        assert_eq!(param_count(&s), 2);
        let s = parse_statement("select a from t where a between ? and ?").unwrap();
        assert_eq!(param_count(&s), 2);
        let s = parse_statement("insert into t values ($1, $3)").unwrap();
        assert_eq!(param_count(&s), 3);
        let s = parse_statement("update t set a = $1 where b = $2").unwrap();
        assert_eq!(param_count(&s), 2);
        let s = parse_statement("delete from t where a = ?").unwrap();
        assert_eq!(param_count(&s), 1);
        let s = parse_statement("select a from t").unwrap();
        assert_eq!(param_count(&s), 0);
        let s = parse_statement("create table t (a int)").unwrap();
        assert_eq!(param_count(&s), 0);
    }
}
