//! The three statement sets of §V-A and the manual reference index set.

use crate::generator::NrefConfig;

/// The NREF2J/NREF3J-style analytic set: 50 expensive statements mixing
/// two-way and three-way joins, aggregates, range predicates and pattern
/// matches — "expensive joins and many full table scans".
///
/// Parameters are derived deterministically from the scale (`proteins`,
/// `taxa`) so every run sees the same workload.
pub fn analytic_queries(config: &NrefConfig) -> Vec<String> {
    let p = config.proteins;
    let _ = config.taxa;
    let id = |i: u64| NrefConfig::nref_id(i % p);
    let mut q = Vec::with_capacity(50);

    // -- NREF2J-style: two-way joins (25 statements) --------------------------
    for k in 0..5u64 {
        // Single-protein detail lookup (protein ⋈ organism): the NREF2J
        // "show everything about this protein" shape.
        q.push(format!(
            "select p.name, p.len, o.taxon_id, o.organism_name \
             from protein p join organism o on p.nref_id = o.nref_id \
             where p.nref_id = '{}'",
            id(k * 379 + 23)
        ));
        // Length statistics per taxon (protein ⋈ organism, grouped).
        q.push(format!(
            "select o.taxon_id, count(*) as n, avg(p.len) as avg_len \
             from protein p join organism o on p.nref_id = o.nref_id \
             where p.len between {} and {} \
             group by o.taxon_id having count(*) > 1 order by n desc limit 20",
            10 + k * 4,
            60 + k * 6
        ));
        // Similarity edges with scores (protein ⋈ neighboring_seq).
        q.push(format!(
            "select p.nref_id, n.neighbor_id, n.score \
             from protein p join neighboring_seq n on p.nref_id = n.nref_id \
             where n.score > {} and p.len < {} order by n.score desc limit 50",
            55.0 + k as f64 * 7.5,
            70 + k * 4
        ));
        // Selective accession lookup (protein ⋈ source): the classic
        // NREF2J "find the protein behind this accession" shape.
        q.push(format!(
            "select p.nref_id, p.name, p.mol_weight from protein p \
             join source s on p.nref_id = s.nref_id \
             where s.accession = 'ACC{:07}0'",
            (k * 131 + 17) % p
        ));
        // Feature annotations of one protein (protein ⋈ seq_feature).
        q.push(format!(
            "select f.feature, f.position, f.flength, p.len \
             from protein p join seq_feature f on p.nref_id = f.nref_id \
             where p.nref_id = '{}' order by f.position",
            id(k * 547 + 101)
        ));
    }

    // -- NREF3J-style: three-way joins (15 statements) -------------------------
    for k in 0..5u64 {
        // Lineage rollup (protein ⋈ organism ⋈ taxonomy).
        q.push(format!(
            "select t.scientific_name, count(*) as n \
             from protein p \
             join organism o on p.nref_id = o.nref_id \
             join taxonomy t on o.taxon_id = t.taxon_id \
             where p.len > {} and t.rank_level <= {} \
             group by t.scientific_name order by n desc limit 25",
            30 + k * 5,
            2 + k
        ));
        // Neighbours within a lineage (organism ⋈ taxonomy ⋈ neighboring_seq).
        q.push(format!(
            "select o.taxon_id, avg(n.score) as s, count(*) \
             from organism o \
             join taxonomy t on o.taxon_id = t.taxon_id \
             join neighboring_seq n on o.nref_id = n.nref_id \
             where t.lineage like '{}%' group by o.taxon_id order by s desc",
            [
                "Bacteria",
                "Archaea",
                "Eukaryota",
                "Viruses",
                "Bacteria;clade1"
            ][k as usize % 5]
        ));
        // Source coverage per taxon (protein ⋈ organism ⋈ source).
        q.push(format!(
            "select o.taxon_id, count(distinct s.source_db) as dbs \
             from protein p \
             join organism o on p.nref_id = o.nref_id \
             join source s on p.nref_id = s.nref_id \
             where p.mol_weight > {} group by o.taxon_id \
             order by dbs desc, o.taxon_id limit 30",
            2000.0 + k as f64 * 450.0
        ));
    }

    // -- heavy scans / sorts (10 statements) ------------------------------------
    for k in 0..5u64 {
        q.push(format!(
            "select nref_id, len, mol_weight from protein \
             where sequence like '%{}%' order by len desc limit 40",
            ["ACDE", "KLMN", "PQRS", "TVWY", "GHIK"][k as usize % 5]
        ));
        // Narrow primary-key range with a join: keyed structures and an
        // nref_id index turn this from a double scan into a probe.
        q.push(format!(
            "select p.nref_id, p.len, n.neighbor_id, n.score \
             from protein p join neighboring_seq n on p.nref_id = n.nref_id \
             where p.nref_id between '{}' and '{}' order by p.nref_id, n.score desc",
            id(k * 211 + 5),
            id(k * 211 + 12)
        ));
    }

    debug_assert_eq!(q.len(), 50);
    q
}

/// The 50 k-test statement for parameter `i`: a simple two-table join whose
/// WHERE clause cycles through distinct ids, "forcing the monitor to log
/// each statement as a new one".
pub fn simple_join_statement(config: &NrefConfig, i: u64) -> String {
    format!(
        "select p.nref_id, sequence, ordinal from protein p \
         join organism o on p.nref_id = o.nref_id where p.nref_id = '{}'",
        NrefConfig::nref_id(i % config.proteins)
    )
}

/// Iterator over `n` simple-join statements (the 50k test).
pub fn simple_join_statements(config: &NrefConfig, n: u64) -> impl Iterator<Item = String> + '_ {
    (0..n).map(move |i| simple_join_statement(config, i))
}

/// The 1m-test statement for parameter `i`: the cheapest possible select.
pub fn point_select_statement(config: &NrefConfig, i: u64) -> String {
    format!(
        "select p.nref_id from protein p where p.nref_id = '{}'",
        NrefConfig::nref_id(i % config.proteins)
    )
}

/// Iterator over `n` point selects (the 1m test).
pub fn point_select_statements(config: &NrefConfig, n: u64) -> impl Iterator<Item = String> + '_ {
    (0..n).map(move |i| point_select_statement(config, i))
}

/// The manual-optimization baseline: a deliberately over-complete reference
/// index set (the analogue of "a set of 33 reference indexes recommended by
/// \[17\]"). One index per key, foreign key and filter column, plus composite
/// variants a diligent DBA might add.
pub fn reference_indexes() -> Vec<String> {
    [
        // protein
        "create index ref_protein_id on protein (nref_id)",
        "create index ref_protein_len on protein (len)",
        "create index ref_protein_weight on protein (mol_weight)",
        "create index ref_protein_name on protein (name)",
        "create index ref_protein_id_len on protein (nref_id, len)",
        // organism
        "create index ref_organism_id on organism (nref_id)",
        "create index ref_organism_taxon on organism (taxon_id)",
        "create index ref_organism_taxon_id on organism (taxon_id, nref_id)",
        "create index ref_organism_ord on organism (ordinal)",
        // taxonomy
        "create index ref_taxonomy_id on taxonomy (taxon_id)",
        "create index ref_taxonomy_rank on taxonomy (rank_level)",
        "create index ref_taxonomy_name on taxonomy (scientific_name)",
        // source
        "create index ref_source_id on source (nref_id)",
        "create index ref_source_db on source (source_db)",
        "create index ref_source_acc on source (accession)",
        "create index ref_source_db_id on source (source_db, nref_id)",
        // neighboring_seq
        "create index ref_neighbor_id on neighboring_seq (nref_id)",
        "create index ref_neighbor_nb on neighboring_seq (neighbor_id)",
        "create index ref_neighbor_score on neighboring_seq (score)",
        "create index ref_neighbor_method on neighboring_seq (method)",
        // seq_feature
        "create index ref_feature_id on seq_feature (nref_id)",
        "create index ref_feature_kind on seq_feature (feature)",
        "create index ref_feature_pos on seq_feature (position)",
    ]
    .into_iter()
    .map(str::to_owned)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::load_nref;
    use ingot_common::EngineConfig;
    use ingot_core::Engine;

    #[test]
    fn fifty_distinct_analytic_queries() {
        let cfg = NrefConfig::default();
        let q = analytic_queries(&cfg);
        assert_eq!(q.len(), 50);
        let distinct: std::collections::HashSet<&String> = q.iter().collect();
        assert_eq!(distinct.len(), 50, "queries must be distinct");
    }

    #[test]
    fn all_statements_parse_and_execute() {
        let cfg = NrefConfig {
            proteins: 300,
            taxa: 12,
            ..Default::default()
        };
        let engine = Engine::builder()
            .config(EngineConfig::original())
            .build()
            .unwrap();
        load_nref(&engine, &cfg).unwrap();
        let session = engine.open_session();
        for (i, q) in analytic_queries(&cfg).iter().enumerate() {
            session
                .execute(q)
                .unwrap_or_else(|e| panic!("query {i} failed: {e}\n{q}"));
        }
        for q in simple_join_statements(&cfg, 5) {
            let r = session.execute(&q).unwrap();
            assert!(!r.rows.is_empty(), "join should match: {q}");
        }
        for q in point_select_statements(&cfg, 5) {
            let r = session.execute(&q).unwrap();
            assert_eq!(r.rows.len(), 1, "{q}");
        }
    }

    #[test]
    fn parameterised_statements_cycle_distinct_ids() {
        let cfg = NrefConfig {
            proteins: 100,
            ..Default::default()
        };
        let a = simple_join_statement(&cfg, 1);
        let b = simple_join_statement(&cfg, 2);
        let wrap = simple_join_statement(&cfg, 101);
        assert_ne!(a, b);
        assert_eq!(a, wrap, "parameters wrap at the protein count");
    }

    #[test]
    fn reference_indexes_apply() {
        let cfg = NrefConfig {
            proteins: 200,
            taxa: 10,
            ..Default::default()
        };
        let engine = Engine::builder()
            .config(EngineConfig::original())
            .build()
            .unwrap();
        load_nref(&engine, &cfg).unwrap();
        let session = engine.open_session();
        // A diligent DBA collects statistics along with the index set.
        session.execute("create statistics on protein").unwrap();
        for ddl in reference_indexes() {
            session.execute(&ddl).unwrap();
        }
        // Point query now runs through an index.
        let r = session
            .execute("explain select len from protein where nref_id = 'NF00000005'")
            .unwrap();
        let text: String = r
            .rows
            .iter()
            .map(|row| row.get(0).as_str().unwrap().to_owned())
            .collect();
        assert!(text.contains("IndexScan"), "{text}");
    }
}
