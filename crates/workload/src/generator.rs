//! Deterministic NREF-like data generation and bulk loading.

use std::sync::Arc;

use ingot_common::{Result, Row, Value};
use ingot_core::Engine;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct NrefConfig {
    /// Number of proteins (drives all other table sizes).
    pub proteins: u64,
    /// Number of distinct taxa.
    pub taxa: u64,
    /// RNG seed (fixed default for reproducibility).
    pub seed: u64,
    /// Mean synthetic sequence length in characters.
    pub sequence_len: usize,
}

impl Default for NrefConfig {
    fn default() -> Self {
        NrefConfig {
            proteins: 10_000,
            taxa: 200,
            seed: 0x19e5_2009,
            sequence_len: 48,
        }
    }
}

impl NrefConfig {
    /// A config sized by a scale factor (1.0 → 10 k proteins).
    pub fn scaled(scale: f64) -> Self {
        let base = Self::default();
        NrefConfig {
            proteins: ((base.proteins as f64 * scale) as u64).max(100),
            taxa: ((base.taxa as f64 * scale.sqrt()) as u64).max(10),
            ..base
        }
    }

    /// The canonical NREF id of protein `i`.
    pub fn nref_id(i: u64) -> String {
        format!("NF{i:08}")
    }
}

/// Row counts produced by a load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NrefStats {
    /// Rows in `protein`.
    pub proteins: u64,
    /// Rows in `organism`.
    pub organisms: u64,
    /// Rows in `taxonomy`.
    pub taxa: u64,
    /// Rows in `source`.
    pub sources: u64,
    /// Rows in `neighboring_seq`.
    pub neighbors: u64,
    /// Rows in `seq_feature`.
    pub features: u64,
}

impl NrefStats {
    /// Total rows across the six tables.
    pub fn total(&self) -> u64 {
        self.proteins + self.organisms + self.taxa + self.sources + self.neighbors + self.features
    }
}

/// DDL for the six NREF-like tables (all default HEAP, primary keys
/// declared but unenforced until `MODIFY … TO BTREE`, like Ingres).
pub fn nref_schema_ddl() -> Vec<&'static str> {
    vec![
        "create table protein (nref_id text not null primary key, name text, len int, \
         mol_weight float, sequence text)",
        "create table organism (nref_id text not null, taxon_id int, ordinal int, \
         organism_name text, primary key (nref_id, taxon_id))",
        "create table taxonomy (taxon_id int not null primary key, scientific_name text, \
         lineage text, rank_level int)",
        "create table source (nref_id text not null, source_db text, accession text, \
         entry_name text, primary key (nref_id, accession))",
        "create table neighboring_seq (nref_id text not null, neighbor_id text, \
         score float, method text, primary key (nref_id, neighbor_id))",
        "create table seq_feature (nref_id text not null, feature text, position int, \
         flength int, primary key (nref_id, position))",
    ]
}

const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
const SOURCE_DBS: &[&str] = &["swissprot", "trembl", "pir", "pdb", "genpept"];
const METHODS: &[&str] = &["blastp", "psiblast", "fasta"];
const FEATURES: &[&str] = &["helix", "strand", "turn", "domain", "binding", "signal"];
const RANKS: &[&str] = &[
    "species", "genus", "family", "order", "class", "phylum", "kingdom",
];

fn sequence(rng: &mut SmallRng, mean_len: usize) -> String {
    let len = rng.gen_range(mean_len / 2..=mean_len * 3 / 2).max(4);
    (0..len)
        .map(|_| AMINO[rng.gen_range(0..AMINO.len())] as char)
        .collect()
}

fn lineage(rng: &mut SmallRng, taxon: u64) -> String {
    let kingdoms = ["Bacteria", "Archaea", "Eukaryota", "Viruses"];
    format!(
        "{};clade{};family{};genus{}",
        kingdoms[(taxon % 4) as usize],
        rng.gen_range(0..40),
        taxon / 10,
        taxon
    )
}

/// Load the NREF-like database into `engine` through the bulk path (direct
/// catalog inserts — the analogue of Ingres' `copy`, bypassing the SQL layer
/// so the *measured* workloads stay the statements of §V, not the load).
pub fn load_nref(engine: &Arc<Engine>, config: &NrefConfig) -> Result<NrefStats> {
    // Schema via SQL (cheap, and keeps DDL on the monitored path like a real
    // setup would).
    {
        let session = engine.open_session();
        for ddl in nref_schema_ddl() {
            session.execute(ddl)?;
        }
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut stats = NrefStats::default();
    // Bulk load through a snapshot: inserts are `&self` on the shared table
    // handles, and nothing else writes these freshly created tables.
    let catalog = engine.catalog().read();
    let t_protein = catalog.resolve_table("protein")?;
    let t_organism = catalog.resolve_table("organism")?;
    let t_taxonomy = catalog.resolve_table("taxonomy")?;
    let t_source = catalog.resolve_table("source")?;
    let t_neighbor = catalog.resolve_table("neighboring_seq")?;
    let t_feature = catalog.resolve_table("seq_feature")?;

    // taxonomy
    for taxon in 0..config.taxa {
        let lin = lineage(&mut rng, taxon);
        catalog.insert_row(
            t_taxonomy,
            &Row::new(vec![
                Value::Int(taxon as i64),
                Value::Str(format!("Taxon {taxon}")),
                Value::Str(lin),
                Value::Int(RANKS.len() as i64 - 1 - (taxon % RANKS.len() as u64) as i64),
            ]),
        )?;
        stats.taxa += 1;
    }

    for i in 0..config.proteins {
        let id = NrefConfig::nref_id(i);
        let seq = sequence(&mut rng, config.sequence_len);
        // Skewed length distribution (Zipf-ish) so histograms matter.
        let len = seq.len() as i64;
        catalog.insert_row(
            t_protein,
            &Row::new(vec![
                Value::Str(id.clone()),
                Value::Str(format!("protein {i} ({})", FEATURES[(i % 6) as usize])),
                Value::Int(len),
                Value::Float(len as f64 * 110.4 + rng.gen_range(-50.0..50.0)),
                Value::Str(seq),
            ]),
        )?;
        stats.proteins += 1;

        // organism: every protein has one primary taxon; ~20 % have a second.
        // Taxon choice is skewed: low taxon ids are far more common.
        let n_orgs = 1 + u64::from(rng.gen_bool(0.2));
        let mut prev_taxon = u64::MAX;
        for ord in 0..n_orgs {
            let r: f64 = rng.gen::<f64>();
            let taxon = ((r * r) * config.taxa as f64) as u64 % config.taxa;
            if taxon == prev_taxon {
                continue;
            }
            prev_taxon = taxon;
            catalog.insert_row(
                t_organism,
                &Row::new(vec![
                    Value::Str(id.clone()),
                    Value::Int(taxon as i64),
                    Value::Int(ord as i64),
                    Value::Str(format!("Taxon {taxon}")),
                ]),
            )?;
            stats.organisms += 1;
        }

        // source: 1–2 accessions.
        let n_src = 1 + u64::from(rng.gen_bool(0.5));
        for s in 0..n_src {
            catalog.insert_row(
                t_source,
                &Row::new(vec![
                    Value::Str(id.clone()),
                    Value::Str(SOURCE_DBS[rng.gen_range(0..SOURCE_DBS.len())].to_owned()),
                    Value::Str(format!("ACC{i:07}{s}")),
                    Value::Str(format!("ENTRY_{i}_{s}")),
                ]),
            )?;
            stats.sources += 1;
        }

        // neighboring_seq: two similarity edges to nearby proteins. Heap
        // tables do not enforce the declared key at insert time (like Ingres
        // heaps), so duplicates are weeded out here to keep a later
        // `MODIFY … TO BTREE` rebuild valid.
        let mut neighbors: [u64; 2] = [u64::MAX; 2];
        for slot in 0..2usize {
            let span = config.proteins.clamp(2, 1000);
            let neighbor = (i + rng.gen_range(1..span)) % config.proteins;
            if neighbor == i || neighbors[..slot].contains(&neighbor) {
                continue;
            }
            neighbors[slot] = neighbor;
            catalog.insert_row(
                t_neighbor,
                &Row::new(vec![
                    Value::Str(id.clone()),
                    Value::Str(NrefConfig::nref_id(neighbor)),
                    Value::Float(rng.gen_range(20.0..100.0)),
                    Value::Str(METHODS[rng.gen_range(0..METHODS.len())].to_owned()),
                ]),
            )?;
            stats.neighbors += 1;
        }

        // seq_feature: one annotated region.
        catalog.insert_row(
            t_feature,
            &Row::new(vec![
                Value::Str(id.clone()),
                Value::Str(FEATURES[rng.gen_range(0..FEATURES.len())].to_owned()),
                Value::Int(rng.gen_range(0..len.max(1))),
                Value::Int(rng.gen_range(1..=len.max(1))),
            ]),
        )?;
        stats.features += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_common::EngineConfig;

    #[test]
    fn load_is_deterministic_and_shaped() {
        let cfg = NrefConfig {
            proteins: 500,
            taxa: 20,
            ..Default::default()
        };
        let e1 = Engine::builder()
            .config(EngineConfig::original())
            .build()
            .unwrap();
        let s1 = load_nref(&e1, &cfg).unwrap();
        let e2 = Engine::builder()
            .config(EngineConfig::original())
            .build()
            .unwrap();
        let s2 = load_nref(&e2, &cfg).unwrap();
        assert_eq!(s1, s2, "same seed ⇒ same data");
        assert_eq!(s1.proteins, 500);
        assert_eq!(s1.taxa, 20);
        assert!(s1.organisms >= 500);
        assert!(s1.total() > 2500);
        // Spot-check through SQL.
        let session = e1.open_session();
        let r = session.execute("select count(*) from protein").unwrap();
        assert_eq!(r.rows[0].get(0), &Value::Int(500));
        let r = session
            .execute("select len from protein where nref_id = 'NF00000042'")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn organism_taxa_are_skewed() {
        let cfg = NrefConfig {
            proteins: 2000,
            taxa: 100,
            ..Default::default()
        };
        let e = Engine::builder()
            .config(EngineConfig::original())
            .build()
            .unwrap();
        load_nref(&e, &cfg).unwrap();
        let session = e.open_session();
        let r = session
            .execute("select count(*) from organism where taxon_id < 20")
            .unwrap();
        let low = r.rows[0].get(0).as_int().unwrap();
        let r = session
            .execute("select count(*) from organism where taxon_id >= 80")
            .unwrap();
        let high = r.rows[0].get(0).as_int().unwrap();
        assert!(
            low > high * 2,
            "low taxa should dominate (low={low}, high={high})"
        );
    }

    #[test]
    fn ids_are_sortable_and_unique() {
        assert_eq!(NrefConfig::nref_id(1), "NF00000001");
        assert!(NrefConfig::nref_id(9) < NrefConfig::nref_id(10));
    }
}
