#![forbid(unsafe_code)]
//! The evaluation workload: an NREF-like protein database and the three
//! statement sets of the paper's §V.
//!
//! The paper evaluates against the Non-Redundant Reference Protein (NREF)
//! database "consisting of six tables filled with a total of 100 millions of
//! rows of real, non-synthetic data" (per Consens et al. \[17\]). We regenerate
//! the same *shape* synthetically and deterministically at a configurable
//! scale factor:
//!
//! | table            | rows (×scale)     | role |
//! |------------------|-------------------|------|
//! | `protein`        | 1 × proteins      | id, name, length, weight, sequence |
//! | `organism`       | ~1.2 × proteins   | protein → taxon mapping |
//! | `taxonomy`       | distinct taxa     | lineage strings |
//! | `source`         | ~1.5 × proteins   | external accessions |
//! | `neighboring_seq`| 2 × proteins      | similarity edges |
//! | `seq_feature`    | 1 × proteins      | annotated subsequences |
//!
//! The three test workloads of §V-A:
//! * [`analytic_queries`] — the NREF2J/NREF3J-style set: 50 expensive
//!   multi-join/aggregate statements ("stress the database with expensive
//!   joins and many full table scans");
//! * [`simple_join_statements`] — `select p.nref_id, sequence, ordinal from
//!   protein p join organism o … where p.nref_id = ?` cycling distinct ids
//!   (the 50k test);
//! * [`point_select_statements`] — `select nref_id from protein where
//!   nref_id = ?` (the 1m test).
//!
//! [`reference_indexes`] is the analogue of the paper's "set of 33 reference
//! indexes recommended by \[17\]" used as the manual-optimization baseline.

pub mod generator;
pub mod queries;

pub use generator::{load_nref, nref_schema_ddl, NrefConfig, NrefStats};
pub use queries::{
    analytic_queries, point_select_statement, point_select_statements, reference_indexes,
    simple_join_statement, simple_join_statements,
};
