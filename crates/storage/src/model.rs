//! The disk model: I/O accounting and simulated latency.
//!
//! The paper evaluates against a database "significantly larger than the
//! system's main memory" on a 2009 hard disk. We reproduce that regime
//! deterministically: every physical page access that misses the buffer pool
//! is counted here and charged to the shared [`SimClock`] with a latency that
//! distinguishes sequential from random reads. Experiments that reason about
//! I/O volume (Fig 6, Fig 7) read these counters; experiments about
//! wall-clock overhead (Fig 4, Fig 5) use real time and merely *also* record
//! the counters.

use std::sync::atomic::{AtomicU64, Ordering};

use ingot_common::{EngineConfig, SimClock};
use parking_lot::Mutex;

use crate::disk::FileId;

/// Snapshot of cumulative I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Physical page reads that the model classified as sequential.
    pub seq_reads: u64,
    /// Physical page reads classified as random.
    pub rand_reads: u64,
    /// Physical page writes.
    pub writes: u64,
    /// Total simulated latency charged, in nanoseconds.
    pub sim_latency_ns: u64,
}

impl IoStats {
    /// All physical reads.
    pub fn reads(&self) -> u64 {
        self.seq_reads + self.rand_reads
    }

    /// Reads + writes.
    pub fn total(&self) -> u64 {
        self.reads() + self.writes
    }

    /// Component-wise difference (for per-query deltas).
    pub fn delta_since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            seq_reads: self.seq_reads - earlier.seq_reads,
            rand_reads: self.rand_reads - earlier.rand_reads,
            writes: self.writes - earlier.writes,
            sim_latency_ns: self.sim_latency_ns - earlier.sim_latency_ns,
        }
    }
}

/// Prices physical I/O and advances the simulated clock.
pub struct DiskModel {
    clock: SimClock,
    seq_reads: AtomicU64,
    rand_reads: AtomicU64,
    writes: AtomicU64,
    sim_latency_ns: AtomicU64,
    random_read_ns: u64,
    seq_read_ns: u64,
    write_ns: u64,
    /// Last page read per file, to classify sequential access.
    last_read: Mutex<std::collections::HashMap<FileId, u64>>,
}

impl DiskModel {
    /// Build a model from the engine configuration.
    pub fn new(config: &EngineConfig, clock: SimClock) -> Self {
        DiskModel {
            clock,
            seq_reads: AtomicU64::new(0),
            rand_reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            sim_latency_ns: AtomicU64::new(0),
            random_read_ns: config.disk_random_read_ns,
            seq_read_ns: config.disk_seq_read_ns,
            write_ns: config.disk_write_ns,
            last_read: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// The simulated clock shared with the rest of the engine.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Record a physical read of `(file, page_no)`; classifies it as
    /// sequential when it directly follows the previous read of that file.
    pub fn record_read(&self, file: FileId, page_no: u64) {
        let sequential = {
            let mut last = self.last_read.lock();
            let seq = last.get(&file).is_some_and(|&p| p + 1 == page_no);
            last.insert(file, page_no);
            seq
        };
        let latency = if sequential {
            self.seq_reads.fetch_add(1, Ordering::Relaxed);
            self.seq_read_ns
        } else {
            self.rand_reads.fetch_add(1, Ordering::Relaxed);
            self.random_read_ns
        };
        self.sim_latency_ns.fetch_add(latency, Ordering::Relaxed);
        self.clock.advance_nanos(latency);
    }

    /// Record a physical page write.
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.sim_latency_ns
            .fetch_add(self.write_ns, Ordering::Relaxed);
        self.clock.advance_nanos(self.write_ns);
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> IoStats {
        IoStats {
            seq_reads: self.seq_reads.load(Ordering::Relaxed),
            rand_reads: self.rand_reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            sim_latency_ns: self.sim_latency_ns.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DiskModel {
        DiskModel::new(&EngineConfig::default(), SimClock::new())
    }

    #[test]
    fn sequential_classification() {
        let m = model();
        m.record_read(FileId(0), 0); // first read of a file: random
        m.record_read(FileId(0), 1); // sequential
        m.record_read(FileId(0), 2); // sequential
        m.record_read(FileId(0), 9); // jump: random
        let s = m.stats();
        assert_eq!(s.seq_reads, 2);
        assert_eq!(s.rand_reads, 2);
    }

    #[test]
    fn per_file_sequences_are_independent() {
        let m = model();
        m.record_read(FileId(0), 0);
        m.record_read(FileId(1), 0);
        m.record_read(FileId(0), 1); // still sequential for file 0
        assert_eq!(m.stats().seq_reads, 1);
    }

    #[test]
    fn latency_advances_sim_clock() {
        let m = model();
        let before = m.clock().now_nanos();
        m.record_read(FileId(0), 5);
        m.record_write();
        let s = m.stats();
        assert_eq!(s.writes, 1);
        assert!(m.clock().now_nanos() - before == s.sim_latency_ns);
    }

    #[test]
    fn delta_since() {
        let m = model();
        m.record_read(FileId(0), 0);
        let a = m.stats();
        m.record_write();
        let d = m.stats().delta_since(&a);
        assert_eq!(d.reads(), 0);
        assert_eq!(d.writes, 1);
    }
}
