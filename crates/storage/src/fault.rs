//! Deterministic fault injection for disk backends.
//!
//! [`FaultInjectingBackend`] wraps any [`DiskBackend`] and injects failures
//! according to a scriptable, seeded [`FaultPlan`]: transient or permanent
//! I/O errors, torn (partial) page writes and read corruption, each targeted
//! at the *n*-th operation of a kind. Plans are fully deterministic — the
//! same plan over the same operation sequence injects the same faults — so
//! robustness tests (daemon retry/backoff, workload-DB recovery) are exact
//! and replayable.
//!
//! ## Fault-plan grammar
//!
//! A plan is a `;`-separated list of rules:
//!
//! ```text
//! rule   := op '#' range '=' effect
//! op     := read | write | alloc | sync | wal_append | wal_fsync | wal_truncate
//! range  := N | N..M | N.. | '*'          (1-based op index, inclusive)
//! effect := transient | permanent | torn[:BYTES] | corrupt | crash
//! ```
//!
//! Example: `write#3..5=transient; write#9=torn:512; read#2=corrupt` fails
//! the 3rd–5th writes with retryable errors, silently truncates the 9th
//! write to its first 512 bytes (the rest becomes seeded garbage, like a
//! power cut mid-sector), and corrupts the 2nd read.
//!
//! The `wal_*` operations target the write-ahead log (see
//! [`crate::wal::Wal::set_fault_plan`]) and combine with the `crash` effect
//! into the scripted power-cut points the crash suite replays:
//!
//! * `wal_append#N=crash` — power cut right after the *N*-th record is
//!   handed to the OS: everything not yet fsynced is lost
//!   (`crash_after_wal_append`).
//! * `wal_fsync#N=crash` — power cut mid-fsync: the barrier fails and the
//!   unsynced tail is lost (`crash_mid_fsync`).
//! * `wal_append#N=torn:K` — power cut mid-write: the first `K` bytes of
//!   the in-flight record survive as a torn tail (`torn_wal_tail`).
//! * `wal_truncate#N=crash` — power cut during post-checkpoint log
//!   truncation (`crash_during_checkpoint_truncate`).
//!
//! After any WAL crash effect fires, the log is *dead*: every later WAL
//! operation fails until the simulated machine reboots (a new engine reopens
//! the directory and replays).
//!
//! `torn` is meaningful for writes and `corrupt` for reads; either effect on
//! another operation kind degrades to a transient error so a malformed plan
//! still fails loudly rather than silently passing. `crash` on a page-level
//! operation likewise degrades to a transient error.

use std::sync::atomic::{AtomicU64, Ordering};

use ingot_common::retry::SplitMix64;
use ingot_common::{Error, Result};
use parking_lot::Mutex;

use crate::disk::{DiskBackend, FileId};
use crate::page::{Page, PAGE_SIZE};

/// The operation kinds a fault rule can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// `read_page`.
    Read,
    /// `write_page`.
    Write,
    /// `allocate_page`.
    Alloc,
    /// `sync` / `checkpoint`.
    Sync,
    /// A WAL record append (see [`crate::wal::Wal`]).
    WalAppend,
    /// A WAL fsync (the commit durability barrier).
    WalFsync,
    /// A WAL truncation (the post-checkpoint log rewrite).
    WalTruncate,
}

impl FaultOp {
    fn parse(s: &str) -> Result<Self> {
        match s {
            "read" => Ok(FaultOp::Read),
            "write" => Ok(FaultOp::Write),
            "alloc" => Ok(FaultOp::Alloc),
            "sync" => Ok(FaultOp::Sync),
            "wal_append" => Ok(FaultOp::WalAppend),
            "wal_fsync" => Ok(FaultOp::WalFsync),
            "wal_truncate" => Ok(FaultOp::WalTruncate),
            other => Err(Error::storage(format!("fault plan: unknown op {other:?}"))),
        }
    }
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEffect {
    /// Retryable failure ([`Error::TransientIo`]); the operation is not
    /// performed but a later retry will succeed (unless covered by a rule).
    Transient,
    /// Permanent failure ([`Error::Io`]); retrying is expected to keep
    /// failing, so callers should quarantine.
    Permanent,
    /// A torn write: only the first `N` bytes reach the backend, the rest of
    /// the page becomes deterministic garbage — and the call reports
    /// *success*, like a real power-cut write. Detected only by recovery.
    Torn(usize),
    /// Read corruption: the page is returned with seeded bit flips.
    Corrupt,
    /// Simulated power cut at a WAL operation: the unsynced log tail is
    /// lost, the operation fails, and every later WAL operation keeps
    /// failing until the log is reopened ("reboot"). On page-level
    /// operations this degrades to a transient error.
    Crash,
}

/// One rule: inject `effect` on operations `from..=to` (1-based) of kind `op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// Operation kind the rule targets.
    pub op: FaultOp,
    /// First 1-based operation index the rule covers.
    pub from: u64,
    /// Last covered index (inclusive); `u64::MAX` for open-ended ranges.
    pub to: u64,
    /// Injected effect.
    pub effect: FaultEffect,
}

/// A scriptable fault plan: an ordered rule list plus the seed for torn/
/// corrupt garbage bytes. The first matching rule wins.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    /// Seed for deterministic garbage generation.
    pub seed: u64,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse the fault-plan grammar (see module docs).
    pub fn parse(plan: &str) -> Result<Self> {
        let mut out = FaultPlan::new();
        for rule in plan.split(';') {
            let rule = rule.trim();
            if rule.is_empty() {
                continue;
            }
            let (lhs, effect) = rule
                .split_once('=')
                .ok_or_else(|| Error::storage(format!("fault plan: missing '=' in {rule:?}")))?;
            let (op, range) = lhs
                .trim()
                .split_once('#')
                .ok_or_else(|| Error::storage(format!("fault plan: missing '#' in {rule:?}")))?;
            let op = FaultOp::parse(op.trim())?;
            let (from, to) = Self::parse_range(range.trim())?;
            let effect = Self::parse_effect(effect.trim())?;
            out.rules.push(FaultRule {
                op,
                from,
                to,
                effect,
            });
        }
        Ok(out)
    }

    fn parse_range(range: &str) -> Result<(u64, u64)> {
        if range == "*" {
            return Ok((1, u64::MAX));
        }
        let bad = || Error::storage(format!("fault plan: bad range {range:?}"));
        if let Some((a, b)) = range.split_once("..") {
            let from: u64 = a.trim().parse().map_err(|_| bad())?;
            let to = if b.trim().is_empty() {
                u64::MAX
            } else {
                b.trim().parse().map_err(|_| bad())?
            };
            if from == 0 || to < from {
                return Err(bad());
            }
            Ok((from, to))
        } else {
            let n: u64 = range.parse().map_err(|_| bad())?;
            if n == 0 {
                return Err(bad());
            }
            Ok((n, n))
        }
    }

    fn parse_effect(effect: &str) -> Result<FaultEffect> {
        match effect {
            "transient" => Ok(FaultEffect::Transient),
            "permanent" => Ok(FaultEffect::Permanent),
            "corrupt" => Ok(FaultEffect::Corrupt),
            "crash" => Ok(FaultEffect::Crash),
            "torn" => Ok(FaultEffect::Torn(PAGE_SIZE / 2)),
            other => {
                if let Some(bytes) = other.strip_prefix("torn:") {
                    let n: usize = bytes.trim().parse().map_err(|_| {
                        Error::storage(format!("fault plan: bad torn byte count {bytes:?}"))
                    })?;
                    Ok(FaultEffect::Torn(n.min(PAGE_SIZE)))
                } else {
                    Err(Error::storage(format!(
                        "fault plan: unknown effect {other:?}"
                    )))
                }
            }
        }
    }

    /// Add a rule (builder form, for tests that prefer code over strings).
    pub fn with_rule(mut self, op: FaultOp, from: u64, to: u64, effect: FaultEffect) -> Self {
        self.rules.push(FaultRule {
            op,
            from,
            to,
            effect,
        });
        self
    }

    /// Set the garbage seed (builder form).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The effect covering the `n`-th (1-based) operation of kind `op`.
    pub fn effect_for(&self, op: FaultOp, n: u64) -> Option<FaultEffect> {
        self.rules
            .iter()
            .find(|r| r.op == op && r.from <= n && n <= r.to)
            .map(|r| r.effect)
    }

    /// The configured rules.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }
}

/// Injection counters, for test assertions and overhead accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Total reads observed (faulted or not).
    pub reads: u64,
    /// Total writes observed.
    pub writes: u64,
    /// Total page allocations observed.
    pub allocs: u64,
    /// Total sync/checkpoint calls observed.
    pub syncs: u64,
    /// Total WAL appends observed (only when the plan guards a WAL).
    pub wal_appends: u64,
    /// Total WAL fsyncs observed.
    pub wal_fsyncs: u64,
    /// Total WAL truncations observed.
    pub wal_truncates: u64,
    /// Transient errors injected.
    pub injected_transient: u64,
    /// Permanent errors injected.
    pub injected_permanent: u64,
    /// Torn writes injected.
    pub injected_torn: u64,
    /// Corrupted reads injected.
    pub injected_corrupt: u64,
    /// Simulated power cuts injected.
    pub injected_crash: u64,
}

impl FaultStats {
    /// Total injections of any kind.
    pub fn injected_total(&self) -> u64 {
        self.injected_transient
            + self.injected_permanent
            + self.injected_torn
            + self.injected_corrupt
            + self.injected_crash
    }
}

#[derive(Default)]
struct Counters {
    reads: AtomicU64,
    writes: AtomicU64,
    allocs: AtomicU64,
    syncs: AtomicU64,
    wal_appends: AtomicU64,
    wal_fsyncs: AtomicU64,
    wal_truncates: AtomicU64,
    injected_transient: AtomicU64,
    injected_permanent: AtomicU64,
    injected_torn: AtomicU64,
    injected_corrupt: AtomicU64,
    injected_crash: AtomicU64,
}

/// A [`DiskBackend`] decorator injecting faults per a [`FaultPlan`].
///
/// Op indices are global per operation kind (not per file), 1-based, and
/// only advance for operations the plan could observe — making "fail the
/// 3rd write" well-defined regardless of which file it lands in.
pub struct FaultInjectingBackend {
    inner: Box<dyn DiskBackend>,
    plan: Mutex<FaultPlan>,
    counters: Counters,
}

impl FaultInjectingBackend {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: Box<dyn DiskBackend>, plan: FaultPlan) -> Self {
        FaultInjectingBackend {
            inner,
            plan: Mutex::new(plan),
            counters: Counters::default(),
        }
    }

    /// Wrap `inner` with a plan parsed from the grammar.
    pub fn from_script(inner: Box<dyn DiskBackend>, script: &str) -> Result<Self> {
        Ok(Self::new(inner, FaultPlan::parse(script)?))
    }

    /// Replace the active plan (e.g. to heal a backend mid-test).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock() = plan;
    }

    /// Snapshot of operation / injection counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            reads: self.counters.reads.load(Ordering::Relaxed),
            writes: self.counters.writes.load(Ordering::Relaxed),
            allocs: self.counters.allocs.load(Ordering::Relaxed),
            syncs: self.counters.syncs.load(Ordering::Relaxed),
            wal_appends: self.counters.wal_appends.load(Ordering::Relaxed),
            wal_fsyncs: self.counters.wal_fsyncs.load(Ordering::Relaxed),
            wal_truncates: self.counters.wal_truncates.load(Ordering::Relaxed),
            injected_transient: self.counters.injected_transient.load(Ordering::Relaxed),
            injected_permanent: self.counters.injected_permanent.load(Ordering::Relaxed),
            injected_torn: self.counters.injected_torn.load(Ordering::Relaxed),
            injected_corrupt: self.counters.injected_corrupt.load(Ordering::Relaxed),
            injected_crash: self.counters.injected_crash.load(Ordering::Relaxed),
        }
    }

    /// Count one `op`, returning its 1-based index and the effect (if any).
    fn observe(&self, op: FaultOp) -> (u64, Option<FaultEffect>) {
        let counter = match op {
            FaultOp::Read => &self.counters.reads,
            FaultOp::Write => &self.counters.writes,
            FaultOp::Alloc => &self.counters.allocs,
            FaultOp::Sync => &self.counters.syncs,
            FaultOp::WalAppend => &self.counters.wal_appends,
            FaultOp::WalFsync => &self.counters.wal_fsyncs,
            FaultOp::WalTruncate => &self.counters.wal_truncates,
        };
        let n = counter.fetch_add(1, Ordering::Relaxed) + 1;
        let effect = self.plan.lock().effect_for(op, n);
        if let Some(e) = effect {
            let injected = match e {
                FaultEffect::Transient => &self.counters.injected_transient,
                FaultEffect::Permanent => &self.counters.injected_permanent,
                FaultEffect::Torn(_) => &self.counters.injected_torn,
                FaultEffect::Corrupt => &self.counters.injected_corrupt,
                FaultEffect::Crash => &self.counters.injected_crash,
            };
            injected.fetch_add(1, Ordering::Relaxed);
        }
        (n, effect)
    }

    fn garbage(&self, n: u64, buf: &mut [u8]) {
        let seed = self.plan.lock().seed;
        let mut rng = SplitMix64::new(seed ^ n.rotate_left(17));
        for chunk in buf.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            for (dst, src) in chunk.iter_mut().zip(bytes) {
                *dst = src;
            }
        }
    }

    fn transient(op: &str, n: u64) -> Error {
        Error::transient_io(format!("injected transient fault on {op} #{n}"))
    }

    fn permanent(op: &str, n: u64) -> Error {
        Error::Io(format!("injected permanent fault on {op} #{n}"))
    }
}

impl DiskBackend for FaultInjectingBackend {
    fn create_file(&self) -> Result<FileId> {
        self.inner.create_file()
    }

    fn read_page(&self, file: FileId, page_no: u64) -> Result<Page> {
        let (n, effect) = self.observe(FaultOp::Read);
        match effect {
            None => self.inner.read_page(file, page_no),
            Some(FaultEffect::Transient | FaultEffect::Torn(_) | FaultEffect::Crash) => {
                Err(Self::transient("read", n))
            }
            Some(FaultEffect::Permanent) => Err(Self::permanent("read", n)),
            Some(FaultEffect::Corrupt) => {
                let mut page = self.inner.read_page(file, page_no)?;
                // Scramble the back half so headers *and* data are suspect.
                let bytes = page.bytes_mut();
                let mut garbage = [0u8; PAGE_SIZE / 2];
                self.garbage(n, &mut garbage);
                if let Some(tail) = bytes.get_mut(PAGE_SIZE / 2..) {
                    tail.copy_from_slice(&garbage);
                }
                Ok(page)
            }
        }
    }

    fn write_page(&self, file: FileId, page_no: u64, page: &Page) -> Result<()> {
        let (n, effect) = self.observe(FaultOp::Write);
        match effect {
            None => self.inner.write_page(file, page_no, page),
            Some(FaultEffect::Transient | FaultEffect::Corrupt | FaultEffect::Crash) => {
                Err(Self::transient("write", n))
            }
            Some(FaultEffect::Permanent) => Err(Self::permanent("write", n)),
            Some(FaultEffect::Torn(valid)) => {
                let valid = valid.min(PAGE_SIZE);
                let mut torn = Page::from_bytes(*page.bytes());
                if let Some(tail) = torn.bytes_mut().get_mut(valid..) {
                    self.garbage(n, tail);
                }
                // Reports success: torn writes are only caught by recovery.
                self.inner.write_page(file, page_no, &torn)
            }
        }
    }

    fn allocate_page(&self, file: FileId) -> Result<u64> {
        let (n, effect) = self.observe(FaultOp::Alloc);
        match effect {
            None => self.inner.allocate_page(file),
            Some(FaultEffect::Permanent) => Err(Self::permanent("alloc", n)),
            Some(_) => Err(Self::transient("alloc", n)),
        }
    }

    fn file_pages(&self, file: FileId) -> u64 {
        self.inner.file_pages(file)
    }

    fn file_count(&self) -> u32 {
        self.inner.file_count()
    }

    fn sync(&self) -> Result<()> {
        let (n, effect) = self.observe(FaultOp::Sync);
        match effect {
            None => self.inner.sync(),
            Some(FaultEffect::Permanent) => Err(Self::permanent("sync", n)),
            Some(_) => Err(Self::transient("sync", n)),
        }
    }

    fn checkpoint(&self, meta: &[u8]) -> Result<u64> {
        let (n, effect) = self.observe(FaultOp::Sync);
        match effect {
            None => self.inner.checkpoint(meta),
            Some(FaultEffect::Permanent) => Err(Self::permanent("checkpoint", n)),
            Some(_) => Err(Self::transient("checkpoint", n)),
        }
    }

    fn checkpoint_meta(&self) -> Result<Option<Vec<u8>>> {
        self.inner.checkpoint_meta()
    }

    fn checkpoint_epoch(&self) -> u64 {
        self.inner.checkpoint_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemoryBackend;

    fn wrapped(script: &str) -> FaultInjectingBackend {
        FaultInjectingBackend::from_script(Box::new(MemoryBackend::new()), script).unwrap()
    }

    #[test]
    fn plan_grammar_roundtrip() {
        let p = FaultPlan::parse("write#3..5=transient; write#9=torn:512; read#2=corrupt").unwrap();
        assert_eq!(p.rules().len(), 3);
        assert_eq!(
            p.effect_for(FaultOp::Write, 3),
            Some(FaultEffect::Transient)
        );
        assert_eq!(
            p.effect_for(FaultOp::Write, 5),
            Some(FaultEffect::Transient)
        );
        assert_eq!(p.effect_for(FaultOp::Write, 6), None);
        assert_eq!(
            p.effect_for(FaultOp::Write, 9),
            Some(FaultEffect::Torn(512))
        );
        assert_eq!(p.effect_for(FaultOp::Read, 2), Some(FaultEffect::Corrupt));
        assert_eq!(p.effect_for(FaultOp::Read, 1), None);

        assert!(FaultPlan::parse("write#0=transient").is_err());
        assert!(FaultPlan::parse("write#5..3=transient").is_err());
        assert!(FaultPlan::parse("scribble#1=transient").is_err());
        assert!(FaultPlan::parse("write#1=explode").is_err());
        let open = FaultPlan::parse("sync#4..=permanent; alloc#*=transient").unwrap();
        assert_eq!(
            open.effect_for(FaultOp::Sync, 1 << 40),
            Some(FaultEffect::Permanent)
        );
        assert_eq!(
            open.effect_for(FaultOp::Alloc, 1),
            Some(FaultEffect::Transient)
        );
    }

    #[test]
    fn wal_ops_and_crash_effect_parse() {
        let p = FaultPlan::parse(
            "wal_append#2=crash; wal_fsync#1=crash; wal_truncate#*=crash; wal_append#3=torn:7",
        )
        .unwrap();
        assert_eq!(
            p.effect_for(FaultOp::WalAppend, 2),
            Some(FaultEffect::Crash)
        );
        assert_eq!(p.effect_for(FaultOp::WalFsync, 1), Some(FaultEffect::Crash));
        assert_eq!(
            p.effect_for(FaultOp::WalTruncate, 9),
            Some(FaultEffect::Crash)
        );
        assert_eq!(
            p.effect_for(FaultOp::WalAppend, 3),
            Some(FaultEffect::Torn(7))
        );
        assert_eq!(p.effect_for(FaultOp::WalAppend, 1), None);
    }

    #[test]
    fn crash_on_page_ops_degrades_to_transient() {
        let b = wrapped("write#1=crash");
        let f = b.create_file().unwrap();
        let p0 = b.allocate_page(f).unwrap();
        let err = b.write_page(f, p0, &Page::new()).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(b.stats().injected_crash, 1);
    }

    #[test]
    fn nth_write_fails_transiently_then_heals() {
        let b = wrapped("write#2=transient");
        let f = b.create_file().unwrap();
        let p0 = b.allocate_page(f).unwrap();
        let page = Page::new();
        b.write_page(f, p0, &page).unwrap(); // write #1: ok
        let err = b.write_page(f, p0, &page).unwrap_err(); // write #2: injected
        assert!(err.is_transient());
        b.write_page(f, p0, &page).unwrap(); // write #3: healed
        let s = b.stats();
        assert_eq!((s.writes, s.injected_transient), (3, 1));
    }

    #[test]
    fn permanent_faults_are_not_transient() {
        let b = wrapped("write#*=permanent");
        let f = b.create_file().unwrap();
        let p0 = b.allocate_page(f).unwrap();
        let err = b.write_page(f, p0, &Page::new()).unwrap_err();
        assert!(!err.is_transient());
    }

    #[test]
    fn torn_write_reports_success_but_scrambles_tail() {
        let b = wrapped("write#1=torn:32");
        let f = b.create_file().unwrap();
        let p0 = b.allocate_page(f).unwrap();
        let mut page = Page::new();
        page.insert_record(b"will-be-lost").unwrap();
        b.write_page(f, p0, &page).unwrap(); // lies about success
        let back = b.read_page(f, p0).unwrap();
        assert_eq!(&back.bytes()[..32], &page.bytes()[..32]);
        assert_ne!(&back.bytes()[32..], &page.bytes()[32..]);
        assert_eq!(b.stats().injected_torn, 1);
    }

    #[test]
    fn corrupt_read_is_deterministic() {
        let run = || {
            let b = wrapped("read#1..=corrupt");
            let f = b.create_file().unwrap();
            let p0 = b.allocate_page(f).unwrap();
            b.write_page(f, p0, &Page::new()).unwrap();
            *b.read_page(f, p0).unwrap().bytes()
        };
        let a = run();
        let b = run();
        assert_eq!(
            a[..],
            b[..],
            "same plan + same ops must corrupt identically"
        );
        assert_ne!(a[PAGE_SIZE / 2..], Page::new().bytes()[PAGE_SIZE / 2..]);
    }

    #[test]
    fn healing_via_set_plan() {
        let b = wrapped("write#*=transient");
        let f = b.create_file().unwrap();
        let p0 = b.allocate_page(f).unwrap();
        assert!(b.write_page(f, p0, &Page::new()).is_err());
        b.set_plan(FaultPlan::new());
        assert!(b.write_page(f, p0, &Page::new()).is_ok());
    }
}
