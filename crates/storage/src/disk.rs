//! Disk backends.
//!
//! A [`DiskBackend`] stores pages addressed by `(FileId, page_no)`. Two
//! implementations exist: [`MemoryBackend`] for simulation-driven experiments
//! (I/O cost is *accounted* by the [`crate::model::DiskModel`]) and
//! [`FileBackend`] which writes real files — used by the workload database so
//! the storage daemon's periodic appends genuinely hit the disk, as in the
//! paper's "Daemon" setup.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ingot_common::{Error, Result};
use parking_lot::Mutex;

use crate::page::{Page, PAGE_SIZE};

/// Identifies one storage file (one table or index) within a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

impl FileId {
    /// Raw index.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Page-granular persistent storage.
pub trait DiskBackend: Send + Sync {
    /// Create a new, empty file and return its id.
    fn create_file(&self) -> Result<FileId>;
    /// Read page `page_no` of `file` into a [`Page`].
    fn read_page(&self, file: FileId, page_no: u64) -> Result<Page>;
    /// Write a page.
    fn write_page(&self, file: FileId, page_no: u64, page: &Page) -> Result<()>;
    /// Append a zeroed page, returning its page number.
    fn allocate_page(&self, file: FileId) -> Result<u64>;
    /// Number of pages in `file`.
    fn file_pages(&self, file: FileId) -> u64;
    /// Number of files.
    fn file_count(&self) -> u32;
    /// Total pages across all files.
    fn total_pages(&self) -> u64 {
        (0..self.file_count())
            .map(|f| self.file_pages(FileId(f)))
            .sum()
    }
    /// Force written pages down to durable storage (`fsync`). No-op for
    /// backends without real durability.
    fn sync(&self) -> Result<()> {
        Ok(())
    }
    /// Durably checkpoint the current contents together with opaque engine
    /// `meta` bytes, returning the new checkpoint epoch. Backends without a
    /// checkpoint mechanism return 0 and discard `meta`; after a
    /// [`FileBackend`] checkpoint, [`crate::recovery::recover`] restores the
    /// directory to exactly this state following a crash, and
    /// [`DiskBackend::checkpoint_meta`] returns the stored bytes.
    fn checkpoint(&self, meta: &[u8]) -> Result<u64> {
        let _ = meta;
        self.sync()?;
        Ok(0)
    }
    /// The `meta` bytes stored by the most recent durable checkpoint, or
    /// `None` when there has been none (or the backend keeps no manifest).
    fn checkpoint_meta(&self) -> Result<Option<Vec<u8>>> {
        Ok(None)
    }
    /// Epoch of the most recent durable checkpoint (0 when none).
    fn checkpoint_epoch(&self) -> u64 {
        0
    }
}

/// Shared handles delegate, so a test can keep an `Arc` to (say) a
/// [`crate::fault::FaultInjectingBackend`] for counters and mid-run plan
/// changes while the buffer pool owns a boxed clone of the same handle.
impl<T: DiskBackend + ?Sized> DiskBackend for std::sync::Arc<T> {
    fn create_file(&self) -> Result<FileId> {
        (**self).create_file()
    }
    fn read_page(&self, file: FileId, page_no: u64) -> Result<Page> {
        (**self).read_page(file, page_no)
    }
    fn write_page(&self, file: FileId, page_no: u64, page: &Page) -> Result<()> {
        (**self).write_page(file, page_no, page)
    }
    fn allocate_page(&self, file: FileId) -> Result<u64> {
        (**self).allocate_page(file)
    }
    fn file_pages(&self, file: FileId) -> u64 {
        (**self).file_pages(file)
    }
    fn file_count(&self) -> u32 {
        (**self).file_count()
    }
    fn total_pages(&self) -> u64 {
        (**self).total_pages()
    }
    fn sync(&self) -> Result<()> {
        (**self).sync()
    }
    fn checkpoint(&self, meta: &[u8]) -> Result<u64> {
        (**self).checkpoint(meta)
    }
    fn checkpoint_meta(&self) -> Result<Option<Vec<u8>>> {
        (**self).checkpoint_meta()
    }
    fn checkpoint_epoch(&self) -> u64 {
        (**self).checkpoint_epoch()
    }
}

// ---- in-memory backend -------------------------------------------------------

/// Pages held in RAM. All I/O cost is simulated by the disk model.
#[derive(Default)]
pub struct MemoryBackend {
    files: Mutex<Vec<Vec<Box<[u8; PAGE_SIZE]>>>>,
}

impl MemoryBackend {
    /// An empty backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DiskBackend for MemoryBackend {
    fn create_file(&self) -> Result<FileId> {
        let mut files = self.files.lock();
        files.push(Vec::new());
        Ok(FileId(files.len() as u32 - 1))
    }

    fn read_page(&self, file: FileId, page_no: u64) -> Result<Page> {
        let files = self.files.lock();
        let f = files
            .get(file.0 as usize)
            .ok_or_else(|| Error::storage(format!("unknown file {file}")))?;
        let p = f
            .get(page_no as usize)
            .ok_or_else(|| Error::storage(format!("page {page_no} out of range in {file}")))?;
        Ok(Page::from_bytes(**p))
    }

    fn write_page(&self, file: FileId, page_no: u64, page: &Page) -> Result<()> {
        let mut files = self.files.lock();
        let f = files
            .get_mut(file.0 as usize)
            .ok_or_else(|| Error::storage(format!("unknown file {file}")))?;
        let p = f
            .get_mut(page_no as usize)
            .ok_or_else(|| Error::storage(format!("page {page_no} out of range in {file}")))?;
        p.copy_from_slice(page.bytes());
        Ok(())
    }

    fn allocate_page(&self, file: FileId) -> Result<u64> {
        let mut files = self.files.lock();
        let f = files
            .get_mut(file.0 as usize)
            .ok_or_else(|| Error::storage(format!("unknown file {file}")))?;
        f.push(Box::new([0u8; PAGE_SIZE]));
        Ok(f.len() as u64 - 1)
    }

    fn file_pages(&self, file: FileId) -> u64 {
        self.files
            .lock()
            .get(file.0 as usize)
            .map_or(0, |f| f.len() as u64)
    }

    fn file_count(&self) -> u32 {
        self.files.lock().len() as u32
    }
}

// ---- file backend --------------------------------------------------------------

/// Pages stored in one OS file per [`FileId`] under a directory.
///
/// Every successful page write also updates an in-memory FNV-1a checksum for
/// the page; [`DiskBackend::checkpoint`] fsyncs the data files and publishes
/// those checksums in an atomically-installed manifest, which is what
/// [`crate::recovery::recover`] verifies against after a crash.
pub struct FileBackend {
    dir: PathBuf,
    files: Mutex<Vec<FileEntry>>,
    epoch: AtomicU64,
}

struct FileEntry {
    handle: File,
    pages: u64,
    /// FNV-1a checksum of each page's last written contents.
    crcs: Vec<u64>,
}

impl FileBackend {
    /// Open (creating if needed) a backend rooted at `dir`. Existing
    /// `ingot_*.dat` files are re-attached in id order, so a workload DB
    /// survives engine restarts. Call [`crate::recovery::recover`] on the
    /// directory *first* when torn writes are possible (i.e. after any
    /// unclean shutdown); `open` itself trusts the bytes it finds.
    pub fn open(dir: PathBuf) -> Result<Self> {
        std::fs::create_dir_all(&dir)?;
        let mut files = Vec::new();
        for id in 0u32.. {
            let path = Self::path_for(&dir, id);
            if !path.exists() {
                break;
            }
            let mut handle = OpenOptions::new().read(true).write(true).open(&path)?;
            let pages = handle.metadata()?.len() / PAGE_SIZE as u64;
            let mut crcs = Vec::with_capacity(pages as usize);
            let mut buf = [0u8; PAGE_SIZE];
            handle.seek(SeekFrom::Start(0))?;
            for _ in 0..pages {
                handle.read_exact(&mut buf)?;
                crcs.push(ingot_common::fnv1a64(&buf));
            }
            files.push(FileEntry {
                handle,
                pages,
                crcs,
            });
        }
        let epoch = crate::recovery::manifest_epoch(&dir);
        Ok(FileBackend {
            dir,
            files: Mutex::new(files),
            epoch: AtomicU64::new(epoch),
        })
    }

    /// The most recently written checkpoint epoch (0 before any checkpoint).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    fn path_for(dir: &std::path::Path, id: u32) -> PathBuf {
        dir.join(format!("ingot_{id:04}.dat"))
    }
}

impl DiskBackend for FileBackend {
    fn create_file(&self) -> Result<FileId> {
        let mut files = self.files.lock();
        let id = files.len() as u32;
        let handle = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(Self::path_for(&self.dir, id))?;
        files.push(FileEntry {
            handle,
            pages: 0,
            crcs: Vec::new(),
        });
        Ok(FileId(id))
    }

    fn read_page(&self, file: FileId, page_no: u64) -> Result<Page> {
        let mut files = self.files.lock();
        let entry = files
            .get_mut(file.0 as usize)
            .ok_or_else(|| Error::storage(format!("unknown file {file}")))?;
        if page_no >= entry.pages {
            return Err(Error::storage(format!(
                "page {page_no} out of range in {file}"
            )));
        }
        let mut buf = [0u8; PAGE_SIZE];
        entry
            .handle
            .seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
        entry.handle.read_exact(&mut buf)?;
        Ok(Page::from_bytes(buf))
    }

    fn write_page(&self, file: FileId, page_no: u64, page: &Page) -> Result<()> {
        let mut files = self.files.lock();
        let entry = files
            .get_mut(file.0 as usize)
            .ok_or_else(|| Error::storage(format!("unknown file {file}")))?;
        if page_no >= entry.pages {
            return Err(Error::storage(format!(
                "page {page_no} out of range in {file}"
            )));
        }
        entry
            .handle
            .seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
        entry.handle.write_all(page.bytes())?;
        if let Some(crc) = entry.crcs.get_mut(page_no as usize) {
            *crc = ingot_common::fnv1a64(page.bytes());
        }
        Ok(())
    }

    fn allocate_page(&self, file: FileId) -> Result<u64> {
        let mut files = self.files.lock();
        let entry = files
            .get_mut(file.0 as usize)
            .ok_or_else(|| Error::storage(format!("unknown file {file}")))?;
        let page_no = entry.pages;
        entry
            .handle
            .seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
        entry.handle.write_all(&[0u8; PAGE_SIZE])?;
        entry.pages += 1;
        entry.crcs.push(ingot_common::fnv1a64(&[0u8; PAGE_SIZE]));
        Ok(page_no)
    }

    fn file_pages(&self, file: FileId) -> u64 {
        self.files
            .lock()
            .get(file.0 as usize)
            .map_or(0, |e| e.pages)
    }

    fn file_count(&self) -> u32 {
        self.files.lock().len() as u32
    }

    fn sync(&self) -> Result<()> {
        let files = self.files.lock();
        for entry in files.iter() {
            entry.handle.sync_all()?;
        }
        Ok(())
    }

    fn checkpoint(&self, meta: &[u8]) -> Result<u64> {
        // Hold the lock across data sync + manifest install so the manifest
        // can never describe a mix of pre- and post-checkpoint pages.
        let files = self.files.lock();
        for entry in files.iter() {
            entry.handle.sync_all()?;
        }
        let crcs: Vec<Vec<u64>> = files.iter().map(|e| e.crcs.clone()).collect();
        let epoch = self.epoch.load(Ordering::Relaxed) + 1;
        crate::recovery::write_manifest(&self.dir, epoch, &crcs, meta)?;
        self.epoch.store(epoch, Ordering::Relaxed);
        Ok(epoch)
    }

    fn checkpoint_meta(&self) -> Result<Option<Vec<u8>>> {
        Ok(crate::recovery::manifest_meta(&self.dir))
    }

    fn checkpoint_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: &dyn DiskBackend) {
        let f = backend.create_file().unwrap();
        let p0 = backend.allocate_page(f).unwrap();
        let p1 = backend.allocate_page(f).unwrap();
        assert_eq!((p0, p1), (0, 1));

        let mut page = Page::new();
        page.insert_record(b"persisted").unwrap();
        backend.write_page(f, p1, &page).unwrap();
        let back = backend.read_page(f, p1).unwrap();
        assert_eq!(back.record(0).unwrap(), b"persisted");
        assert_eq!(backend.file_pages(f), 2);
        assert!(backend.read_page(f, 2).is_err());
        assert!(backend.read_page(FileId(99), 0).is_err());
    }

    #[test]
    fn memory_backend_roundtrip() {
        roundtrip(&MemoryBackend::new());
    }

    #[test]
    fn file_backend_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("ingot-disk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let b = FileBackend::open(dir.clone()).unwrap();
            roundtrip(&b);
        }
        // Re-open and verify the data survived.
        let b = FileBackend::open(dir.clone()).unwrap();
        assert_eq!(b.file_count(), 1);
        let back = b.read_page(FileId(0), 1).unwrap();
        assert_eq!(back.record(0).unwrap(), b"persisted");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_backend_checkpoint_bumps_epoch_across_reopen() {
        let dir = std::env::temp_dir().join(format!("ingot-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let b = FileBackend::open(dir.clone()).unwrap();
            let f = b.create_file().unwrap();
            b.allocate_page(f).unwrap();
            assert_eq!(b.epoch(), 0);
            assert_eq!(b.checkpoint(b"meta-one").unwrap(), 1);
            assert_eq!(b.checkpoint(b"meta-two").unwrap(), 2);
            assert_eq!(
                b.checkpoint_meta().unwrap().as_deref(),
                Some(b"meta-two".as_slice())
            );
        }
        // Epochs continue from the persisted manifest after reopen.
        let b = FileBackend::open(dir.clone()).unwrap();
        assert_eq!(b.epoch(), 2);
        assert_eq!(b.checkpoint_epoch(), 2);
        assert_eq!(
            b.checkpoint_meta().unwrap().as_deref(),
            Some(b"meta-two".as_slice()),
            "checkpoint metadata survives reopen"
        );
        assert_eq!(b.checkpoint(b"").unwrap(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_backend_checkpoint_is_noop() {
        let b = MemoryBackend::new();
        assert_eq!(b.checkpoint(b"ignored").unwrap(), 0);
        assert_eq!(b.checkpoint_meta().unwrap(), None);
        assert_eq!(b.checkpoint_epoch(), 0);
        b.sync().unwrap();
    }
}
