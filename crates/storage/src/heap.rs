//! Heap files with Ingres-style main pages and overflow chains.
//!
//! In Ingres, a table's storage structure allocates a fixed set of *main*
//! pages; rows that no longer fit go to *overflow* pages chained behind them.
//! The paper's analyzer rule — "a table with a fixed amount of main data
//! pages has already more than 10 % overflow pages: the table should be
//! restructured or modified to storage structure B-Tree" — keys directly off
//! this distinction, so the heap tracks both counts explicitly.

//! ## Version headers (MVCC, PR 8)
//!
//! Every record is prefixed by a fixed [`VERSION_HEADER`]-byte header of
//! five little-endian `u64`s — `begin`, `end`, `prev`, `next`, `root` —
//! interpreted through `ingot_common::mvcc`: `begin`/`end` delimit the
//! version's lifetime (commit timestamps or uncommitted-txn markers),
//! `prev`/`next` link the row's version chain (packed [`RowId`]s, newest at
//! the head), and `root` names the chain's first version — the stable
//! row-lock key that survives versions moving across pages. The fixed size
//! means a header rewrite ([`HeapFile::set_meta`]) is always an in-place
//! same-length page update, so commit stamping never moves a record.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ingot_common::mvcc::{is_txn_mark, TS_INF};
use ingot_common::{Error, PageId, Result, Row};
use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::codec::{decode_row, encode_row_into};
use crate::disk::FileId;

/// Size of the per-record version header, in bytes.
pub const VERSION_HEADER: usize = 40;

/// The decoded version header of one heap record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionMeta {
    /// Commit timestamp (or txn marker) at which this version became
    /// visible.
    pub begin: u64,
    /// Commit timestamp (or txn marker) at which it stopped being the
    /// current version; [`TS_INF`] while alive.
    pub end: u64,
    /// Packed [`RowId`] of the next-older version; [`TS_INF`] when none.
    pub prev: u64,
    /// Packed [`RowId`] of the next-newer version; [`TS_INF`] when none.
    pub next: u64,
    /// Packed [`RowId`] of the chain's first version (the row-lock key);
    /// [`TS_INF`] means "this version is its own root".
    pub root: u64,
}

impl VersionMeta {
    /// A standalone committed-at-`begin` version: alive, no neighbours,
    /// its own root.
    pub fn base(begin: u64) -> VersionMeta {
        VersionMeta {
            begin,
            end: TS_INF,
            prev: TS_INF,
            next: TS_INF,
            root: TS_INF,
        }
    }

    /// The chain root (row-lock key) of the version stored at `own`.
    pub fn root_for(&self, own: RowId) -> u64 {
        if self.root == TS_INF {
            own.pack()
        } else {
            self.root
        }
    }

    /// Is this version the newest of its chain?
    pub fn is_head(&self) -> bool {
        self.next == TS_INF
    }

    /// Committed and superseded/deleted at or below `watermark` — i.e.
    /// invisible to every present and future snapshot, reclaimable by GC.
    pub fn dead_below(&self, watermark: u64) -> bool {
        self.end != TS_INF && !is_txn_mark(self.end) && self.end <= watermark
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        for v in [self.begin, self.end, self.prev, self.next, self.root] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(rec: &[u8]) -> Result<VersionMeta> {
        if rec.len() < VERSION_HEADER {
            return Err(Error::storage(format!(
                "record too short for a version header: {} bytes",
                rec.len()
            )));
        }
        let mut f = [0u64; 5];
        for (v, chunk) in f.iter_mut().zip(rec.chunks_exact(8)) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            *v = u64::from_le_bytes(b);
        }
        let [begin, end, prev, next, root] = f;
        Ok(VersionMeta {
            begin,
            end,
            prev,
            next,
            root,
        })
    }
}

/// Physical address of a row: page number + slot within the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId {
    /// Page number within the table's file.
    pub page_no: u64,
    /// Slot within the page.
    pub slot: u16,
}

impl RowId {
    /// Build a row id.
    pub fn new(page_no: u64, slot: u16) -> Self {
        RowId { page_no, slot }
    }

    /// Pack into a `u64` for storage inside index payloads (48-bit page,
    /// 16-bit slot).
    pub fn pack(self) -> u64 {
        (self.page_no << 16) | self.slot as u64
    }

    /// Inverse of [`RowId::pack`].
    pub fn unpack(v: u64) -> Self {
        RowId {
            page_no: v >> 16,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

impl std::fmt::Display for RowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{},{}]", self.page_no, self.slot)
    }
}

/// Page-occupancy statistics of a heap file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Fixed main-page extent.
    pub main_pages: u64,
    /// Pages beyond the main extent (the overflow chain).
    pub overflow_pages: u64,
    /// Live (logical) rows.
    pub rows: u64,
    /// Physical row versions, including superseded ones awaiting GC.
    pub versions: u64,
}

impl HeapStats {
    /// Overflow pages as a fraction of main pages — the quantity the
    /// analyzer's 10 % rule tests.
    pub fn overflow_ratio(&self) -> f64 {
        if self.main_pages == 0 {
            0.0
        } else {
            self.overflow_pages as f64 / self.main_pages as f64
        }
    }

    /// All pages.
    pub fn total_pages(&self) -> u64 {
        self.main_pages + self.overflow_pages
    }
}

/// A heap file storing encoded rows in slotted pages.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    file: FileId,
    main_pages: u64,
    /// Page currently targeted by inserts (fill front-to-back).
    insert_cursor: Mutex<u64>,
    /// Physical record (version) count.
    versions: AtomicU64,
    /// Logical live-row count, maintained by the catalog layer's MVCC
    /// mutators (and by the plain insert/delete pair).
    rows: AtomicU64,
    /// Highest committed timestamp seen in any header at `open` time; the
    /// engine restores its commit sequence above this after recovery.
    max_commit_ts: AtomicU64,
}

impl HeapFile {
    /// Create a heap file with a `main_pages`-page main extent.
    pub fn create(pool: Arc<BufferPool>, main_pages: usize) -> Result<Self> {
        let file = pool.create_file()?;
        let main_pages = main_pages.max(1) as u64;
        for _ in 0..main_pages {
            let (_, page) = pool.allocate(file)?;
            drop(page);
        }
        // Chain main pages so every page links to its successor.
        for no in 0..main_pages - 1 {
            let page = pool.fetch(file, no)?;
            page.write().set_next_page(PageId(no + 1));
            pool.mark_dirty(file, no);
        }
        Ok(HeapFile {
            pool,
            file,
            main_pages,
            insert_cursor: Mutex::new(0),
            versions: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            max_commit_ts: AtomicU64::new(0),
        })
    }

    /// Re-attach a heap file that already exists in the backend (workload-DB
    /// restart path). Rows are counted by a full scan: records whose `end`
    /// is still open are live; committed timestamps in any header feed
    /// [`HeapFile::max_commit_ts`].
    pub fn open(pool: Arc<BufferPool>, file: FileId, main_pages: u64) -> Result<Self> {
        let heap = HeapFile {
            insert_cursor: Mutex::new(pool.file_pages(file).saturating_sub(1)),
            pool,
            file,
            main_pages,
            versions: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            max_commit_ts: AtomicU64::new(0),
        };
        let mut versions = 0u64;
        let mut live = 0u64;
        let mut max_ts = 0u64;
        for item in heap.scan_versions() {
            let (_, meta, _) = item?;
            versions += 1;
            if meta.end == TS_INF {
                live += 1;
            }
            for ts in [meta.begin, meta.end] {
                if ts != TS_INF && !is_txn_mark(ts) {
                    max_ts = max_ts.max(ts);
                }
            }
        }
        heap.versions.store(versions, Ordering::Relaxed);
        heap.rows.store(live, Ordering::Relaxed);
        heap.max_commit_ts.store(max_ts, Ordering::Relaxed);
        Ok(heap)
    }

    /// The underlying file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> HeapStats {
        let total = self.pool.file_pages(self.file);
        HeapStats {
            main_pages: self.main_pages,
            overflow_pages: total.saturating_sub(self.main_pages),
            rows: self.rows.load(Ordering::Relaxed),
            versions: self.versions.load(Ordering::Relaxed),
        }
    }

    /// Highest committed header timestamp observed when this file was
    /// opened (0 for a fresh file).
    pub fn max_commit_ts(&self) -> u64 {
        self.max_commit_ts.load(Ordering::Relaxed)
    }

    /// Insert a row as a standalone committed version (bulk loads, DDL
    /// rebuilds, replay-free paths), returning its address.
    pub fn insert(&self, row: &Row) -> Result<RowId> {
        let id = self.insert_version(row, VersionMeta::base(0))?;
        self.rows.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Insert a row with an explicit version header. Adjusts only the
    /// physical version count — the caller owns the logical live count
    /// ([`HeapFile::adjust_rows`]).
    pub fn insert_version(&self, row: &Row, meta: VersionMeta) -> Result<RowId> {
        let mut buf = Vec::with_capacity(VERSION_HEADER + 64);
        meta.encode_into(&mut buf);
        let mut body = Vec::new();
        encode_row_into(row, &mut body);
        buf.extend_from_slice(&body);
        let mut cursor = self.insert_cursor.lock();
        loop {
            let page_no = *cursor;
            let page = self.pool.fetch(self.file, page_no)?;
            let slot = page.write().insert_record(&buf);
            if let Some(slot) = slot {
                self.pool.mark_dirty(self.file, page_no);
                self.versions.fetch_add(1, Ordering::Relaxed);
                return Ok(RowId::new(page_no, slot));
            }
            // Current page is full: move to the next main page, or grow the
            // overflow chain.
            let total = self.pool.file_pages(self.file);
            if page_no + 1 < total {
                *cursor = page_no + 1;
            } else {
                let (new_no, new_page) = self.pool.allocate(self.file)?;
                drop(new_page);
                page.write().set_next_page(PageId(new_no));
                self.pool.mark_dirty(self.file, page_no);
                *cursor = new_no;
            }
        }
    }

    /// Read the row at `id` (header skipped).
    pub fn get(&self, id: RowId) -> Result<Row> {
        Ok(self.get_version(id)?.1)
    }

    /// Read the version header and row at `id`.
    pub fn get_version(&self, id: RowId) -> Result<(VersionMeta, Row)> {
        self.pool.check_page(self.file, id.page_no)?;
        let page = self.pool.fetch(self.file, id.page_no)?;
        let guard = page.read();
        let rec = guard
            .record(id.slot)
            .ok_or_else(|| Error::storage(format!("no row at {id}")))?;
        let meta = VersionMeta::decode(rec)?;
        // `decode` has already verified `rec.len() >= VERSION_HEADER`.
        Ok((meta, decode_row(rec.get(VERSION_HEADER..).unwrap_or(&[]))?))
    }

    /// Read only the version header at `id`.
    pub fn meta(&self, id: RowId) -> Result<VersionMeta> {
        self.pool.check_page(self.file, id.page_no)?;
        let page = self.pool.fetch(self.file, id.page_no)?;
        let guard = page.read();
        let rec = guard
            .record(id.slot)
            .ok_or_else(|| Error::storage(format!("no row at {id}")))?;
        VersionMeta::decode(rec)
    }

    /// Rewrite the version header at `id` in place. The header is
    /// fixed-size, so this never moves the record.
    pub fn set_meta(&self, id: RowId, meta: VersionMeta) -> Result<()> {
        self.pool.check_page(self.file, id.page_no)?;
        let page = self.pool.fetch(self.file, id.page_no)?;
        let mut guard = page.write();
        let tail = guard
            .record(id.slot)
            .map(|rec| rec.get(VERSION_HEADER..).unwrap_or(&[]).to_vec())
            .ok_or_else(|| Error::storage(format!("no row at {id}")))?;
        let mut buf = Vec::with_capacity(VERSION_HEADER + tail.len());
        meta.encode_into(&mut buf);
        buf.extend_from_slice(&tail);
        let updated = guard.update_record(id.slot, &buf)?;
        drop(guard);
        debug_assert!(updated, "same-length header rewrite cannot move");
        self.pool.mark_dirty(self.file, id.page_no);
        Ok(())
    }

    /// Adjust the logical live-row count (MVCC mutators in the catalog
    /// layer call this as rows logically appear and disappear).
    pub fn adjust_rows(&self, delta: i64) {
        if delta >= 0 {
            self.rows.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            self.rows.fetch_sub(delta.unsigned_abs(), Ordering::Relaxed);
        }
    }

    /// Replace the row at `id`, preserving its version header. Returns the
    /// row's (possibly new) address: when the new encoding does not fit its
    /// page, the row moves.
    pub fn update(&self, id: RowId, row: &Row) -> Result<RowId> {
        let meta = self.meta(id)?;
        let mut buf = Vec::with_capacity(VERSION_HEADER + 64);
        meta.encode_into(&mut buf);
        let mut body = Vec::new();
        encode_row_into(row, &mut body);
        buf.extend_from_slice(&body);
        self.pool.check_page(self.file, id.page_no)?;
        let page = self.pool.fetch(self.file, id.page_no)?;
        let updated = page.write().update_record(id.slot, &buf)?;
        if updated {
            self.pool.mark_dirty(self.file, id.page_no);
            return Ok(id);
        }
        drop(page);
        self.remove_version(id)?;
        let new_id = self.insert_version(row, meta)?;
        Ok(new_id)
    }

    /// Delete the (logical) row at `id`: physical removal plus live-count
    /// decrement. MVCC deletes instead stamp `end` via
    /// [`HeapFile::set_meta`] and leave removal to GC.
    pub fn delete(&self, id: RowId) -> Result<()> {
        self.remove_version(id)?;
        self.rows.fetch_sub(1, Ordering::Relaxed);
        Ok(())
    }

    /// Physically remove the record at `id` without touching the logical
    /// live count (GC of superseded versions, undo of uncommitted ones).
    pub fn remove_version(&self, id: RowId) -> Result<()> {
        self.pool.check_page(self.file, id.page_no)?;
        let page = self.pool.fetch(self.file, id.page_no)?;
        page.write().delete_record(id.slot)?;
        self.pool.mark_dirty(self.file, id.page_no);
        self.versions.fetch_sub(1, Ordering::Relaxed);
        Ok(())
    }

    /// Full scan in physical order (main pages, then overflow pages — which
    /// is also sequential file order, so the disk model sees a sequential
    /// read pattern exactly like a real table scan). Yields every physical
    /// version; MVCC readers use [`HeapFile::scan_versions`] and filter by
    /// snapshot instead.
    pub fn scan(&self) -> impl Iterator<Item = Result<(RowId, Row)>> + '_ {
        self.scan_versions()
            .map(|item| item.map(|(id, _, row)| (id, row)))
    }

    /// Full scan yielding `(RowId, VersionMeta, Row)` for every physical
    /// version.
    pub fn scan_versions(&self) -> HeapScan<'_> {
        HeapScan {
            heap: self,
            page_no: 0,
            slot: 0,
            total_pages: self.pool.file_pages(self.file),
        }
    }

    /// Live-row count (maintained incrementally).
    pub fn row_count(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Physical version count (maintained incrementally).
    pub fn version_count(&self) -> u64 {
        self.versions.load(Ordering::Relaxed)
    }
}

/// Iterator over `(RowId, VersionMeta, Row)` triples of a heap file.
pub struct HeapScan<'a> {
    heap: &'a HeapFile,
    page_no: u64,
    slot: u16,
    total_pages: u64,
}

impl Iterator for HeapScan<'_> {
    type Item = Result<(RowId, VersionMeta, Row)>;

    fn next(&mut self) -> Option<Self::Item> {
        while self.page_no < self.total_pages {
            let page = match self.heap.pool.fetch(self.heap.file, self.page_no) {
                Ok(p) => p,
                Err(e) => return Some(Err(e)),
            };
            let guard = page.read();
            let n = guard.slot_count();
            while self.slot < n {
                let slot = self.slot;
                self.slot += 1;
                if let Some(rec) = guard.record(slot) {
                    let id = RowId::new(self.page_no, slot);
                    let meta = match VersionMeta::decode(rec) {
                        Ok(m) => m,
                        Err(e) => return Some(Err(e)),
                    };
                    return Some(
                        decode_row(rec.get(VERSION_HEADER..).unwrap_or(&[])).map(|r| (id, meta, r)),
                    );
                }
            }
            self.page_no += 1;
            self.slot = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemoryBackend;
    use crate::model::DiskModel;
    use ingot_common::{EngineConfig, SimClock, Value};

    fn pool() -> Arc<BufferPool> {
        let cfg = EngineConfig::default();
        Arc::new(BufferPool::new(
            Box::new(MemoryBackend::new()),
            DiskModel::new(&cfg, SimClock::new()),
            256,
        ))
    }

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i), Value::Str(format!("row-{i}"))])
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = HeapFile::create(pool(), 2).unwrap();
        let id = h.insert(&row(7)).unwrap();
        assert_eq!(h.get(id).unwrap(), row(7));
        assert_eq!(h.row_count(), 1);
    }

    #[test]
    fn overflow_pages_grow_past_main_extent() {
        let h = HeapFile::create(pool(), 2).unwrap();
        for i in 0..2000 {
            h.insert(&row(i)).unwrap();
        }
        let s = h.stats();
        assert_eq!(s.main_pages, 2);
        assert!(s.overflow_pages > 0, "2000 rows must overflow 2 pages");
        assert!(s.overflow_ratio() > 0.1);
        assert_eq!(s.rows, 2000);
    }

    #[test]
    fn scan_sees_all_live_rows_in_order() {
        let h = HeapFile::create(pool(), 1).unwrap();
        for i in 0..500 {
            h.insert(&row(i)).unwrap();
        }
        let rows: Vec<Row> = h.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(rows.len(), 500);
        assert_eq!(rows[0], row(0));
        assert_eq!(rows[499], row(499));
    }

    #[test]
    fn delete_then_scan_skips() {
        let h = HeapFile::create(pool(), 1).unwrap();
        let ids: Vec<RowId> = (0..10).map(|i| h.insert(&row(i)).unwrap()).collect();
        h.delete(ids[3]).unwrap();
        h.delete(ids[7]).unwrap();
        assert!(h.get(ids[3]).is_err());
        let live: Vec<i64> = h
            .scan()
            .map(|r| r.unwrap().1.get(0).as_int().unwrap())
            .collect();
        assert_eq!(live, vec![0, 1, 2, 4, 5, 6, 8, 9]);
        assert_eq!(h.row_count(), 8);
    }

    #[test]
    fn update_in_place_and_moving() {
        let h = HeapFile::create(pool(), 1).unwrap();
        let id = h.insert(&row(1)).unwrap();
        // Same-size update stays put.
        let id2 = h.update(id, &row(2)).unwrap();
        assert_eq!(id, id2);
        assert_eq!(h.get(id2).unwrap(), row(2));
        // Fill the page, then grow the row so it must move.
        while h.stats().total_pages() == 1 {
            h.insert(&row(42)).unwrap();
        }
        let fat = Row::new(vec![Value::Int(2), Value::Str("x".repeat(7000))]);
        let id3 = h.update(id2, &fat).unwrap();
        assert_ne!(id2, id3);
        assert_eq!(h.get(id3).unwrap(), fat);
    }

    #[test]
    fn version_headers_roundtrip_and_rewrite_in_place() {
        use ingot_common::mvcc::txn_mark;
        use ingot_common::TxnId;
        let h = HeapFile::create(pool(), 1).unwrap();
        let old = h.insert(&row(1)).unwrap();
        let meta = VersionMeta {
            begin: txn_mark(TxnId(5)),
            end: TS_INF,
            prev: old.pack(),
            next: TS_INF,
            root: old.pack(),
        };
        let id = h.insert_version(&row(2), meta).unwrap();
        let (m, r) = h.get_version(id).unwrap();
        assert_eq!(m, meta);
        assert_eq!(r, row(2));
        // Stamp the commit: header rewrite must not move the record.
        let stamped = VersionMeta { begin: 9, ..meta };
        h.set_meta(id, stamped).unwrap();
        assert_eq!(h.meta(id).unwrap(), stamped);
        assert_eq!(h.get(id).unwrap(), row(2));
        assert_eq!(h.version_count(), 2);
        assert_eq!(h.row_count(), 1, "insert_version leaves live alone");
        h.adjust_rows(1);
        assert_eq!(h.row_count(), 2);
    }

    #[test]
    fn open_counts_live_rows_and_max_commit_ts() {
        let p = pool();
        let h = HeapFile::create(Arc::clone(&p), 1).unwrap();
        let a = h.insert(&row(1)).unwrap(); // begin 0, alive
        let mut dead = VersionMeta::base(3);
        dead.end = 7; // committed-dead version
        h.insert_version(&row(2), dead).unwrap();
        h.insert_version(&row(3), VersionMeta::base(7)).unwrap();
        h.adjust_rows(1);
        let _ = a;
        let file = h.file_id();
        drop(h);
        let reopened = HeapFile::open(p, file, 1).unwrap();
        assert_eq!(reopened.version_count(), 3);
        assert_eq!(reopened.row_count(), 2, "only end=INF records are live");
        assert_eq!(reopened.max_commit_ts(), 7);
    }

    #[test]
    fn remove_version_leaves_live_count_alone() {
        let h = HeapFile::create(pool(), 1).unwrap();
        let id = h.insert_version(&row(1), VersionMeta::base(1)).unwrap();
        assert_eq!(h.version_count(), 1);
        h.remove_version(id).unwrap();
        assert_eq!(h.version_count(), 0);
        assert_eq!(h.row_count(), 0);
        assert!(h.get(id).is_err());
    }

    #[test]
    fn rowid_pack_roundtrip() {
        let id = RowId::new(123_456, 789);
        assert_eq!(RowId::unpack(id.pack()), id);
    }

    #[test]
    fn open_recounts_rows() {
        let p = pool();
        let h = HeapFile::create(Arc::clone(&p), 2).unwrap();
        for i in 0..100 {
            h.insert(&row(i)).unwrap();
        }
        let file = h.file_id();
        drop(h);
        let reopened = HeapFile::open(p, file, 2).unwrap();
        assert_eq!(reopened.row_count(), 100);
    }
}
