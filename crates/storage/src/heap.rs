//! Heap files with Ingres-style main pages and overflow chains.
//!
//! In Ingres, a table's storage structure allocates a fixed set of *main*
//! pages; rows that no longer fit go to *overflow* pages chained behind them.
//! The paper's analyzer rule — "a table with a fixed amount of main data
//! pages has already more than 10 % overflow pages: the table should be
//! restructured or modified to storage structure B-Tree" — keys directly off
//! this distinction, so the heap tracks both counts explicitly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ingot_common::{Error, PageId, Result, Row};
use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::codec::{decode_row, encode_row_into};
use crate::disk::FileId;

/// Physical address of a row: page number + slot within the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId {
    /// Page number within the table's file.
    pub page_no: u64,
    /// Slot within the page.
    pub slot: u16,
}

impl RowId {
    /// Build a row id.
    pub fn new(page_no: u64, slot: u16) -> Self {
        RowId { page_no, slot }
    }

    /// Pack into a `u64` for storage inside index payloads (48-bit page,
    /// 16-bit slot).
    pub fn pack(self) -> u64 {
        (self.page_no << 16) | self.slot as u64
    }

    /// Inverse of [`RowId::pack`].
    pub fn unpack(v: u64) -> Self {
        RowId {
            page_no: v >> 16,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

impl std::fmt::Display for RowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{},{}]", self.page_no, self.slot)
    }
}

/// Page-occupancy statistics of a heap file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Fixed main-page extent.
    pub main_pages: u64,
    /// Pages beyond the main extent (the overflow chain).
    pub overflow_pages: u64,
    /// Live rows.
    pub rows: u64,
}

impl HeapStats {
    /// Overflow pages as a fraction of main pages — the quantity the
    /// analyzer's 10 % rule tests.
    pub fn overflow_ratio(&self) -> f64 {
        if self.main_pages == 0 {
            0.0
        } else {
            self.overflow_pages as f64 / self.main_pages as f64
        }
    }

    /// All pages.
    pub fn total_pages(&self) -> u64 {
        self.main_pages + self.overflow_pages
    }
}

/// A heap file storing encoded rows in slotted pages.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    file: FileId,
    main_pages: u64,
    /// Page currently targeted by inserts (fill front-to-back).
    insert_cursor: Mutex<u64>,
    rows: AtomicU64,
}

impl HeapFile {
    /// Create a heap file with a `main_pages`-page main extent.
    pub fn create(pool: Arc<BufferPool>, main_pages: usize) -> Result<Self> {
        let file = pool.create_file()?;
        let main_pages = main_pages.max(1) as u64;
        for _ in 0..main_pages {
            let (_, page) = pool.allocate(file)?;
            drop(page);
        }
        // Chain main pages so every page links to its successor.
        for no in 0..main_pages - 1 {
            let page = pool.fetch(file, no)?;
            page.write().set_next_page(PageId(no + 1));
            pool.mark_dirty(file, no);
        }
        Ok(HeapFile {
            pool,
            file,
            main_pages,
            insert_cursor: Mutex::new(0),
            rows: AtomicU64::new(0),
        })
    }

    /// Re-attach a heap file that already exists in the backend (workload-DB
    /// restart path). Rows are counted by a full scan.
    pub fn open(pool: Arc<BufferPool>, file: FileId, main_pages: u64) -> Result<Self> {
        let heap = HeapFile {
            insert_cursor: Mutex::new(pool.file_pages(file).saturating_sub(1)),
            pool,
            file,
            main_pages,
            rows: AtomicU64::new(0),
        };
        let mut n = 0u64;
        for item in heap.scan() {
            item?;
            n += 1;
        }
        heap.rows.store(n, Ordering::Relaxed);
        Ok(heap)
    }

    /// The underlying file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> HeapStats {
        let total = self.pool.file_pages(self.file);
        HeapStats {
            main_pages: self.main_pages,
            overflow_pages: total.saturating_sub(self.main_pages),
            rows: self.rows.load(Ordering::Relaxed),
        }
    }

    /// Insert a row, returning its address.
    pub fn insert(&self, row: &Row) -> Result<RowId> {
        let mut buf = Vec::new();
        encode_row_into(row, &mut buf);
        let mut cursor = self.insert_cursor.lock();
        loop {
            let page_no = *cursor;
            let page = self.pool.fetch(self.file, page_no)?;
            let slot = page.write().insert_record(&buf);
            if let Some(slot) = slot {
                self.pool.mark_dirty(self.file, page_no);
                self.rows.fetch_add(1, Ordering::Relaxed);
                return Ok(RowId::new(page_no, slot));
            }
            // Current page is full: move to the next main page, or grow the
            // overflow chain.
            let total = self.pool.file_pages(self.file);
            if page_no + 1 < total {
                *cursor = page_no + 1;
            } else {
                let (new_no, new_page) = self.pool.allocate(self.file)?;
                drop(new_page);
                page.write().set_next_page(PageId(new_no));
                self.pool.mark_dirty(self.file, page_no);
                *cursor = new_no;
            }
        }
    }

    /// Read the row at `id`.
    pub fn get(&self, id: RowId) -> Result<Row> {
        self.pool.check_page(self.file, id.page_no)?;
        let page = self.pool.fetch(self.file, id.page_no)?;
        let guard = page.read();
        let rec = guard
            .record(id.slot)
            .ok_or_else(|| Error::storage(format!("no row at {id}")))?;
        decode_row(rec)
    }

    /// Replace the row at `id`. Returns the row's (possibly new) address:
    /// when the new encoding does not fit its page, the row moves.
    pub fn update(&self, id: RowId, row: &Row) -> Result<RowId> {
        let mut buf = Vec::new();
        encode_row_into(row, &mut buf);
        self.pool.check_page(self.file, id.page_no)?;
        let page = self.pool.fetch(self.file, id.page_no)?;
        let updated = page.write().update_record(id.slot, &buf)?;
        if updated {
            self.pool.mark_dirty(self.file, id.page_no);
            return Ok(id);
        }
        drop(page);
        self.delete(id)?;
        self.insert(row)
    }

    /// Delete the row at `id`.
    pub fn delete(&self, id: RowId) -> Result<()> {
        self.pool.check_page(self.file, id.page_no)?;
        let page = self.pool.fetch(self.file, id.page_no)?;
        page.write().delete_record(id.slot)?;
        self.pool.mark_dirty(self.file, id.page_no);
        self.rows.fetch_sub(1, Ordering::Relaxed);
        Ok(())
    }

    /// Full scan in physical order (main pages, then overflow pages — which
    /// is also sequential file order, so the disk model sees a sequential
    /// read pattern exactly like a real table scan).
    pub fn scan(&self) -> HeapScan<'_> {
        HeapScan {
            heap: self,
            page_no: 0,
            slot: 0,
            total_pages: self.pool.file_pages(self.file),
        }
    }

    /// Live-row count (maintained incrementally).
    pub fn row_count(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }
}

/// Iterator over `(RowId, Row)` pairs of a heap file.
pub struct HeapScan<'a> {
    heap: &'a HeapFile,
    page_no: u64,
    slot: u16,
    total_pages: u64,
}

impl Iterator for HeapScan<'_> {
    type Item = Result<(RowId, Row)>;

    fn next(&mut self) -> Option<Self::Item> {
        while self.page_no < self.total_pages {
            let page = match self.heap.pool.fetch(self.heap.file, self.page_no) {
                Ok(p) => p,
                Err(e) => return Some(Err(e)),
            };
            let guard = page.read();
            let n = guard.slot_count();
            while self.slot < n {
                let slot = self.slot;
                self.slot += 1;
                if let Some(rec) = guard.record(slot) {
                    let id = RowId::new(self.page_no, slot);
                    return Some(decode_row(rec).map(|r| (id, r)));
                }
            }
            self.page_no += 1;
            self.slot = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemoryBackend;
    use crate::model::DiskModel;
    use ingot_common::{EngineConfig, SimClock, Value};

    fn pool() -> Arc<BufferPool> {
        let cfg = EngineConfig::default();
        Arc::new(BufferPool::new(
            Box::new(MemoryBackend::new()),
            DiskModel::new(&cfg, SimClock::new()),
            256,
        ))
    }

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i), Value::Str(format!("row-{i}"))])
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = HeapFile::create(pool(), 2).unwrap();
        let id = h.insert(&row(7)).unwrap();
        assert_eq!(h.get(id).unwrap(), row(7));
        assert_eq!(h.row_count(), 1);
    }

    #[test]
    fn overflow_pages_grow_past_main_extent() {
        let h = HeapFile::create(pool(), 2).unwrap();
        for i in 0..2000 {
            h.insert(&row(i)).unwrap();
        }
        let s = h.stats();
        assert_eq!(s.main_pages, 2);
        assert!(s.overflow_pages > 0, "2000 rows must overflow 2 pages");
        assert!(s.overflow_ratio() > 0.1);
        assert_eq!(s.rows, 2000);
    }

    #[test]
    fn scan_sees_all_live_rows_in_order() {
        let h = HeapFile::create(pool(), 1).unwrap();
        for i in 0..500 {
            h.insert(&row(i)).unwrap();
        }
        let rows: Vec<Row> = h.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(rows.len(), 500);
        assert_eq!(rows[0], row(0));
        assert_eq!(rows[499], row(499));
    }

    #[test]
    fn delete_then_scan_skips() {
        let h = HeapFile::create(pool(), 1).unwrap();
        let ids: Vec<RowId> = (0..10).map(|i| h.insert(&row(i)).unwrap()).collect();
        h.delete(ids[3]).unwrap();
        h.delete(ids[7]).unwrap();
        assert!(h.get(ids[3]).is_err());
        let live: Vec<i64> = h
            .scan()
            .map(|r| r.unwrap().1.get(0).as_int().unwrap())
            .collect();
        assert_eq!(live, vec![0, 1, 2, 4, 5, 6, 8, 9]);
        assert_eq!(h.row_count(), 8);
    }

    #[test]
    fn update_in_place_and_moving() {
        let h = HeapFile::create(pool(), 1).unwrap();
        let id = h.insert(&row(1)).unwrap();
        // Same-size update stays put.
        let id2 = h.update(id, &row(2)).unwrap();
        assert_eq!(id, id2);
        assert_eq!(h.get(id2).unwrap(), row(2));
        // Fill the page, then grow the row so it must move.
        while h.stats().total_pages() == 1 {
            h.insert(&row(42)).unwrap();
        }
        let fat = Row::new(vec![Value::Int(2), Value::Str("x".repeat(7000))]);
        let id3 = h.update(id2, &fat).unwrap();
        assert_ne!(id2, id3);
        assert_eq!(h.get(id3).unwrap(), fat);
    }

    #[test]
    fn rowid_pack_roundtrip() {
        let id = RowId::new(123_456, 789);
        assert_eq!(RowId::unpack(id.pack()), id);
    }

    #[test]
    fn open_recounts_rows() {
        let p = pool();
        let h = HeapFile::create(Arc::clone(&p), 2).unwrap();
        for i in 0..100 {
            h.insert(&row(i)).unwrap();
        }
        let file = h.file_id();
        drop(h);
        let reopened = HeapFile::open(p, file, 2).unwrap();
        assert_eq!(reopened.row_count(), 100);
    }
}
