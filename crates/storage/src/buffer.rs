//! The buffer pool: a bounded page cache shared by all files of a database.
//!
//! The pool is the boundary where *logical* page accesses become *physical*
//! I/O, so it is also where the monitoring statistics the paper collects
//! (cache hits, physical reads/writes) originate. The 1m-test of the paper's
//! evaluation ("the second statement already shows the impact of caching")
//! reproduces here: the first point query faults catalog and data pages in,
//! subsequent ones are pure cache hits.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ingot_common::waits::{WaitEvent, WaitGuard, WaitRegistry, WaitRegistryHandle};
use ingot_common::{Error, Result};
use parking_lot::{Mutex, RwLock};

use crate::disk::{DiskBackend, FileId};
use crate::model::{DiskModel, IoStats};
use crate::page::Page;

/// Shared handle to a cached page. Holding the handle pins the page.
pub type PageRef = Arc<RwLock<Page>>;

/// Snapshot of buffer-pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Page requests served from the cache.
    pub hits: u64,
    /// Page requests that required a physical read.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Backend write failures observed while evicting or flushing (the
    /// affected pages stay resident and dirty — nothing is lost).
    pub write_failures: u64,
    /// Pages currently resident.
    pub resident: u64,
    /// Configured capacity in pages.
    pub capacity: u64,
}

impl BufferStats {
    /// Cache hit ratio in [0, 1]; 1.0 when there was no traffic.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    page: PageRef,
    dirty: bool,
    /// Generation of the newest LRU-queue entry for this key; stale queue
    /// entries (older generations) are skipped during eviction.
    gen: u64,
}

struct PoolInner {
    frames: HashMap<(FileId, u64), Frame>,
    lru: VecDeque<((FileId, u64), u64)>,
    next_gen: u64,
}

/// An LRU page cache in front of a [`DiskBackend`], with all physical I/O
/// priced by the [`DiskModel`].
///
/// Eviction is **no-steal**: dirty pages are never written back to make
/// room, only [`BufferPool::flush_all`] (normally as part of a checkpoint)
/// moves dirty data to the backend. This is what makes the WAL's redo-only,
/// committed-transactions-only replay sound — a crash can never leave a
/// loser transaction's page image on disk.
pub struct BufferPool {
    backend: Box<dyn DiskBackend>,
    model: DiskModel,
    capacity: usize,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    write_failures: AtomicU64,
    /// Wait-event sink, injected by the engine after construction. Unset
    /// (unit tests) the miss and eviction paths charge nothing.
    waits: WaitRegistryHandle,
}

impl BufferPool {
    /// Create a pool of `capacity` pages over `backend`.
    pub fn new(backend: Box<dyn DiskBackend>, model: DiskModel, capacity: usize) -> Self {
        BufferPool {
            backend,
            model,
            capacity: capacity.max(8),
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                lru: VecDeque::new(),
                next_gen: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
            waits: WaitRegistryHandle::new(),
        }
    }

    /// Route physical-I/O wait accounting to `registry` (`BufferRead` for
    /// misses, `BufferEvict` for the over-capacity sweep). Called once by
    /// the engine during wiring.
    pub fn set_wait_registry(&self, registry: Arc<WaitRegistry>) {
        self.waits.set(registry);
    }

    /// The disk model (for reading I/O statistics or the simulated clock).
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Create a new storage file in the backend.
    pub fn create_file(&self) -> Result<FileId> {
        self.backend.create_file()
    }

    fn touch(inner: &mut PoolInner, key: (FileId, u64)) {
        let gen = inner.next_gen;
        inner.next_gen += 1;
        if let Some(f) = inner.frames.get_mut(&key) {
            f.gen = gen;
        }
        inner.lru.push_back((key, gen));
        // Bound queue garbage: compact when it grows far beyond the frame
        // count (stale generations accumulate on hot pages).
        if inner.lru.len() > inner.frames.len() * 8 + 64 {
            let frames = &inner.frames;
            inner
                .lru
                .retain(|(k, g)| frames.get(k).is_some_and(|f| f.gen == *g));
        }
    }

    fn evict_if_needed(&self, inner: &mut PoolInner) -> Result<()> {
        if inner.frames.len() <= self.capacity {
            return Ok(());
        }
        // Over capacity: the sweep below is time the requesting statement
        // spends making room rather than doing work.
        let _wait = WaitGuard::begin(self.waits.get(), WaitEvent::BufferEvict);
        while inner.frames.len() > self.capacity {
            // Find the least-recently-used unpinned frame. The scan is
            // bounded so that a fully-pinned pool terminates (pinned frames
            // are requeued behind the budget).
            let mut evicted = false;
            let mut budget = inner.lru.len();
            while budget > 0 {
                budget -= 1;
                let Some((key, gen)) = inner.lru.pop_front() else {
                    break;
                };
                let Some(frame) = inner.frames.get(&key) else {
                    continue; // stale: frame already gone
                };
                if frame.gen != gen {
                    continue; // stale: frame touched more recently
                }
                if Arc::strong_count(&frame.page) > 1 || frame.dirty {
                    // Pinned or dirty: requeue at the back and keep
                    // scanning. Dirty pages are *never* written back here —
                    // the pool is strictly no-steal, because redo-only WAL
                    // replay (crate::wal) assumes no uncommitted page image
                    // ever reaches the backend outside a checkpoint's
                    // flush_all. The pool runs over capacity until the next
                    // flush cleans frames.
                    Self::touch(inner, key);
                    continue;
                }
                if inner.frames.remove(&key).is_none() {
                    continue; // stale: frame already gone
                }
                self.evictions.fetch_add(1, Ordering::Relaxed);
                evicted = true;
                break;
            }
            if !evicted {
                // Everything is pinned; allow the pool to exceed capacity
                // rather than deadlock.
                return Ok(());
            }
        }
        Ok(())
    }

    /// Fetch a page, reading it from disk on a miss. The returned handle
    /// pins the page until dropped.
    pub fn fetch(&self, file: FileId, page_no: u64) -> Result<PageRef> {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get(&(file, page_no)) {
            let page = Arc::clone(&frame.page);
            self.hits.fetch_add(1, Ordering::Relaxed);
            Self::touch(&mut inner, (file, page_no));
            return Ok(page);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let page = {
            // Miss: the physical read is lost time for the requester.
            let _wait = WaitGuard::begin(self.waits.get(), WaitEvent::BufferRead);
            self.backend.read_page(file, page_no)?
        };
        self.model.record_read(file, page_no);
        let page = Arc::new(RwLock::new(page));
        inner.frames.insert(
            (file, page_no),
            Frame {
                page: Arc::clone(&page),
                dirty: false,
                gen: 0,
            },
        );
        Self::touch(&mut inner, (file, page_no));
        self.evict_if_needed(&mut inner)?;
        Ok(page)
    }

    /// Allocate a fresh page at the end of `file`, returning `(page_no,
    /// handle)`. The new page is resident and dirty.
    pub fn allocate(&self, file: FileId) -> Result<(u64, PageRef)> {
        let page_no = self.backend.allocate_page(file)?;
        self.model.record_write(); // file extension is a physical write
        let page = Arc::new(RwLock::new(Page::new()));
        let mut inner = self.inner.lock();
        inner.frames.insert(
            (file, page_no),
            Frame {
                page: Arc::clone(&page),
                dirty: true,
                gen: 0,
            },
        );
        Self::touch(&mut inner, (file, page_no));
        self.evict_if_needed(&mut inner)?;
        Ok((page_no, page))
    }

    /// Mark a resident page dirty (caller has modified it via its handle).
    pub fn mark_dirty(&self, file: FileId, page_no: u64) {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get_mut(&(file, page_no)) {
            frame.dirty = true;
        }
    }

    /// Write back every dirty page.
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        // Collect keys first to appease the borrow checker.
        let dirty: Vec<(FileId, u64)> = inner
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(k, _)| *k)
            .collect();
        for key in dirty {
            let Some(frame) = inner.frames.get_mut(&key) else {
                continue; // frame evicted since the key was collected
            };
            {
                let page = frame.page.read();
                if let Err(e) = self.backend.write_page(key.0, key.1, &page) {
                    // Dirty flag stays set, so a later flush retries the page.
                    self.write_failures.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
            }
            self.model.record_write();
            frame.dirty = false;
        }
        Ok(())
    }

    /// Fsync the backend (no-op for in-memory backends). Flushing makes
    /// pages *visible* to the backend; syncing makes them *durable*.
    pub fn sync(&self) -> Result<()> {
        self.backend.sync()
    }

    /// Flush-independent durable checkpoint of the backend (see
    /// [`DiskBackend::checkpoint`]); callers normally run
    /// [`BufferPool::flush_all`] first.
    pub fn checkpoint(&self, meta: &[u8]) -> Result<u64> {
        self.backend.checkpoint(meta)
    }

    /// Metadata stored by the backend's most recent durable checkpoint.
    pub fn checkpoint_meta(&self) -> Result<Option<Vec<u8>>> {
        self.backend.checkpoint_meta()
    }

    /// Epoch of the backend's most recent durable checkpoint (0 when none).
    pub fn checkpoint_epoch(&self) -> u64 {
        self.backend.checkpoint_epoch()
    }

    /// Drop every cached page (writing dirty ones back first). Used by tests
    /// to force cold-cache behaviour.
    pub fn clear(&self) -> Result<()> {
        self.flush_all()?;
        let mut inner = self.inner.lock();
        inner.frames.clear();
        inner.lru.clear();
        Ok(())
    }

    /// Buffer counters.
    pub fn stats(&self) -> BufferStats {
        let resident = self.inner.lock().frames.len() as u64;
        BufferStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
            resident,
            capacity: self.capacity as u64,
        }
    }

    /// Disk-model counters.
    pub fn io_stats(&self) -> IoStats {
        self.model.stats()
    }

    /// Pages in one file.
    pub fn file_pages(&self, file: FileId) -> u64 {
        self.backend.file_pages(file)
    }

    /// Pages across all files.
    pub fn total_pages(&self) -> u64 {
        self.backend.total_pages()
    }

    /// Validate a page number before following a stored link.
    pub fn check_page(&self, file: FileId, page_no: u64) -> Result<()> {
        if page_no < self.backend.file_pages(file) {
            Ok(())
        } else {
            Err(Error::storage(format!(
                "dangling page reference {page_no} in {file}"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemoryBackend;
    use ingot_common::{EngineConfig, SimClock};

    fn pool(capacity: usize) -> BufferPool {
        let cfg = EngineConfig::default();
        BufferPool::new(
            Box::new(MemoryBackend::new()),
            DiskModel::new(&cfg, SimClock::new()),
            capacity,
        )
    }

    #[test]
    fn hit_after_miss() {
        let p = pool(16);
        let f = p.create_file().unwrap();
        let (no, _page) = p.allocate(f).unwrap();
        drop(_page);
        p.clear().unwrap();
        let _ = p.fetch(f, no).unwrap(); // miss
        let _ = p.fetch(f, no).unwrap(); // hit
        let s = p.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn dirty_pages_are_never_stolen() {
        let p = pool(8);
        let f = p.create_file().unwrap();
        let (no0, page0) = p.allocate(f).unwrap();
        page0.write().insert_record(b"marker").unwrap();
        p.mark_dirty(f, no0);
        drop(page0);
        for _ in 0..32 {
            let (_, pg) = p.allocate(f).unwrap();
            drop(pg);
        }
        // No-steal: every frame is still dirty, so nothing may be evicted
        // and no page image reaches the backend behind the WAL's back.
        let s = p.stats();
        assert_eq!(s.evictions, 0);
        assert!(s.resident > s.capacity, "pool runs over capacity");
        // A flush cleans the frames; the marker survives a full clear.
        p.flush_all().unwrap();
        p.clear().unwrap();
        let back = p.fetch(f, no0).unwrap();
        assert_eq!(back.read().record(0).unwrap(), b"marker");
    }

    #[test]
    fn capacity_is_respected_for_clean_pages() {
        let p = pool(8);
        let f = p.create_file().unwrap();
        for _ in 0..64 {
            let (_, pg) = p.allocate(f).unwrap();
            drop(pg);
        }
        p.flush_all().unwrap();
        p.clear().unwrap();
        // Fault the (clean) pages back in: eviction keeps residency bounded.
        for no in 0..64 {
            let pg = p.fetch(f, no).unwrap();
            drop(pg);
        }
        assert!(p.stats().resident <= 8 + 1);
        assert!(p.stats().evictions > 0);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let p = pool(8);
        let f = p.create_file().unwrap();
        let (no0, pinned) = p.allocate(f).unwrap();
        for _ in 0..32 {
            let (_, pg) = p.allocate(f).unwrap();
            drop(pg);
        }
        // Clean everything so eviction is allowed, then trigger a sweep.
        p.flush_all().unwrap();
        let (_, extra) = p.allocate(f).unwrap();
        drop(extra);
        // The pinned page must still be resident: fetching it is a hit.
        let before = p.stats().misses;
        let again = p.fetch(f, no0).unwrap();
        assert_eq!(p.stats().misses, before);
        assert!(Arc::ptr_eq(&pinned, &again));
    }

    #[test]
    fn flush_write_failure_keeps_dirty_pages() {
        use crate::fault::{FaultInjectingBackend, FaultPlan};
        let cfg = EngineConfig::default();
        let fb = Arc::new(
            FaultInjectingBackend::from_script(Box::new(MemoryBackend::new()), "write#*=transient")
                .unwrap(),
        );
        let p = BufferPool::new(
            Box::new(Arc::clone(&fb)),
            DiskModel::new(&cfg, SimClock::new()),
            8,
        );
        let f = p.create_file().unwrap();
        let (no0, page0) = p.allocate(f).unwrap();
        page0.write().insert_record(b"precious").unwrap();
        p.mark_dirty(f, no0);
        drop(page0);
        assert!(p.flush_all().is_err(), "flush surfaces the backend fault");
        let s = p.stats();
        assert!(s.write_failures > 0);
        assert_eq!(s.resident, 1, "failed flush keeps the page resident");
        // Heal the backend: a retried flush lands everything.
        fb.set_plan(FaultPlan::new());
        p.flush_all().unwrap();
        p.clear().unwrap();
        let back = p.fetch(f, no0).unwrap();
        assert_eq!(back.read().record(0).unwrap(), b"precious");
    }

    #[test]
    fn hit_ratio() {
        let s = BufferStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(BufferStats::default().hit_ratio(), 1.0);
    }
}
