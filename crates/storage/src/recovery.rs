//! Crash recovery for [`crate::disk::FileBackend`] directories.
//!
//! Every checkpoint writes a *manifest* (`ingot.manifest`) recording an
//! epoch number and a per-page FNV-1a checksum for every data file, itself
//! protected by a trailing checksum and installed atomically via
//! write-to-temp + rename. [`recover`] replays the invariant the manifest
//! encodes: **after recovery, every file holds exactly the pages of the most
//! recent durable checkpoint**. Torn page writes (a crash mid-`write(2)`)
//! and post-checkpoint appends are detected by checksum / length mismatch
//! and truncated away; because the workload DB is append-only, truncating
//! the tail loses only the newest, never-acknowledged rows.
//!
//! Manifest layout (all integers little-endian):
//!
//! ```text
//! magic   8  b"INGOTMF1"
//! epoch   8  u64, incremented per checkpoint
//! files   4  u32 file count
//! per file: pages u64, then pages × u64 FNV-1a page checksums
//! meta    8  u64 length, then that many opaque bytes (engine checkpoint
//!            metadata — Ingot stores the serialized schema here so WAL
//!            replay can rebuild the catalog before redoing records)
//! trailer 8  u64 FNV-1a of all preceding bytes
//! ```

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ingot_common::{fnv1a64, Error, Result};

use crate::page::{HEADER_SIZE, PAGE_SIZE, SLOT_SIZE};

/// File name of the checkpoint manifest inside a backend directory.
pub const MANIFEST_NAME: &str = "ingot.manifest";
const MANIFEST_TMP: &str = "ingot.manifest.tmp";
const MAGIC: &[u8; 8] = b"INGOTMF1";

/// Parsed manifest: checkpoint epoch + per-file page checksums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Checkpoint epoch this manifest describes.
    pub epoch: u64,
    /// One checksum vector per file id, in id order.
    pub files: Vec<Vec<u64>>,
    /// Opaque engine metadata captured with the checkpoint.
    pub meta: Vec<u8>,
}

/// Outcome of reading a manifest file.
enum ManifestRead {
    NotFound,
    Invalid,
    Valid(Manifest),
}

/// What [`recover`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A manifest file was present.
    pub manifest_found: bool,
    /// The manifest parsed and its trailer checksum matched.
    pub manifest_valid: bool,
    /// Epoch of the checkpoint recovered to (0 when none).
    pub epoch: u64,
    /// Data files examined.
    pub files_checked: u32,
    /// Pages whose checksum matched the manifest (or, without manifest
    /// coverage, whole pages kept as-is).
    pub pages_intact: u64,
    /// Pages detected as torn (checksum mismatch or partial byte tail).
    pub torn_pages: u64,
    /// Pages removed (torn pages plus post-checkpoint appends).
    pub pages_truncated: u64,
    /// Live slotted records in the pages that were kept.
    pub rows_salvaged: u64,
    /// Live slotted records counted in dropped-but-readable pages
    /// (best-effort; torn pages may not parse at all).
    pub rows_dropped: u64,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovered to epoch {} ({} files): {} pages intact, {} torn, \
             {} truncated; {} rows salvaged, {} dropped",
            self.epoch,
            self.files_checked,
            self.pages_intact,
            self.torn_pages,
            self.pages_truncated,
            self.rows_salvaged,
            self.rows_dropped
        )
    }
}

fn path_for(dir: &Path, id: u32) -> PathBuf {
    dir.join(format!("ingot_{id:04}.dat"))
}

/// Write `files` (per-file page checksums) plus opaque `meta` bytes as epoch
/// `epoch`, atomically: temp file + fsync + rename + directory fsync.
pub fn write_manifest(dir: &Path, epoch: u64, files: &[Vec<u64>], meta: &[u8]) -> Result<()> {
    let mut buf =
        Vec::with_capacity(40 + meta.len() + files.iter().map(|f| 8 + f.len() * 8).sum::<usize>());
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&(files.len() as u32).to_le_bytes());
    for crcs in files {
        buf.extend_from_slice(&(crcs.len() as u64).to_le_bytes());
        for crc in crcs {
            buf.extend_from_slice(&crc.to_le_bytes());
        }
    }
    buf.extend_from_slice(&(meta.len() as u64).to_le_bytes());
    buf.extend_from_slice(meta);
    let trailer = fnv1a64(&buf);
    buf.extend_from_slice(&trailer.to_le_bytes());

    let tmp = dir.join(MANIFEST_TMP);
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(MANIFEST_NAME))?;
    // Persist the rename itself; best-effort on platforms where opening a
    // directory for sync is not supported.
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

fn read_manifest(dir: &Path) -> Result<ManifestRead> {
    let path = dir.join(MANIFEST_NAME);
    let buf = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ManifestRead::NotFound),
        Err(e) => return Err(e.into()),
    };
    // Checked reads throughout: a truncated or corrupt manifest parses to
    // `Invalid`, never a panic.
    let u64_at = |off: usize| -> Option<u64> {
        match buf.get(off..off.saturating_add(8)) {
            Some(&[a, b, c, d, e, f, g, h]) => Some(u64::from_le_bytes([a, b, c, d, e, f, g, h])),
            _ => None,
        }
    };
    if buf.len() < MAGIC.len() + 8 + 4 + 8 || buf.get(..8) != Some(MAGIC.as_slice()) {
        return Ok(ManifestRead::Invalid);
    }
    let body_len = buf.len() - 8;
    let trailer_ok = match (buf.get(..body_len), u64_at(body_len)) {
        (Some(body), Some(trailer)) => fnv1a64(body) == trailer,
        _ => false,
    };
    if !trailer_ok {
        return Ok(ManifestRead::Invalid);
    }
    let Some(epoch) = u64_at(8) else {
        return Ok(ManifestRead::Invalid);
    };
    let file_count = match buf.get(16..20) {
        Some(&[a, b, c, d]) => u32::from_le_bytes([a, b, c, d]) as usize,
        _ => return Ok(ManifestRead::Invalid),
    };
    let mut files = Vec::new();
    let mut off = 20;
    for _ in 0..file_count {
        if off + 8 > body_len {
            return Ok(ManifestRead::Invalid);
        }
        let Some(pages) = u64_at(off) else {
            return Ok(ManifestRead::Invalid);
        };
        let pages = pages as usize;
        off += 8;
        match pages.checked_mul(8).and_then(|b| off.checked_add(b)) {
            Some(end) if end <= body_len => {}
            _ => return Ok(ManifestRead::Invalid),
        }
        let mut crcs = Vec::with_capacity(pages);
        for p in 0..pages {
            let Some(crc) = u64_at(off + p * 8) else {
                return Ok(ManifestRead::Invalid);
            };
            crcs.push(crc);
        }
        off += pages * 8;
        files.push(crcs);
    }
    let Some(meta_len) = u64_at(off) else {
        return Ok(ManifestRead::Invalid);
    };
    off += 8;
    let meta = match (meta_len as usize).checked_add(off) {
        Some(end) if end == body_len => buf.get(off..end).map(<[u8]>::to_vec),
        _ => None,
    };
    let Some(meta) = meta else {
        return Ok(ManifestRead::Invalid);
    };
    Ok(ManifestRead::Valid(Manifest { epoch, files, meta }))
}

/// The epoch recorded in `dir`'s manifest, or 0 when absent/invalid.
pub fn manifest_epoch(dir: &Path) -> u64 {
    match read_manifest(dir) {
        Ok(ManifestRead::Valid(m)) => m.epoch,
        _ => 0,
    }
}

/// The opaque metadata stored with `dir`'s manifest, or `None` when the
/// manifest is absent/invalid or carries no metadata.
pub fn manifest_meta(dir: &Path) -> Option<Vec<u8>> {
    match read_manifest(dir) {
        Ok(ManifestRead::Valid(m)) if !m.meta.is_empty() => Some(m.meta),
        _ => None,
    }
}

/// Count live slotted records in a raw page image, with structural sanity
/// checks so torn/garbage pages yield `None` instead of nonsense.
fn salvage_rows(bytes: &[u8]) -> Option<u64> {
    debug_assert_eq!(bytes.len(), PAGE_SIZE);
    let u16_at = |off: usize| -> Option<usize> {
        match bytes.get(off..off.saturating_add(2)) {
            Some(&[a, b]) => Some(u16::from_le_bytes([a, b]) as usize),
            _ => None,
        }
    };
    let slot_count = u16_at(0)?;
    let data_start = u16_at(2)?;
    let max_slots = (PAGE_SIZE - HEADER_SIZE) / SLOT_SIZE;
    if slot_count > max_slots || data_start > PAGE_SIZE {
        return None;
    }
    let slots_end = HEADER_SIZE + slot_count * SLOT_SIZE;
    if data_start < slots_end {
        return None;
    }
    let mut live = 0u64;
    for s in 0..slot_count {
        let off = HEADER_SIZE + s * SLOT_SIZE;
        let rec_off = u16_at(off)?;
        let rec_len = u16_at(off + 2)?;
        if rec_len == 0 {
            continue; // tombstone
        }
        if rec_off < data_start || rec_off + rec_len > PAGE_SIZE {
            return None;
        }
        live += 1;
    }
    Some(live)
}

/// Restore `dir` to its most recent durable checkpoint.
///
/// Run **before** attaching a [`crate::disk::FileBackend`] to the directory.
/// Partial byte tails (a torn append), checksum-mismatching pages and pages
/// beyond the manifest's count are truncated; everything the last checkpoint
/// acknowledged is kept. Idempotent: re-running on a recovered directory
/// changes nothing. Without a (valid) manifest only partial byte tails are
/// trimmed, since nothing stronger can be verified.
pub fn recover(dir: &Path) -> Result<RecoveryReport> {
    let mut report = RecoveryReport::default();
    let manifest = match read_manifest(dir)? {
        ManifestRead::NotFound => None,
        ManifestRead::Invalid => {
            report.manifest_found = true;
            None
        }
        ManifestRead::Valid(m) => {
            report.manifest_found = true;
            report.manifest_valid = true;
            report.epoch = m.epoch;
            Some(m)
        }
    };

    for id in 0u32.. {
        let path = path_for(dir, id);
        if !path.exists() {
            break;
        }
        report.files_checked += 1;
        let mut handle = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = handle.metadata()?.len();
        let mut whole = len / PAGE_SIZE as u64;
        if len % PAGE_SIZE as u64 != 0 {
            // A torn append: trailing bytes shorter than a page can never
            // belong to a completed write.
            report.torn_pages += 1;
            report.pages_truncated += 1;
            handle.set_len(whole * PAGE_SIZE as u64)?;
        }

        let covered = manifest
            .as_ref()
            .and_then(|m| m.files.get(id as usize))
            .map(|crcs| crcs.as_slice());

        // First page (in order) that fails verification against the
        // manifest; everything from it on is dropped. Without manifest
        // coverage every whole page is kept.
        let mut keep = whole;
        if let Some(crcs) = covered {
            let checkpointed = (crcs.len() as u64).min(whole);
            keep = checkpointed;
            let mut buf = vec![0u8; PAGE_SIZE];
            for p in 0..checkpointed {
                handle.seek(SeekFrom::Start(p * PAGE_SIZE as u64))?;
                handle.read_exact(&mut buf)?;
                if crcs.get(p as usize).copied() != Some(fnv1a64(&buf)) {
                    report.torn_pages += 1;
                    keep = p;
                    break;
                }
            }
        }

        // Count rows in the pages being dropped (best effort), then in the
        // pages being kept.
        let mut buf = vec![0u8; PAGE_SIZE];
        for p in keep..whole {
            handle.seek(SeekFrom::Start(p * PAGE_SIZE as u64))?;
            handle.read_exact(&mut buf)?;
            report.rows_dropped += salvage_rows(&buf).unwrap_or(0);
        }
        if keep < whole {
            report.pages_truncated += whole - keep;
            handle.set_len(keep * PAGE_SIZE as u64)?;
            whole = keep;
        }
        for p in 0..whole {
            handle.seek(SeekFrom::Start(p * PAGE_SIZE as u64))?;
            handle.read_exact(&mut buf)?;
            report.rows_salvaged += salvage_rows(&buf).unwrap_or(0);
        }
        report.pages_intact += whole;
        handle.sync_all()?;
    }
    if report.files_checked == 0 && report.manifest_found && !report.manifest_valid {
        return Err(Error::storage(
            "recovery: manifest corrupt and no data files to fall back on",
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::Page;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ingot-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_raw_pages(dir: &Path, id: u32, pages: &[Page]) -> Vec<u64> {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path_for(dir, id))
            .unwrap();
        let mut crcs = Vec::new();
        for p in pages {
            f.write_all(p.bytes()).unwrap();
            crcs.push(fnv1a64(p.bytes()));
        }
        crcs
    }

    fn page_with(recs: &[&[u8]]) -> Page {
        let mut p = Page::new();
        for r in recs {
            p.insert_record(r).unwrap();
        }
        p
    }

    #[test]
    fn manifest_roundtrip_and_corruption_detection() {
        let dir = tmpdir("manifest");
        write_manifest(&dir, 7, &[vec![1, 2, 3], vec![]], b"schema-blob").unwrap();
        assert_eq!(manifest_epoch(&dir), 7);
        let ManifestRead::Valid(m) = read_manifest(&dir).unwrap() else {
            panic!("expected valid manifest");
        };
        assert_eq!(m.epoch, 7);
        assert_eq!(m.files, vec![vec![1, 2, 3], vec![]]);
        assert_eq!(m.meta, b"schema-blob");
        assert_eq!(
            manifest_meta(&dir).as_deref(),
            Some(b"schema-blob".as_slice())
        );

        // Flip one byte: the trailer must catch it.
        let path = dir.join(MANIFEST_NAME);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_manifest(&dir).unwrap(),
            ManifestRead::Invalid
        ));
        assert_eq!(manifest_epoch(&dir), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clean_directory_recovers_unchanged() {
        let dir = tmpdir("clean");
        let pages = [page_with(&[b"a", b"b"]), page_with(&[b"c"])];
        let crcs = write_raw_pages(&dir, 0, &pages);
        write_manifest(&dir, 3, &[crcs], b"").unwrap();
        let r = recover(&dir).unwrap();
        assert!(r.manifest_valid);
        assert_eq!(r.epoch, 3);
        assert_eq!(r.pages_intact, 2);
        assert_eq!(r.torn_pages, 0);
        assert_eq!(r.pages_truncated, 0);
        assert_eq!(r.rows_salvaged, 3);
        assert_eq!(r.rows_dropped, 0);
        // Idempotent.
        assert_eq!(recover(&dir).unwrap(), r);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_checkpoint() {
        let dir = tmpdir("torn");
        let pages = [page_with(&[b"keep1", b"keep2"]), page_with(&[b"keep3"])];
        let crcs = write_raw_pages(&dir, 0, &pages);
        write_manifest(&dir, 1, &[crcs], b"").unwrap();
        // Crash simulation: a post-checkpoint append that only half-landed.
        let mut f = OpenOptions::new()
            .append(true)
            .open(path_for(&dir, 0))
            .unwrap();
        let extra = page_with(&[b"lost"]);
        f.write_all(&extra.bytes()[..PAGE_SIZE / 4]).unwrap();
        drop(f);

        let r = recover(&dir).unwrap();
        assert_eq!(r.torn_pages, 1);
        assert!(r.pages_truncated >= 1);
        assert_eq!(r.rows_salvaged, 3);
        assert_eq!(
            std::fs::metadata(path_for(&dir, 0)).unwrap().len(),
            2 * PAGE_SIZE as u64
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checksum_mismatch_truncates_from_first_bad_page() {
        let dir = tmpdir("crc");
        let pages = [
            page_with(&[b"ok"]),
            page_with(&[b"stale1", b"stale2"]),
            page_with(&[b"stale3"]),
        ];
        let crcs = write_raw_pages(&dir, 0, &pages);
        write_manifest(&dir, 9, &[crcs], b"").unwrap();
        // Scribble over page 1 (in-place torn write after the checkpoint).
        let mut f = OpenOptions::new()
            .write(true)
            .open(path_for(&dir, 0))
            .unwrap();
        f.seek(SeekFrom::Start(PAGE_SIZE as u64 + 100)).unwrap();
        f.write_all(&[0xAB; 64]).unwrap();
        drop(f);

        let r = recover(&dir).unwrap();
        assert_eq!(r.torn_pages, 1);
        assert_eq!(r.pages_truncated, 2, "bad page and everything after");
        assert_eq!(r.pages_intact, 1);
        assert_eq!(r.rows_salvaged, 1);
        // Page 2 was readable, its row counts as dropped; page 1's bytes may
        // or may not still parse, so only a lower bound holds.
        assert!(r.rows_dropped >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_manifest_trims_only_partial_tail() {
        let dir = tmpdir("nomanifest");
        write_raw_pages(&dir, 0, &[page_with(&[b"x"])]);
        let mut f = OpenOptions::new()
            .append(true)
            .open(path_for(&dir, 0))
            .unwrap();
        f.write_all(&[1, 2, 3]).unwrap();
        drop(f);
        let r = recover(&dir).unwrap();
        assert!(!r.manifest_found);
        assert_eq!(r.pages_intact, 1);
        assert_eq!(r.torn_pages, 1);
        assert_eq!(r.rows_salvaged, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
