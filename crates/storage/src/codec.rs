//! Row and key codecs.
//!
//! Two encodings live here:
//!
//! * **Row codec** — a compact self-describing serialisation of a [`Row`]
//!   used as the record format of heap pages and as B-Tree payloads.
//! * **Key codec** — a *memcomparable* encoding of key value lists: byte-wise
//!   `memcmp` order of the encoding equals the SQL sort order of the values.
//!   B-Tree nodes compare raw bytes only, which keeps comparisons in the hot
//!   path allocation- and branch-light (per the Rust performance guide).

use ingot_common::{Error, Result, Row, Value};

// ---- row codec --------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL_FALSE: u8 = 4;
const TAG_BOOL_TRUE: u8 = 5;

/// Serialise a row into `out` (cleared first).
pub fn encode_row_into(row: &Row, out: &mut Vec<u8>) {
    out.clear();
    out.reserve(row.byte_size());
    let n = row.len() as u16;
    out.extend_from_slice(&n.to_le_bytes());
    for v in row.values() {
        match v {
            Value::Null => out.push(TAG_NULL),
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(TAG_FLOAT);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(false) => out.push(TAG_BOOL_FALSE),
            Value::Bool(true) => out.push(TAG_BOOL_TRUE),
        }
    }
}

/// Serialise a row, allocating the output buffer.
pub fn encode_row(row: &Row) -> Vec<u8> {
    let mut out = Vec::new();
    encode_row_into(row, &mut out);
    out
}

/// Checked fixed-size copy used by the decoder: a slice of the wrong length
/// becomes an error where `try_into().unwrap()` would panic.
fn arr<const N: usize>(s: &[u8]) -> Result<[u8; N]> {
    s.try_into()
        .map_err(|_| Error::storage("truncated row record"))
}

/// Deserialise a row previously produced by [`encode_row`].
pub fn decode_row(bytes: &[u8]) -> Result<Row> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        match bytes.get(*pos..(*pos).saturating_add(n)) {
            Some(s) => {
                *pos += n;
                Ok(s)
            }
            None => Err(Error::storage("truncated row record")),
        }
    };
    let n = u16::from_le_bytes(arr(take(&mut pos, 2)?)?) as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = match take(&mut pos, 1)? {
            &[t] => t,
            _ => return Err(Error::storage("truncated row record")),
        };
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_INT => Value::Int(i64::from_le_bytes(arr(take(&mut pos, 8)?)?)),
            TAG_FLOAT => Value::Float(f64::from_le_bytes(arr(take(&mut pos, 8)?)?)),
            TAG_STR => {
                let len = u32::from_le_bytes(arr(take(&mut pos, 4)?)?) as usize;
                let raw = take(&mut pos, len)?;
                Value::Str(
                    std::str::from_utf8(raw)
                        .map_err(|_| Error::storage("invalid utf8 in row record"))?
                        .to_owned(),
                )
            }
            TAG_BOOL_FALSE => Value::Bool(false),
            TAG_BOOL_TRUE => Value::Bool(true),
            t => return Err(Error::storage(format!("unknown value tag {t}"))),
        };
        values.push(v);
    }
    Ok(Row::new(values))
}

// ---- memcomparable key codec -------------------------------------------------

const KEY_NULL: u8 = 0x01;
const KEY_BOOL: u8 = 0x02;
const KEY_NUM: u8 = 0x03; // ints and floats share one numeric key space
const KEY_STR: u8 = 0x04;

/// Order-preserving f64 → u64 mapping (flip sign bit for positives, flip all
/// bits for negatives).
fn f64_key(f: f64) -> u64 {
    let bits = f.to_bits();
    if bits & 0x8000_0000_0000_0000 == 0 {
        bits | 0x8000_0000_0000_0000
    } else {
        !bits
    }
}

/// Append a memcomparable encoding of one value.
fn encode_key_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(KEY_NULL),
        Value::Bool(b) => {
            out.push(KEY_BOOL);
            out.push(*b as u8);
        }
        // Ints are encoded through the f64 key space so that a column that
        // mixes Int and Float literals (after coercion this cannot happen in
        // stored data, but what-if keys may mix) still orders correctly.
        // i64 values up to 2^53 round-trip exactly; NREF ids fit comfortably.
        Value::Int(i) => {
            out.push(KEY_NUM);
            out.extend_from_slice(&f64_key(*i as f64).to_be_bytes());
        }
        Value::Float(f) => {
            out.push(KEY_NUM);
            out.extend_from_slice(&f64_key(*f).to_be_bytes());
        }
        Value::Str(s) => {
            out.push(KEY_STR);
            // Escape 0x00 as 0x00 0xFF, terminate with 0x00 0x00 so that
            // prefixes order before extensions.
            for &b in s.as_bytes() {
                if b == 0 {
                    out.extend_from_slice(&[0x00, 0xFF]);
                } else {
                    out.push(b);
                }
            }
            out.extend_from_slice(&[0x00, 0x00]);
        }
    }
}

/// Memcomparable encoding of a composite key.
pub fn encode_key(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.iter().map(Value::byte_size).sum::<usize>() + 4);
    for v in values {
        encode_key_value(v, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row::new(vec![
            Value::Int(-42),
            Value::Float(3.5),
            Value::Str("NF0001".into()),
            Value::Null,
            Value::Bool(true),
        ])
    }

    #[test]
    fn row_roundtrip() {
        let r = row();
        assert_eq!(decode_row(&encode_row(&r)).unwrap(), r);
    }

    #[test]
    fn empty_row_roundtrip() {
        let r = Row::new(vec![]);
        assert_eq!(decode_row(&encode_row(&r)).unwrap(), r);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_row(&[9, 9]).is_err());
        assert!(decode_row(&[1, 0, 99]).is_err());
        assert!(decode_row(&[]).is_err());
    }

    #[test]
    fn key_order_matches_value_order_ints() {
        let vals = [-100i64, -1, 0, 1, 5, 1_000_000];
        for w in vals.windows(2) {
            let a = encode_key(&[Value::Int(w[0])]);
            let b = encode_key(&[Value::Int(w[1])]);
            assert!(a < b, "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn key_order_matches_value_order_floats_and_cross() {
        let a = encode_key(&[Value::Float(-2.5)]);
        let b = encode_key(&[Value::Int(-2)]);
        let c = encode_key(&[Value::Float(2.25)]);
        let d = encode_key(&[Value::Int(3)]);
        assert!(a < b && b < c && c < d);
    }

    #[test]
    fn key_order_strings_prefix() {
        let a = encode_key(&[Value::Str("NF".into())]);
        let b = encode_key(&[Value::Str("NF0".into())]);
        let c = encode_key(&[Value::Str("NG".into())]);
        assert!(a < b && b < c);
    }

    #[test]
    fn null_orders_first() {
        let n = encode_key(&[Value::Null]);
        let i = encode_key(&[Value::Int(i64::MIN / 1024)]);
        let s = encode_key(&[Value::Str(String::new())]);
        assert!(n < i && n < s);
    }

    #[test]
    fn composite_key_component_order() {
        let a = encode_key(&[Value::Str("a".into()), Value::Int(2)]);
        let b = encode_key(&[Value::Str("a".into()), Value::Int(10)]);
        let c = encode_key(&[Value::Str("b".into()), Value::Int(0)]);
        assert!(a < b && b < c);
    }

    #[test]
    fn string_with_nul_byte() {
        let a = encode_key(&[Value::Str("a\0b".into())]);
        let b = encode_key(&[Value::Str("a\0c".into())]);
        let plain = encode_key(&[Value::Str("a".into())]);
        assert!(plain < a && a < b);
    }
}
