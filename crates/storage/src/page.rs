//! Fixed-size pages with little-endian integer accessors and a slotted
//! record layout used by heap files.

use ingot_common::{Error, PageId, Result};

/// Size of every page, in bytes. Matches the classic 8 KiB DBMS page.
pub const PAGE_SIZE: usize = 8192;

/// Byte offset where slot entries begin.
pub(crate) const HEADER_SIZE: usize = 16;
/// Bytes per slot entry: offset (u16) + length (u16).
pub(crate) const SLOT_SIZE: usize = 4;

// Header layout:
//   [0..2)   slot_count   u16
//   [2..4)   data_start   u16 (lowest byte offset used by record data)
//   [4..12)  next_page    u64 (overflow-chain link; PageId::INVALID if none)
//   [12..16) reserved

/// An 8 KiB page.
///
/// The slotted-record helpers (`insert_record` etc.) implement the heap page
/// format; B-Tree nodes use the raw byte accessors and their own layout.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A zeroed page, formatted as an empty slotted page.
    pub fn new() -> Self {
        let mut p = Page {
            data: Box::new([0u8; PAGE_SIZE]),
        };
        p.set_u16(2, PAGE_SIZE as u16); // data_start: data region empty
        p.set_next_page(PageId::INVALID);
        p
    }

    /// Raw bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Raw bytes, mutable.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// Build a page from raw bytes (backend read path).
    pub fn from_bytes(bytes: [u8; PAGE_SIZE]) -> Self {
        Page {
            data: Box::new(bytes),
        }
    }

    // ---- integer accessors -------------------------------------------------
    //
    // Total functions: offsets beyond the page read as zero and writes out of
    // range are ignored. In-range offsets are guaranteed by construction at
    // every call site (header constants, slot offsets below the slot array
    // bound); the checked forms exist so a *corrupt* page read from disk can
    // never panic the engine — it decodes as empty instead and is caught by
    // the recovery checksums.

    /// Read a `u16` at `off` (0 when out of range).
    #[inline]
    pub fn u16_at(&self, off: usize) -> u16 {
        let mut b = [0u8; 2];
        if let Some(src) = self.data.get(off..off + 2) {
            b.copy_from_slice(src);
        }
        u16::from_le_bytes(b)
    }

    /// Write a `u16` at `off` (ignored when out of range).
    #[inline]
    pub fn set_u16(&mut self, off: usize, v: u16) {
        if let Some(dst) = self.data.get_mut(off..off + 2) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Read a `u32` at `off` (0 when out of range).
    #[inline]
    pub fn u32_at(&self, off: usize) -> u32 {
        let mut b = [0u8; 4];
        if let Some(src) = self.data.get(off..off + 4) {
            b.copy_from_slice(src);
        }
        u32::from_le_bytes(b)
    }

    /// Write a `u32` at `off` (ignored when out of range).
    #[inline]
    pub fn set_u32(&mut self, off: usize, v: u32) {
        if let Some(dst) = self.data.get_mut(off..off + 4) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Read a `u64` at `off` (0 when out of range).
    #[inline]
    pub fn u64_at(&self, off: usize) -> u64 {
        let mut b = [0u8; 8];
        if let Some(src) = self.data.get(off..off + 8) {
            b.copy_from_slice(src);
        }
        u64::from_le_bytes(b)
    }

    /// Write a `u64` at `off` (ignored when out of range).
    #[inline]
    pub fn set_u64(&mut self, off: usize, v: u64) {
        if let Some(dst) = self.data.get_mut(off..off + 8) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
    }

    // ---- slotted-page header ----------------------------------------------

    /// Number of slots (including tombstones).
    pub fn slot_count(&self) -> u16 {
        self.u16_at(0)
    }

    fn set_slot_count(&mut self, n: u16) {
        self.set_u16(0, n);
    }

    fn data_start(&self) -> u16 {
        self.u16_at(2)
    }

    fn set_data_start(&mut self, v: u16) {
        self.set_u16(2, v);
    }

    /// The overflow-chain successor of this page.
    pub fn next_page(&self) -> PageId {
        PageId(self.u64_at(4))
    }

    /// Link this page to an overflow successor.
    pub fn set_next_page(&mut self, id: PageId) {
        self.set_u64(4, id.raw());
    }

    fn slot_off(slot: u16) -> usize {
        HEADER_SIZE + slot as usize * SLOT_SIZE
    }

    fn slot(&self, slot: u16) -> (u16, u16) {
        let off = Self::slot_off(slot);
        (self.u16_at(off), self.u16_at(off + 2))
    }

    fn set_slot(&mut self, slot: u16, offset: u16, len: u16) {
        let off = Self::slot_off(slot);
        self.set_u16(off, offset);
        self.set_u16(off + 2, len);
    }

    /// Free bytes available for one more record of `len` bytes (including a
    /// possibly-new slot entry).
    pub fn fits(&self, len: usize) -> bool {
        // Reusing a tombstone slot would need only `len`, but be conservative.
        self.free_space() >= len + SLOT_SIZE
    }

    /// Remaining free bytes in the page (0 on a corrupt header).
    pub fn free_space(&self) -> usize {
        let slots_end = HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE;
        (self.data_start() as usize).saturating_sub(slots_end)
    }

    // ---- record operations --------------------------------------------------

    /// Insert a record, returning its slot number, or `None` if it does not
    /// fit. Tombstoned slots are reused when the record fits their region or
    /// fresh space is available.
    pub fn insert_record(&mut self, rec: &[u8]) -> Option<u16> {
        if rec.len() > PAGE_SIZE - HEADER_SIZE - SLOT_SIZE {
            return None;
        }
        if !self.fits(rec.len()) {
            return None;
        }
        let Some(new_start) = (self.data_start() as usize).checked_sub(rec.len()) else {
            return None; // corrupt data_start; treat as full
        };
        let dst = self.data.get_mut(new_start..new_start + rec.len())?;
        dst.copy_from_slice(rec);
        self.set_data_start(new_start as u16);

        // Reuse a tombstone slot if present, else append a new slot.
        let n = self.slot_count();
        let slot = (0..n).find(|&s| self.slot(s).1 == 0).unwrap_or_else(|| {
            self.set_slot_count(n + 1);
            n
        });
        self.set_slot(slot, new_start as u16, rec.len() as u16);
        Some(slot)
    }

    /// Read the record in `slot`, or `None` for tombstones / out-of-range.
    pub fn record(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if len == 0 {
            return None;
        }
        // Checked: a corrupt slot entry reads as a tombstone, not a panic
        // (also avoids the u16 overflow `off + len` could hit).
        self.data.get(off as usize..off as usize + len as usize)
    }

    /// Tombstone the record in `slot`. The data region is not compacted; the
    /// space is reclaimed only on page rebuild (MODIFY), like a real heap.
    pub fn delete_record(&mut self, slot: u16) -> Result<()> {
        if slot >= self.slot_count() || self.slot(slot).1 == 0 {
            return Err(Error::storage(format!("no record in slot {slot}")));
        }
        self.set_slot(slot, 0, 0);
        Ok(())
    }

    /// Replace the record in `slot` if the new bytes fit in the page
    /// (in-place when not longer than the old record, otherwise appended to
    /// free space). Returns `false` when the page cannot hold the new value.
    pub fn update_record(&mut self, slot: u16, rec: &[u8]) -> Result<bool> {
        if slot >= self.slot_count() || self.slot(slot).1 == 0 {
            return Err(Error::storage(format!("no record in slot {slot}")));
        }
        let (off, len) = self.slot(slot);
        if rec.len() <= len as usize {
            let off = off as usize;
            match self.data.get_mut(off..off + rec.len()) {
                Some(dst) => dst.copy_from_slice(rec),
                None => return Err(Error::storage(format!("corrupt slot {slot}"))),
            }
            self.set_slot(slot, off as u16, rec.len() as u16);
            return Ok(true);
        }
        if self.free_space() < rec.len() {
            return Ok(false);
        }
        let Some(new_start) = (self.data_start() as usize).checked_sub(rec.len()) else {
            return Ok(false);
        };
        match self.data.get_mut(new_start..new_start + rec.len()) {
            Some(dst) => dst.copy_from_slice(rec),
            None => return Ok(false),
        }
        self.set_data_start(new_start as u16);
        self.set_slot(slot, new_start as u16, rec.len() as u16);
        Ok(true)
    }

    /// Iterate over live records as `(slot, bytes)`.
    pub fn records(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| self.record(s).map(|r| (s, r)))
    }

    /// Number of live (non-tombstoned) records.
    pub fn live_records(&self) -> usize {
        self.records().count()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .field("next", &self.next_page())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read_roundtrip() {
        let mut p = Page::new();
        let s1 = p.insert_record(b"hello").unwrap();
        let s2 = p.insert_record(b"world!").unwrap();
        assert_eq!(p.record(s1).unwrap(), b"hello");
        assert_eq!(p.record(s2).unwrap(), b"world!");
        assert_eq!(p.live_records(), 2);
    }

    #[test]
    fn delete_makes_tombstone_and_slot_is_reused() {
        let mut p = Page::new();
        let s1 = p.insert_record(b"aaaa").unwrap();
        let _s2 = p.insert_record(b"bbbb").unwrap();
        p.delete_record(s1).unwrap();
        assert!(p.record(s1).is_none());
        assert_eq!(p.live_records(), 1);
        let s3 = p.insert_record(b"cccc").unwrap();
        assert_eq!(s3, s1, "tombstone slot should be reused");
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = Page::new();
        let rec = [7u8; 128];
        let mut n = 0;
        while p.insert_record(&rec).is_some() {
            n += 1;
        }
        assert!(n >= 60, "8K page should hold at least 60 x 132B, held {n}");
        assert!(!p.fits(128));
        assert!(p.insert_record(&[0u8; PAGE_SIZE]).is_none());
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = Page::new();
        let s = p.insert_record(b"0123456789").unwrap();
        assert!(p.update_record(s, b"abc").unwrap());
        assert_eq!(p.record(s).unwrap(), b"abc");
        assert!(p.update_record(s, b"a-much-longer-record").unwrap());
        assert_eq!(p.record(s).unwrap(), b"a-much-longer-record");
    }

    #[test]
    fn overflow_link_roundtrip() {
        let mut p = Page::new();
        assert!(!p.next_page().is_valid());
        p.set_next_page(PageId(42));
        assert_eq!(p.next_page(), PageId(42));
    }

    #[test]
    fn corrupt_page_is_total_not_panicking() {
        // Every byte 0xFF: slot offsets, lengths and data_start are garbage.
        // All accessors must degrade (empty/ignored), never panic.
        let mut p = Page::from_bytes([0xFF; PAGE_SIZE]);
        assert_eq!(p.u16_at(PAGE_SIZE), 0, "OOB read is zero");
        p.set_u16(PAGE_SIZE, 7); // OOB write ignored
        assert!(p.record(0).is_none(), "corrupt slot reads as tombstone");
        assert_eq!(p.free_space(), 0);
        assert!(p.insert_record(b"x").is_none());
        assert!(p.update_record(0, b"y").is_err());
    }

    #[test]
    fn update_reports_no_space() {
        let mut p = Page::new();
        let s = p.insert_record(&[1u8; 16]).unwrap();
        // Fill the page completely.
        while p.insert_record(&[2u8; 256]).is_some() {}
        let huge = [3u8; 4096];
        assert!(!p.update_record(s, &huge).unwrap());
    }
}
