//! Write-ahead log with group commit.
//!
//! The WAL closes the durability gap left by checkpoint-only recovery: a
//! commit is acknowledged only after its log records are on stable storage
//! (the *durability barrier*), so a crash between checkpoints loses nothing
//! that was acknowledged. Recovery becomes checkpoint-load + replay of the
//! committed suffix (see `ingot-core`); checkpointing is demoted to log
//! truncation behind a safe low-water LSN.
//!
//! ## Record format
//!
//! The log is a flat sequence of length-prefixed, checksummed frames:
//!
//! ```text
//! frame   := len:u32le  crc:u64le  payload[len]
//! payload := kind:u8  lsn:u64le  fields...
//! ```
//!
//! `crc` is the FNV-1a-64 of the payload. LSNs start at 1 and are strictly
//! monotonically increasing; a frame whose LSN does not exceed its
//! predecessor's, whose checksum mismatches, or which is cut short
//! terminates the valid prefix — everything after it is a torn tail from a
//! power cut and is discarded on open (salvage-or-reject, like the page
//! store's manifest recovery).
//!
//! ## Durability model
//!
//! Appends go to the OS (or the in-memory sink) immediately but only become
//! durable at the `synced_len` watermark, advanced by fsync. A simulated
//! power cut (the `crash` fault effect) truncates the sink back to
//! `synced_len`: acknowledged-but-unsynced bytes are exactly what a real
//! power cut eats. After a crash the log is *dead* — every operation fails
//! until a new `Wal` reopens the directory ("reboot").
//!
//! ## Group commit
//!
//! [`GroupCommit`] implements the classic leader/follower protocol: the
//! first committer to find no fsync in flight becomes leader, dallies up to
//! `group_commit_window` for followers to queue behind it, then issues one
//! fsync covering every LSN appended so far. Followers block on a condvar
//! and are released when the batch's fsync completes. Timeouts (never bare
//! waits) make the protocol live even if a leader errors out: a follower
//! that wakes to `syncing == false` with its LSN still undurable simply
//! becomes the next leader.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ingot_common::waits::{WaitEvent, WaitGuard, WaitRegistry, WaitRegistryHandle};
use ingot_common::{fnv1a64, EngineConfig, Error, MonotonicClock, Result, TxnId, WalFsyncMode};
use parking_lot::Mutex;

#[cfg(loom)]
use loom::sync::{Condvar as GcCondvar, Mutex as GcMutex};
#[cfg(not(loom))]
use parking_lot::{Condvar as GcCondvar, Mutex as GcMutex};

use crate::fault::{FaultEffect, FaultOp, FaultPlan};

/// Log sequence number: position of a record in the WAL's total order.
/// LSN 0 is the "nothing" sentinel; real records start at 1.
pub type Lsn = u64;

/// Name of the log file inside a database directory. Deliberately outside
/// the `ingot_NNNN.dat` page-file namespace so manifest recovery ignores it.
pub const WAL_FILE: &str = "ingot.wal";

const KIND_BEGIN: u8 = 1;
const KIND_INSERT: u8 = 2;
const KIND_DELETE: u8 = 3;
const KIND_UPDATE: u8 = 4;
const KIND_COMMIT: u8 = 5;
const KIND_ABORT: u8 = 6;
const KIND_CHECKPOINT: u8 = 7;
const KIND_DDL: u8 = 8;

/// Frame header bytes: `len:u32 + crc:u64`.
const FRAME_HEADER: usize = 4 + 8;

/// One logical WAL record. Row images are stored pre-encoded (the
/// [`crate::codec`] row codec) so the log is self-contained at the storage
/// layer; tables are named by string because table *ids* may be reassigned
/// when DDL is replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Transaction `txn` performed its first mutation.
    Begin {
        /// The transaction id.
        txn: TxnId,
    },
    /// `txn` inserted `row` (encoded) into `table`.
    Insert {
        /// The mutating transaction.
        txn: TxnId,
        /// Target table name.
        table: String,
        /// Encoded row image.
        row: Vec<u8>,
    },
    /// `txn` deleted the row whose encoded image is `old` from `table`.
    Delete {
        /// The mutating transaction.
        txn: TxnId,
        /// Target table name.
        table: String,
        /// Encoded image of the deleted row.
        old: Vec<u8>,
    },
    /// `txn` replaced `old` with `new` in `table`.
    Update {
        /// The mutating transaction.
        txn: TxnId,
        /// Target table name.
        table: String,
        /// Encoded pre-image.
        old: Vec<u8>,
        /// Encoded post-image.
        new: Vec<u8>,
    },
    /// `txn` committed: every earlier record of `txn` must be redone.
    Commit {
        /// The committing transaction.
        txn: TxnId,
        /// The MVCC commit timestamp its versions were stamped with; replay
        /// reconstructs version chains with the same timestamps so
        /// post-recovery snapshots agree with pre-crash ones.
        commit_ts: u64,
    },
    /// `txn` aborted: its records are discarded by replay.
    Abort {
        /// The aborting transaction.
        txn: TxnId,
    },
    /// A checkpoint installed manifest epoch `epoch`: everything at or
    /// below this record's LSN is reflected in the page store. Replay
    /// starts after the last checkpoint whose epoch the manifest reached.
    Checkpoint {
        /// The manifest epoch the checkpoint installed.
        epoch: u64,
    },
    /// A schema change, replayed by re-executing the statement.
    Ddl {
        /// The original DDL statement text.
        sql: String,
    },
}

/// A decoded record together with its LSN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// The record's log sequence number.
    pub lsn: Lsn,
    /// The decoded record.
    pub record: WalRecord,
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Checked fixed-size copy (same idiom as the row codec): a wrong-length
/// slice becomes an error where `try_into().unwrap()` would panic.
fn arr<const N: usize>(s: &[u8]) -> Result<[u8; N]> {
    s.try_into()
        .map_err(|_| Error::storage("truncated wal record"))
}

impl WalRecord {
    /// Encode a full frame (header + payload) for this record at `lsn`.
    fn encode_frame(&self, lsn: Lsn) -> Vec<u8> {
        let mut payload = Vec::with_capacity(32);
        match self {
            WalRecord::Begin { txn } => {
                payload.push(KIND_BEGIN);
                payload.extend_from_slice(&lsn.to_le_bytes());
                payload.extend_from_slice(&txn.raw().to_le_bytes());
            }
            WalRecord::Insert { txn, table, row } => {
                payload.push(KIND_INSERT);
                payload.extend_from_slice(&lsn.to_le_bytes());
                payload.extend_from_slice(&txn.raw().to_le_bytes());
                put_str(&mut payload, table);
                put_bytes(&mut payload, row);
            }
            WalRecord::Delete { txn, table, old } => {
                payload.push(KIND_DELETE);
                payload.extend_from_slice(&lsn.to_le_bytes());
                payload.extend_from_slice(&txn.raw().to_le_bytes());
                put_str(&mut payload, table);
                put_bytes(&mut payload, old);
            }
            WalRecord::Update {
                txn,
                table,
                old,
                new,
            } => {
                payload.push(KIND_UPDATE);
                payload.extend_from_slice(&lsn.to_le_bytes());
                payload.extend_from_slice(&txn.raw().to_le_bytes());
                put_str(&mut payload, table);
                put_bytes(&mut payload, old);
                put_bytes(&mut payload, new);
            }
            WalRecord::Commit { txn, commit_ts } => {
                payload.push(KIND_COMMIT);
                payload.extend_from_slice(&lsn.to_le_bytes());
                payload.extend_from_slice(&txn.raw().to_le_bytes());
                payload.extend_from_slice(&commit_ts.to_le_bytes());
            }
            WalRecord::Abort { txn } => {
                payload.push(KIND_ABORT);
                payload.extend_from_slice(&lsn.to_le_bytes());
                payload.extend_from_slice(&txn.raw().to_le_bytes());
            }
            WalRecord::Checkpoint { epoch } => {
                payload.push(KIND_CHECKPOINT);
                payload.extend_from_slice(&lsn.to_le_bytes());
                payload.extend_from_slice(&epoch.to_le_bytes());
            }
            WalRecord::Ddl { sql } => {
                payload.push(KIND_DDL);
                payload.extend_from_slice(&lsn.to_le_bytes());
                put_str(&mut payload, sql);
            }
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decode one payload (header already validated). Rejects trailing
    /// garbage: the payload must be consumed exactly.
    fn decode_payload(payload: &[u8]) -> Result<WalEntry> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            match payload.get(*pos..(*pos).saturating_add(n)) {
                Some(s) => {
                    *pos += n;
                    Ok(s)
                }
                None => Err(Error::storage("truncated wal record")),
            }
        };
        let kind = match take(&mut pos, 1)? {
            &[k] => k,
            _ => return Err(Error::storage("truncated wal record")),
        };
        let lsn = u64::from_le_bytes(arr(take(&mut pos, 8)?)?);
        let take_u64 =
            |pos: &mut usize| -> Result<u64> { Ok(u64::from_le_bytes(arr(take(pos, 8)?)?)) };
        let take_blob = |pos: &mut usize| -> Result<Vec<u8>> {
            let len = u32::from_le_bytes(arr(take(pos, 4)?)?) as usize;
            Ok(take(pos, len)?.to_vec())
        };
        let take_str = |pos: &mut usize| -> Result<String> {
            let raw = take_blob(pos)?;
            String::from_utf8(raw).map_err(|_| Error::storage("invalid utf8 in wal record"))
        };
        let record = match kind {
            KIND_BEGIN => WalRecord::Begin {
                txn: TxnId(take_u64(&mut pos)?),
            },
            KIND_INSERT => WalRecord::Insert {
                txn: TxnId(take_u64(&mut pos)?),
                table: take_str(&mut pos)?,
                row: take_blob(&mut pos)?,
            },
            KIND_DELETE => WalRecord::Delete {
                txn: TxnId(take_u64(&mut pos)?),
                table: take_str(&mut pos)?,
                old: take_blob(&mut pos)?,
            },
            KIND_UPDATE => WalRecord::Update {
                txn: TxnId(take_u64(&mut pos)?),
                table: take_str(&mut pos)?,
                old: take_blob(&mut pos)?,
                new: take_blob(&mut pos)?,
            },
            KIND_COMMIT => WalRecord::Commit {
                txn: TxnId(take_u64(&mut pos)?),
                commit_ts: take_u64(&mut pos)?,
            },
            KIND_ABORT => WalRecord::Abort {
                txn: TxnId(take_u64(&mut pos)?),
            },
            KIND_CHECKPOINT => WalRecord::Checkpoint {
                epoch: take_u64(&mut pos)?,
            },
            KIND_DDL => WalRecord::Ddl {
                sql: take_str(&mut pos)?,
            },
            k => return Err(Error::storage(format!("unknown wal record kind {k}"))),
        };
        if pos != payload.len() {
            return Err(Error::storage("trailing bytes in wal record"));
        }
        Ok(WalEntry { lsn, record })
    }
}

/// Where the log bytes live.
enum Sink {
    /// In-memory log (simulation-driven engines). Power-cut semantics are
    /// fully modeled; only "reboot" (reopen from disk) is unavailable.
    Memory(Vec<u8>),
    /// A real file, shared by handle so fsync can run outside the state
    /// lock while appends continue.
    File(Arc<File>),
}

/// Mutable log state, guarded by one mutex. Appends mutate it; fsyncs
/// snapshot it, sync outside the lock, then advance the watermarks.
struct WalState {
    sink: Sink,
    /// Bytes handed to the OS (logical end of log).
    len: u64,
    /// Bytes known durable (advanced only by fsync).
    synced_len: u64,
    /// Next LSN to assign.
    next_lsn: Lsn,
    /// Highest LSN covered by a completed durability barrier.
    durable_lsn: Lsn,
    /// LSN of the newest checkpoint record (truncation low-water mark).
    low_water: Lsn,
}

impl WalState {
    fn write_at_end(&mut self, buf: &[u8]) -> Result<()> {
        match &mut self.sink {
            Sink::Memory(v) => {
                v.truncate(self.len as usize);
                v.extend_from_slice(buf);
            }
            Sink::File(file) => {
                let mut f: &File = file;
                f.seek(SeekFrom::Start(self.len))
                    .map_err(|e| Error::Io(format!("wal seek: {e}")))?;
                f.write_all(buf)
                    .map_err(|e| Error::Io(format!("wal write: {e}")))?;
            }
        }
        self.len += buf.len() as u64;
        Ok(())
    }

    fn truncate(&mut self, to: u64) -> Result<()> {
        match &mut self.sink {
            Sink::Memory(v) => v.truncate(to as usize),
            Sink::File(file) => file
                .set_len(to)
                .map_err(|e| Error::Io(format!("wal truncate: {e}")))?,
        }
        self.len = to;
        self.synced_len = self.synced_len.min(to);
        Ok(())
    }

    fn file_handle(&self) -> Option<Arc<File>> {
        match &self.sink {
            Sink::Memory(_) => None,
            Sink::File(f) => Some(Arc::clone(f)),
        }
    }

    fn sync_file(&self) -> Result<()> {
        if let Some(f) = self.file_handle() {
            f.sync_all()
                .map_err(|e| Error::Io(format!("wal fsync: {e}")))?;
        }
        Ok(())
    }
}

/// What salvage found when the log was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Intact records recovered from the valid prefix.
    pub recovered_records: u64,
    /// Bytes of valid prefix kept.
    pub salvaged_bytes: u64,
    /// Torn-tail bytes discarded (short frame, bad CRC, or LSN regression).
    pub discarded_bytes: u64,
}

/// Point-in-time WAL counters, surfaced through `ima$wal`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Highest LSN assigned so far (0 = log empty).
    pub current_lsn: Lsn,
    /// Highest LSN known durable.
    pub durable_lsn: Lsn,
    /// LSN of the newest checkpoint record (truncation low-water mark).
    pub low_water_lsn: Lsn,
    /// Records appended through this handle.
    pub appends: u64,
    /// Bytes appended through this handle.
    pub bytes_written: u64,
    /// Durability barriers (fsyncs or watermark advances) completed.
    pub fsyncs: u64,
    /// Post-checkpoint log truncations completed.
    pub truncations: u64,
    /// Group-commit batches led.
    pub groups: u64,
    /// Commits that rode a group-commit batch (sum of batch sizes).
    pub grouped_commits: u64,
    /// Largest group-commit batch observed.
    pub max_group: u64,
    /// Records redone by the last replay.
    pub replayed_records: u64,
    /// Committed transactions redone by the last replay.
    pub replayed_txns: u64,
    /// Intact records salvaged when the log was opened.
    pub recovered_records: u64,
    /// Torn-tail bytes discarded when the log was opened.
    pub discarded_bytes: u64,
}

#[derive(Default)]
struct WalCounters {
    appends: AtomicU64,
    bytes_written: AtomicU64,
    fsyncs: AtomicU64,
    truncations: AtomicU64,
    replayed_records: AtomicU64,
    replayed_txns: AtomicU64,
    fault_appends: AtomicU64,
    fault_fsyncs: AtomicU64,
    fault_truncates: AtomicU64,
}

/// The write-ahead log.
///
/// Thread-safe: appends serialize on the state lock, fsyncs additionally
/// serialize on a dedicated sync lock (one fsync in flight at a time, like
/// a single log device) and run *outside* the state lock so concurrent
/// appends are never blocked behind the platter.
pub struct Wal {
    state: Mutex<WalState>,
    /// Serializes fsyncs; held across the simulated device delay + fsync.
    sync_lock: Mutex<()>,
    /// Sticky power-cut flag: once set, the log is dead until reopened.
    crashed: AtomicBool,
    /// Set while recovery replays the log (suppresses re-logging).
    replaying: AtomicBool,
    plan: Mutex<FaultPlan>,
    counters: WalCounters,
    group: GroupCommit,
    mode: WalFsyncMode,
    wall: MonotonicClock,
    /// Simulated per-fsync device latency (spun on the wall clock).
    sync_delay_ns: u64,
    /// Records salvaged at open, drained once by recovery.
    recovered: Mutex<Vec<WalEntry>>,
    salvage: SalvageReport,
    /// Wait-event sink, injected by the engine after construction. Unset
    /// (unit tests, recovery probes) the durability barriers charge nothing.
    waits: WaitRegistryHandle,
}

impl Wal {
    /// An in-memory log (no file, no reopen; durability is the watermark).
    pub fn in_memory(config: &EngineConfig) -> Wal {
        Self::from_sink(
            Sink::Memory(Vec::new()),
            config,
            Vec::new(),
            SalvageReport::default(),
            1,
            0,
        )
    }

    /// Open (or create) the log file under `dir`, salvaging the valid
    /// prefix and truncating any torn tail. Records recovered from the
    /// prefix are held for [`Wal::take_recovered`].
    pub fn open_in_dir(dir: &Path, config: &EngineConfig) -> Result<Wal> {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::Io(format!("wal dir {}: {e}", dir.display())))?;
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| Error::Io(format!("wal open {}: {e}", path.display())))?;
        let mut bytes = Vec::new();
        {
            let mut f: &File = &file;
            f.seek(SeekFrom::Start(0))
                .map_err(|e| Error::Io(format!("wal seek: {e}")))?;
            f.read_to_end(&mut bytes)
                .map_err(|e| Error::Io(format!("wal read: {e}")))?;
        }
        let (entries, valid) = Self::scan_valid_prefix(&bytes);
        let salvage = SalvageReport {
            recovered_records: entries.len() as u64,
            salvaged_bytes: valid as u64,
            discarded_bytes: (bytes.len() - valid) as u64,
        };
        if valid < bytes.len() {
            // Reject the torn tail for good: shrink the file to the valid
            // prefix so a second crash-and-reopen sees a clean log.
            file.set_len(valid as u64)
                .map_err(|e| Error::Io(format!("wal truncate: {e}")))?;
            file.sync_all()
                .map_err(|e| Error::Io(format!("wal fsync: {e}")))?;
        }
        let next_lsn = entries.last().map(|e| e.lsn + 1).unwrap_or(1);
        let low_water = entries
            .iter()
            .rev()
            .find_map(|e| match e.record {
                WalRecord::Checkpoint { .. } => Some(e.lsn),
                _ => None,
            })
            .unwrap_or(0);
        Ok(Self::from_sink(
            Sink::File(Arc::new(file)),
            config,
            entries,
            salvage,
            next_lsn,
            low_water,
        ))
    }

    fn from_sink(
        sink: Sink,
        config: &EngineConfig,
        recovered: Vec<WalEntry>,
        salvage: SalvageReport,
        next_lsn: Lsn,
        low_water: Lsn,
    ) -> Wal {
        let len = match &sink {
            Sink::Memory(v) => v.len() as u64,
            Sink::File(_) => salvage.salvaged_bytes,
        };
        Wal {
            state: Mutex::new(WalState {
                sink,
                len,
                synced_len: len,
                next_lsn,
                // Everything that survived open is on disk, hence durable.
                durable_lsn: next_lsn - 1,
                low_water,
            }),
            sync_lock: Mutex::new(()),
            crashed: AtomicBool::new(false),
            replaying: AtomicBool::new(false),
            plan: Mutex::new(FaultPlan::new()),
            counters: WalCounters::default(),
            group: GroupCommit::new(Duration::from_micros(config.group_commit_window_us)),
            mode: config.wal_fsync_mode,
            wall: MonotonicClock::new(),
            sync_delay_ns: config.wal_sync_delay_us * 1_000,
            recovered: Mutex::new(recovered),
            salvage,
            waits: WaitRegistryHandle::new(),
        }
    }

    /// Route durability-barrier accounting to `registry` (`WalFsync` for
    /// the physical sync, `GroupCommitDally` for leader dally + follower
    /// waits). Called once by the engine during wiring.
    pub fn set_wait_registry(&self, registry: Arc<WaitRegistry>) {
        self.group.set_wait_registry(Arc::clone(&registry));
        self.waits.set(registry);
    }

    /// Split `bytes` into its decoded valid prefix and the prefix length.
    fn scan_valid_prefix(bytes: &[u8]) -> (Vec<WalEntry>, usize) {
        let mut entries = Vec::new();
        let mut pos = 0usize;
        let mut prev_lsn: Lsn = 0;
        while let Some(header) = bytes.get(pos..pos + FRAME_HEADER) {
            let (Some(len_slice), Some(crc_slice)) = (header.get(..4), header.get(4..)) else {
                break;
            };
            let (Ok(len_bytes), Ok(crc_bytes)) = (arr::<4>(len_slice), arr::<8>(crc_slice)) else {
                break;
            };
            let len = u32::from_le_bytes(len_bytes) as usize;
            let crc = u64::from_le_bytes(crc_bytes);
            let Some(payload) = bytes.get(pos + FRAME_HEADER..pos + FRAME_HEADER + len) else {
                break;
            };
            if fnv1a64(payload) != crc {
                break;
            }
            let Ok(entry) = WalRecord::decode_payload(payload) else {
                break;
            };
            if entry.lsn <= prev_lsn {
                break;
            }
            prev_lsn = entry.lsn;
            entries.push(entry);
            pos += FRAME_HEADER + len;
        }
        (entries, pos)
    }

    /// Drain the records salvaged at open (recovery calls this once).
    pub fn take_recovered(&self) -> Vec<WalEntry> {
        std::mem::take(&mut *self.recovered.lock())
    }

    /// What salvage found when the log was opened.
    pub fn salvage_report(&self) -> SalvageReport {
        self.salvage
    }

    /// Replace the active fault plan (crash scripting).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.plan.lock() = plan;
    }

    /// The configured fsync mode.
    pub fn mode(&self) -> WalFsyncMode {
        self.mode
    }

    /// True once a simulated power cut has killed the log.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Mark (or unmark) recovery replay in progress. While set, the engine
    /// suppresses re-logging of replayed mutations.
    pub fn set_replaying(&self, on: bool) {
        self.replaying.store(on, Ordering::Release);
    }

    /// True while recovery replay is in progress.
    pub fn is_replaying(&self) -> bool {
        self.replaying.load(Ordering::Acquire)
    }

    /// Record the outcome of a replay pass (surfaced via stats).
    pub fn record_replay(&self, records: u64, txns: u64) {
        self.counters
            .replayed_records
            .store(records, Ordering::Relaxed);
        self.counters.replayed_txns.store(txns, Ordering::Relaxed);
    }

    /// Highest LSN assigned so far (0 if the log is empty).
    pub fn current_lsn(&self) -> Lsn {
        self.state.lock().next_lsn - 1
    }

    /// Highest LSN covered by a completed durability barrier.
    pub fn durable_lsn(&self) -> Lsn {
        self.state.lock().durable_lsn
    }

    /// LSN of the newest checkpoint record (truncation low-water mark).
    pub fn low_water(&self) -> Lsn {
        self.state.lock().low_water
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> WalStats {
        let (current_lsn, durable_lsn, low_water_lsn) = {
            let st = self.state.lock();
            (st.next_lsn - 1, st.durable_lsn, st.low_water)
        };
        let g = self.group.stats();
        WalStats {
            current_lsn,
            durable_lsn,
            low_water_lsn,
            appends: self.counters.appends.load(Ordering::Relaxed),
            bytes_written: self.counters.bytes_written.load(Ordering::Relaxed),
            fsyncs: self.counters.fsyncs.load(Ordering::Relaxed),
            truncations: self.counters.truncations.load(Ordering::Relaxed),
            groups: g.groups,
            grouped_commits: g.grouped_commits,
            max_group: g.max_group,
            replayed_records: self.counters.replayed_records.load(Ordering::Relaxed),
            replayed_txns: self.counters.replayed_txns.load(Ordering::Relaxed),
            recovered_records: self.salvage.recovered_records,
            discarded_bytes: self.salvage.discarded_bytes,
        }
    }

    fn dead() -> Error {
        Error::Io("wal: log is dead after a simulated power cut (reopen to recover)".into())
    }

    /// Count one faultable operation; returns its 1-based index and effect.
    fn observe(&self, op: FaultOp) -> (u64, Option<FaultEffect>) {
        let counter = match op {
            FaultOp::WalFsync => &self.counters.fault_fsyncs,
            FaultOp::WalTruncate => &self.counters.fault_truncates,
            // Only the three WAL ops reach this; anything else would be a
            // plumbing bug, and counting it as an append keeps us panic-free.
            _ => &self.counters.fault_appends,
        };
        let n = counter.fetch_add(1, Ordering::Relaxed) + 1;
        (n, self.plan.lock().effect_for(op, n))
    }

    /// Simulated power cut: unsynced bytes vanish, the log dies.
    fn power_cut(&self, st: &mut WalState) {
        let synced = st.synced_len;
        // Truncation of a real file can hardly fail here; if it does the
        // log is dead anyway and reopen re-salvages from disk truth.
        let _ = st.truncate(synced);
        self.crashed.store(true, Ordering::Release);
    }

    /// Append one record, assigning it the next LSN. The record reaches
    /// the OS but is *not* durable until a barrier covers its LSN.
    pub fn append(&self, record: &WalRecord) -> Result<Lsn> {
        let mut st = self.state.lock();
        if self.is_crashed() {
            return Err(Self::dead());
        }
        let lsn = st.next_lsn;
        let frame = record.encode_frame(lsn);
        let (n, effect) = self.observe(FaultOp::WalAppend);
        match effect {
            None => {
                st.write_at_end(&frame)?;
                st.next_lsn = lsn + 1;
                self.counters.appends.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .bytes_written
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                Ok(lsn)
            }
            Some(FaultEffect::Crash) => {
                self.power_cut(&mut st);
                Err(Error::Io(format!(
                    "wal: simulated power cut after append #{n}"
                )))
            }
            Some(FaultEffect::Torn(keep)) => {
                // Power cut mid-write: unsynced complete frames are lost,
                // but the first `keep` bytes of this frame reach the
                // platter — the torn tail recovery must salvage-or-reject.
                let synced = st.synced_len;
                let _ = st.truncate(synced);
                if let Some(prefix) = frame.get(..keep.min(frame.len())) {
                    let _ = st.write_at_end(prefix);
                    let _ = st.sync_file();
                    st.synced_len = st.len;
                }
                self.crashed.store(true, Ordering::Release);
                Err(Error::Io(format!(
                    "wal: simulated power cut mid-append #{n} (torn tail)"
                )))
            }
            Some(FaultEffect::Permanent) => Err(Error::Io(format!(
                "injected permanent fault on wal_append #{n}"
            ))),
            Some(_) => Err(Error::transient_io(format!(
                "injected transient fault on wal_append #{n}"
            ))),
        }
    }

    /// Durability barrier: make every record up to (at least) `lsn`
    /// durable. Returns the new durable LSN. One fsync runs at a time;
    /// the state lock is *not* held across the device wait, so appends
    /// proceed while the platter spins.
    pub fn sync_to(&self, lsn: Lsn) -> Result<Lsn> {
        // The whole barrier is fsync wait: queueing behind the in-flight
        // fsync on `sync_lock` and the device time itself both count.
        let _wait = WaitGuard::begin(self.waits.get(), WaitEvent::WalFsync);
        let _device = self.sync_lock.lock();
        let (target_len, target_lsn, file) = {
            let st = self.state.lock();
            if st.durable_lsn >= lsn {
                // A barrier that completed while we waited already covers us.
                return Ok(st.durable_lsn);
            }
            if self.is_crashed() {
                return Err(Self::dead());
            }
            (st.len, st.next_lsn - 1, st.file_handle())
        };
        let (n, effect) = self.observe(FaultOp::WalFsync);
        match effect {
            None => {}
            Some(FaultEffect::Crash) => {
                let mut st = self.state.lock();
                self.power_cut(&mut st);
                return Err(Error::Io(format!(
                    "wal: simulated power cut mid-fsync #{n}"
                )));
            }
            Some(FaultEffect::Permanent) => {
                return Err(Error::Io(format!(
                    "injected permanent fault on wal_fsync #{n}"
                )));
            }
            Some(_) => {
                return Err(Error::transient_io(format!(
                    "injected transient fault on wal_fsync #{n}"
                )));
            }
        }
        self.spin_delay();
        if let Some(f) = file {
            f.sync_all()
                .map_err(|e| Error::Io(format!("wal fsync: {e}")))?;
        }
        let mut st = self.state.lock();
        st.synced_len = st.synced_len.max(target_len);
        st.durable_lsn = st.durable_lsn.max(target_lsn);
        self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(st.durable_lsn)
    }

    /// Make the whole log durable (everything appended so far).
    pub fn sync_all(&self) -> Result<Lsn> {
        let last = self.current_lsn();
        if last == 0 {
            return Ok(0);
        }
        self.sync_to(last)
    }

    /// The commit durability barrier in the configured mode: per-commit
    /// fsync (`Always`), leader/follower batched fsync (`Group`), or — the
    /// test-only `Off` mode — no barrier at all.
    pub fn commit_barrier(&self, lsn: Lsn) -> Result<Lsn> {
        match self.mode {
            WalFsyncMode::Off => Ok(lsn),
            WalFsyncMode::Always => self.sync_to(lsn),
            WalFsyncMode::Group => self.group.wait_durable(lsn, || self.sync_to(lsn)),
        }
    }

    /// Demoted checkpoint: rewrite the log as a single checkpoint record.
    ///
    /// Called *after* the page store's manifest for `epoch` is durably
    /// installed — everything at or below `checkpoint_lsn` is then
    /// reflected in pages, so the log prefix is dead weight. Crash-safe in
    /// place: a power cut before the rewrite leaves the full old log
    /// (replay is idempotent), and the manifest already captures the
    /// checkpoint, so no window exists where data is only in the discarded
    /// prefix.
    pub fn truncate_to(&self, checkpoint_lsn: Lsn, epoch: u64) -> Result<()> {
        let _device = self.sync_lock.lock();
        let mut st = self.state.lock();
        if self.is_crashed() {
            return Err(Self::dead());
        }
        let (n, effect) = self.observe(FaultOp::WalTruncate);
        match effect {
            None => {}
            Some(FaultEffect::Crash) => {
                self.power_cut(&mut st);
                return Err(Error::Io(format!(
                    "wal: simulated power cut during truncation #{n}"
                )));
            }
            Some(FaultEffect::Permanent) => {
                return Err(Error::Io(format!(
                    "injected permanent fault on wal_truncate #{n}"
                )));
            }
            Some(_) => {
                return Err(Error::transient_io(format!(
                    "injected transient fault on wal_truncate #{n}"
                )));
            }
        }
        let frame = WalRecord::Checkpoint { epoch }.encode_frame(checkpoint_lsn);
        // The rewrite's fsync is device wait like any barrier: charge it,
        // so checkpoint cost shows up in the wait-event pipeline.
        let _wait = WaitGuard::begin(self.waits.get(), WaitEvent::WalFsync);
        st.truncate(0)?;
        st.write_at_end(&frame)?;
        st.sync_file()?;
        st.synced_len = st.len;
        st.low_water = checkpoint_lsn;
        st.durable_lsn = st.durable_lsn.max(checkpoint_lsn);
        self.counters.truncations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Spin the wall clock for the simulated device latency. A spin (not a
    /// sleep) because `std::thread::sleep` is banned outside daemon/bench
    /// and because sub-millisecond sleeps are wildly imprecise anyway.
    fn spin_delay(&self) {
        if self.sync_delay_ns == 0 {
            return;
        }
        let start = self.wall.now_nanos();
        while self.wall.now_nanos().saturating_sub(start) < self.sync_delay_ns {
            std::hint::spin_loop();
        }
    }
}

/// Group-commit batch counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Batches led (fsyncs issued by a leader on behalf of a group).
    pub groups: u64,
    /// Total commits that rode a batch (sum of batch sizes).
    pub grouped_commits: u64,
    /// Largest batch observed.
    pub max_group: u64,
}

struct GroupState {
    /// Highest LSN the group knows to be durable.
    durable: Lsn,
    /// True while a leader's fsync is in flight.
    syncing: bool,
    /// Committers currently inside `wait_durable`.
    waiters: u64,
}

/// Leader/follower group-commit coordinator.
///
/// The first committer that finds no fsync in flight becomes *leader*: it
/// dallies up to the window (only if followers are actually present — a
/// lone committer pays no added latency), then runs the provided barrier
/// once for everyone queued. Followers wait on the condvar with a timeout,
/// so a leader that errors out cannot strand them: they wake, observe
/// `syncing == false`, and elect themselves.
///
/// Synchronization types are swapped to `loom` shims under `--cfg loom`
/// so the protocol itself is model-checked (no lost wakeups, no commit
/// acknowledged before a covering fsync).
pub struct GroupCommit {
    window: Duration,
    inner: GcMutex<GroupState>,
    cv: GcCondvar,
    groups: AtomicU64,
    grouped: AtomicU64,
    max_group: AtomicU64,
    /// Wait-event sink (`GroupCommitDally`); unset in loom models and unit
    /// tests, where every dally guard collapses to a no-op.
    waits: WaitRegistryHandle,
}

impl GroupCommit {
    /// A coordinator with the given leader dally window.
    pub fn new(window: Duration) -> Self {
        GroupCommit {
            window,
            inner: GcMutex::new(GroupState {
                durable: 0,
                syncing: false,
                waiters: 0,
            }),
            cv: GcCondvar::new(),
            groups: AtomicU64::new(0),
            grouped: AtomicU64::new(0),
            max_group: AtomicU64::new(0),
            waits: WaitRegistryHandle::new(),
        }
    }

    /// Route dally-time accounting to `registry`.
    pub fn set_wait_registry(&self, registry: Arc<WaitRegistry>) {
        self.waits.set(registry);
    }

    fn follower_wait(&self) -> Duration {
        self.window.max(Duration::from_micros(100))
    }

    /// Block until `lsn` is durable, batching behind (or leading) a group
    /// fsync. `sync` is the underlying barrier; it must return the new
    /// durable LSN. Returns the durable LSN covering `lsn`.
    pub fn wait_durable<F: Fn() -> Result<Lsn>>(&self, lsn: Lsn, sync: F) -> Result<Lsn> {
        let mut st = self.inner.lock();
        st.waiters += 1;
        let res = loop {
            if st.durable >= lsn {
                break Ok(st.durable);
            }
            if st.syncing {
                // Follower: the in-flight batch (or the next one) will
                // cover us. Timed wait so a dead leader cannot strand us.
                let _dally = WaitGuard::begin(self.waits.get(), WaitEvent::GroupCommitDally);
                let _ = self.cv.wait_for(&mut st, self.follower_wait());
                continue;
            }
            // Leader. Dally for followers only when someone is actually
            // behind us: a lone committer syncs immediately.
            st.syncing = true;
            if st.waiters > 1 && !self.window.is_zero() {
                let _dally = WaitGuard::begin(self.waits.get(), WaitEvent::GroupCommitDally);
                let _ = self.cv.wait_for(&mut st, self.window);
            }
            let batch = st.waiters;
            drop(st);
            let outcome = sync();
            st = self.inner.lock();
            st.syncing = false;
            self.cv.notify_all();
            match outcome {
                Ok(durable) => {
                    if durable > st.durable {
                        st.durable = durable;
                    }
                    self.groups.fetch_add(1, Ordering::Relaxed);
                    self.grouped.fetch_add(batch, Ordering::Relaxed);
                    self.max_group.fetch_max(batch, Ordering::Relaxed);
                    // Loop: the next check acknowledges us (and any
                    // follower the barrier covered).
                }
                Err(e) => break Err(e),
            }
        };
        st.waiters -= 1;
        drop(st);
        res
    }

    /// Snapshot of the batch counters.
    pub fn stats(&self) -> GroupCommitStats {
        GroupCommitStats {
            groups: self.groups.load(Ordering::Relaxed),
            grouped_commits: self.grouped.load(Ordering::Relaxed),
            max_group: self.max_group.load(Ordering::Relaxed),
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::fault::FaultOp;
    use std::sync::atomic::AtomicU64;

    fn cfg() -> EngineConfig {
        EngineConfig::default()
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "ingot-wal-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { txn: TxnId(7) },
            WalRecord::Insert {
                txn: TxnId(7),
                table: "t".into(),
                row: vec![1, 2, 3],
            },
            WalRecord::Delete {
                txn: TxnId(7),
                table: "t".into(),
                old: vec![4, 5],
            },
            WalRecord::Update {
                txn: TxnId(7),
                table: "t".into(),
                old: vec![6],
                new: vec![7, 8],
            },
            WalRecord::Commit {
                txn: TxnId(7),
                commit_ts: 7,
            },
            WalRecord::Abort { txn: TxnId(8) },
            WalRecord::Checkpoint { epoch: 3 },
            WalRecord::Ddl {
                sql: "create table t (a int)".into(),
            },
        ]
    }

    #[test]
    fn frame_roundtrip_all_kinds() {
        for (i, rec) in sample_records().into_iter().enumerate() {
            let lsn = (i + 1) as Lsn;
            let frame = rec.encode_frame(lsn);
            let payload = &frame[FRAME_HEADER..];
            let entry = WalRecord::decode_payload(payload).unwrap();
            assert_eq!(entry.lsn, lsn);
            assert_eq!(entry.record, rec);
        }
    }

    #[test]
    fn decode_rejects_garbage_and_trailing_bytes() {
        assert!(WalRecord::decode_payload(&[]).is_err());
        assert!(WalRecord::decode_payload(&[99, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        let mut frame = WalRecord::Commit {
            txn: TxnId(1),
            commit_ts: 0,
        }
        .encode_frame(1);
        frame.push(0xAB); // trailing garbage after the payload
        assert!(WalRecord::decode_payload(&frame[FRAME_HEADER..]).is_err());
    }

    #[test]
    fn append_sync_watermarks() {
        let wal = Wal::in_memory(&cfg());
        assert_eq!(wal.current_lsn(), 0);
        let l1 = wal.append(&WalRecord::Begin { txn: TxnId(1) }).unwrap();
        let l2 = wal
            .append(&WalRecord::Commit {
                txn: TxnId(1),
                commit_ts: 0,
            })
            .unwrap();
        assert_eq!((l1, l2), (1, 2));
        assert_eq!(wal.durable_lsn(), 0);
        assert_eq!(wal.sync_to(l2).unwrap(), 2);
        assert_eq!(wal.durable_lsn(), 2);
        // A second barrier over already-durable LSNs is free.
        let before = wal.stats().fsyncs;
        assert_eq!(wal.sync_to(l1).unwrap(), 2);
        assert_eq!(wal.stats().fsyncs, before);
    }

    #[test]
    fn reopen_replays_only_synced_records() {
        let dir = tmpdir("reopen");
        {
            let wal = Wal::open_in_dir(&dir, &cfg()).unwrap();
            wal.append(&WalRecord::Begin { txn: TxnId(1) }).unwrap();
            let l = wal
                .append(&WalRecord::Commit {
                    txn: TxnId(1),
                    commit_ts: 0,
                })
                .unwrap();
            wal.sync_to(l).unwrap();
            // Unsynced append, then a scripted power cut on the next one.
            wal.append(&WalRecord::Begin { txn: TxnId(2) }).unwrap();
            wal.set_fault_plan(FaultPlan::new().with_rule(
                FaultOp::WalAppend,
                4,
                4,
                FaultEffect::Crash,
            ));
            let err = wal
                .append(&WalRecord::Commit {
                    txn: TxnId(2),
                    commit_ts: 0,
                })
                .unwrap_err();
            assert!(!err.is_transient());
            assert!(wal.is_crashed());
            // Dead log: everything fails until reboot.
            assert!(wal.append(&WalRecord::Abort { txn: TxnId(2) }).is_err());
            assert!(wal.sync_all().is_err());
        }
        let wal = Wal::open_in_dir(&dir, &cfg()).unwrap();
        let entries = wal.take_recovered();
        assert_eq!(
            entries
                .iter()
                .map(|e| (e.lsn, e.record.clone()))
                .collect::<Vec<_>>(),
            vec![
                (1, WalRecord::Begin { txn: TxnId(1) }),
                (
                    2,
                    WalRecord::Commit {
                        txn: TxnId(1),
                        commit_ts: 0
                    }
                ),
            ],
            "unsynced records must be gone, synced ones intact"
        );
        assert_eq!(wal.current_lsn(), 2);
        assert_eq!(wal.durable_lsn(), 2);
        // Draining twice yields nothing.
        assert!(wal.take_recovered().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_salvaged_then_rejected() {
        let dir = tmpdir("torn");
        {
            let wal = Wal::open_in_dir(&dir, &cfg()).unwrap();
            let l = wal.append(&WalRecord::Begin { txn: TxnId(1) }).unwrap();
            wal.sync_to(l).unwrap();
            wal.set_fault_plan(FaultPlan::new().with_rule(
                FaultOp::WalAppend,
                2,
                2,
                FaultEffect::Torn(5),
            ));
            assert!(wal
                .append(&WalRecord::Commit {
                    txn: TxnId(1),
                    commit_ts: 0
                })
                .is_err());
            assert!(wal.is_crashed());
        }
        let wal = Wal::open_in_dir(&dir, &cfg()).unwrap();
        let report = wal.salvage_report();
        assert_eq!(report.recovered_records, 1, "only the synced record");
        assert_eq!(report.discarded_bytes, 5, "the torn tail is rejected");
        let entries = wal.take_recovered();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].record, WalRecord::Begin { txn: TxnId(1) });
        // The torn tail was physically removed: a third open is clean.
        drop(wal);
        let wal = Wal::open_in_dir(&dir, &cfg()).unwrap();
        assert_eq!(wal.salvage_report().discarded_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_crash_kills_the_log() {
        let wal = Wal::in_memory(&cfg());
        wal.append(&WalRecord::Begin { txn: TxnId(1) }).unwrap();
        wal.set_fault_plan(FaultPlan::new().with_rule(FaultOp::WalFsync, 1, 1, FaultEffect::Crash));
        assert!(wal.sync_all().is_err());
        assert!(wal.is_crashed());
        assert!(wal
            .append(&WalRecord::Commit {
                txn: TxnId(1),
                commit_ts: 0
            })
            .is_err());
        // The unsynced record was eaten by the power cut.
        assert_eq!(wal.durable_lsn(), 0);
    }

    #[test]
    fn truncation_rewrites_log_to_checkpoint_record() {
        let dir = tmpdir("trunc");
        {
            let wal = Wal::open_in_dir(&dir, &cfg()).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            let last = wal.sync_all().unwrap();
            wal.truncate_to(last, 9).unwrap();
            assert_eq!(wal.low_water(), last);
            assert_eq!(wal.stats().truncations, 1);
            // New appends continue the LSN sequence past the checkpoint.
            let next = wal.append(&WalRecord::Begin { txn: TxnId(9) }).unwrap();
            assert_eq!(next, last + 1);
            wal.sync_all().unwrap();
        }
        let wal = Wal::open_in_dir(&dir, &cfg()).unwrap();
        let entries = wal.take_recovered();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].record, WalRecord::Checkpoint { epoch: 9 });
        assert_eq!(entries[1].record, WalRecord::Begin { txn: TxnId(9) });
        assert_eq!(wal.low_water(), entries[0].lsn);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_crash_preserves_old_log() {
        let dir = tmpdir("trunc-crash");
        let synced;
        {
            let wal = Wal::open_in_dir(&dir, &cfg()).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            synced = wal.sync_all().unwrap();
            wal.set_fault_plan(FaultPlan::new().with_rule(
                FaultOp::WalTruncate,
                1,
                1,
                FaultEffect::Crash,
            ));
            assert!(wal.truncate_to(synced, 9).is_err());
            assert!(wal.is_crashed());
        }
        let wal = Wal::open_in_dir(&dir, &cfg()).unwrap();
        // The full pre-truncation log survives, byte for byte.
        assert_eq!(wal.take_recovered().len(), sample_records().len());
        assert_eq!(wal.current_lsn(), synced);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_append_fault_does_not_advance_lsn() {
        let wal = Wal::in_memory(&cfg());
        wal.set_fault_plan(FaultPlan::new().with_rule(
            FaultOp::WalAppend,
            1,
            1,
            FaultEffect::Transient,
        ));
        let err = wal.append(&WalRecord::Begin { txn: TxnId(1) }).unwrap_err();
        assert!(err.is_transient());
        assert!(!wal.is_crashed());
        // Retry gets the same LSN the failed attempt would have used.
        assert_eq!(wal.append(&WalRecord::Begin { txn: TxnId(1) }).unwrap(), 1);
    }

    #[test]
    fn group_commit_single_committer_syncs_immediately() {
        let wal = Wal::in_memory(&cfg());
        let l = wal
            .append(&WalRecord::Commit {
                txn: TxnId(1),
                commit_ts: 0,
            })
            .unwrap();
        assert_eq!(wal.commit_barrier(l).unwrap(), l);
        let s = wal.stats();
        assert_eq!(s.groups, 1);
        assert_eq!(s.grouped_commits, 1);
        assert_eq!(s.max_group, 1);
        assert_eq!(s.durable_lsn, l);
    }

    #[test]
    fn group_commit_concurrent_committers_all_become_durable() {
        let wal = Arc::new(Wal::in_memory(
            &cfg()
                .with_group_commit_window_us(2_000)
                .with_wal_sync_delay_us(200),
        ));
        let threads = 8;
        let commits_each = 10;
        let failures = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let wal = Arc::clone(&wal);
                let failures = Arc::clone(&failures);
                std::thread::spawn(move || {
                    for i in 0..commits_each {
                        let txn = TxnId((t * 1_000 + i) as u64);
                        let lsn = wal
                            .append(&WalRecord::Commit { txn, commit_ts: 0 })
                            .unwrap();
                        match wal.commit_barrier(lsn) {
                            Ok(d) => assert!(d >= lsn, "ack before durable"),
                            Err(_) => {
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(failures.load(Ordering::Relaxed), 0);
        let s = wal.stats();
        assert_eq!(s.current_lsn, (threads * commits_each) as u64);
        assert_eq!(s.durable_lsn, s.current_lsn);
        assert!(
            s.grouped_commits >= (threads * commits_each) as u64,
            "every commit rides a batch"
        );
    }

    #[test]
    fn off_mode_skips_the_barrier() {
        let wal = Wal::in_memory(&cfg().with_wal_fsync_mode(WalFsyncMode::Off));
        let l = wal
            .append(&WalRecord::Commit {
                txn: TxnId(1),
                commit_ts: 0,
            })
            .unwrap();
        assert_eq!(wal.commit_barrier(l).unwrap(), l);
        // Nothing actually became durable — that is the documented gap.
        assert_eq!(wal.durable_lsn(), 0);
        assert_eq!(wal.stats().fsyncs, 0);
    }

    #[test]
    fn always_mode_syncs_every_commit() {
        let wal = Wal::in_memory(&cfg().with_wal_fsync_mode(WalFsyncMode::Always));
        for i in 1..=3u64 {
            let l = wal
                .append(&WalRecord::Commit {
                    txn: TxnId(i),
                    commit_ts: 0,
                })
                .unwrap();
            assert_eq!(wal.commit_barrier(l).unwrap(), l);
        }
        assert_eq!(wal.stats().fsyncs, 3);
        assert_eq!(
            wal.stats().groups,
            0,
            "always-mode bypasses the coordinator"
        );
    }

    #[test]
    fn salvage_rejects_lsn_regression() {
        // Two frames with non-increasing LSNs: the second terminates the
        // valid prefix even though its checksum is fine.
        let mut bytes = WalRecord::Begin { txn: TxnId(1) }.encode_frame(5);
        bytes.extend_from_slice(
            &WalRecord::Commit {
                txn: TxnId(1),
                commit_ts: 0,
            }
            .encode_frame(5),
        );
        let (entries, valid) = Wal::scan_valid_prefix(&bytes);
        assert_eq!(entries.len(), 1);
        assert!(valid < bytes.len());
    }
}
