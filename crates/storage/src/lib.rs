#![forbid(unsafe_code)]
//! Storage subsystem of the Ingot DBMS.
//!
//! Everything below the executor lives here: fixed-size [`page::Page`]s, the
//! pluggable [`disk::DiskBackend`] (in-memory or file-backed, both with full
//! I/O accounting through the [`model::DiskModel`]), an LRU [`buffer::BufferPool`],
//! [`heap::HeapFile`]s with Ingres-style *main pages + overflow chains*, and a
//! page-based [`btree::BTreeFile`] used both as a table storage structure and
//! for secondary indexes.
//!
//! The paper's evaluation hinges on I/O behaviour (full table scans versus
//! index lookups, overflow-page penalties, the daemon's periodic writes), so
//! every physical read and write is counted and priced by the disk model.

pub mod btree;
pub mod buffer;
pub mod codec;
pub mod disk;
pub mod fault;
pub mod heap;
pub mod model;
pub mod page;
pub mod recovery;
pub mod wal;

pub use btree::BTreeFile;
pub use buffer::{BufferPool, BufferStats};
pub use codec::{decode_row, encode_key, encode_row};
pub use disk::{DiskBackend, FileBackend, FileId, MemoryBackend};
pub use fault::{FaultEffect, FaultInjectingBackend, FaultOp, FaultPlan, FaultRule, FaultStats};
pub use heap::{HeapFile, HeapStats, RowId, VersionMeta, VERSION_HEADER};
pub use model::{DiskModel, IoStats};
pub use page::{Page, PAGE_SIZE};
pub use recovery::{recover, RecoveryReport};
pub use wal::{
    GroupCommit, GroupCommitStats, Lsn, SalvageReport, Wal, WalEntry, WalRecord, WalStats, WAL_FILE,
};

use std::sync::Arc;

use ingot_common::{EngineConfig, Result, SimClock};

/// The storage engine: one disk backend + one shared buffer pool.
///
/// One `StorageEngine` backs one database. Tables and indexes each own a
/// [`FileId`] within it, so the buffer pool models the *database-wide* memory
/// budget exactly like the DBMS cache the paper's 1m-test exercises.
#[derive(Clone)]
pub struct StorageEngine {
    pool: Arc<BufferPool>,
}

impl StorageEngine {
    /// Create a storage engine with an in-memory backend (default for tests
    /// and simulation-driven experiments).
    pub fn in_memory(config: &EngineConfig, clock: SimClock) -> Self {
        let model = DiskModel::new(config, clock);
        let backend: Box<dyn DiskBackend> = Box::new(MemoryBackend::new());
        StorageEngine {
            pool: Arc::new(BufferPool::new(backend, model, config.buffer_pool_pages)),
        }
    }

    /// Create a storage engine writing real files under `dir` (used by the
    /// workload database so the daemon's disk writes are genuine).
    pub fn file_backed(
        dir: impl Into<std::path::PathBuf>,
        config: &EngineConfig,
        clock: SimClock,
    ) -> Result<Self> {
        let backend: Box<dyn DiskBackend> = Box::new(FileBackend::open(dir.into())?);
        Ok(Self::with_backend(backend, config, clock))
    }

    /// Create a storage engine over an arbitrary backend (fault-injection
    /// wrappers, custom stores).
    pub fn with_backend(
        backend: Box<dyn DiskBackend>,
        config: &EngineConfig,
        clock: SimClock,
    ) -> Self {
        let model = DiskModel::new(config, clock);
        StorageEngine {
            pool: Arc::new(BufferPool::new(backend, model, config.buffer_pool_pages)),
        }
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Create a new storage file (one per table / index).
    pub fn create_file(&self) -> Result<FileId> {
        self.pool.create_file()
    }

    /// Cumulative I/O statistics (physical reads/writes, simulated latency).
    pub fn io_stats(&self) -> IoStats {
        self.pool.io_stats()
    }

    /// Buffer-pool statistics (hits, misses, evictions).
    pub fn buffer_stats(&self) -> BufferStats {
        self.pool.stats()
    }

    /// Flush all dirty pages to the backend.
    pub fn flush(&self) -> Result<()> {
        self.pool.flush_all()
    }

    /// Fsync the backend's files (no-op in memory).
    pub fn sync(&self) -> Result<()> {
        self.pool.sync()
    }

    /// Flush every dirty page, then durably checkpoint the backend together
    /// with opaque engine `meta` bytes. Returns the new checkpoint epoch (0
    /// for backends without one).
    pub fn checkpoint(&self, meta: &[u8]) -> Result<u64> {
        self.pool.flush_all()?;
        self.pool.checkpoint(meta)
    }

    /// Metadata stored by the most recent durable checkpoint.
    pub fn checkpoint_meta(&self) -> Result<Option<Vec<u8>>> {
        self.pool.checkpoint_meta()
    }

    /// Epoch of the most recent durable checkpoint (0 when none).
    pub fn checkpoint_epoch(&self) -> u64 {
        self.pool.checkpoint_epoch()
    }

    /// Total pages allocated across all files (on-disk size in pages).
    pub fn total_pages(&self) -> u64 {
        self.pool.total_pages()
    }

    /// Pages allocated to one file.
    pub fn file_pages(&self, file: FileId) -> u64 {
        self.pool.file_pages(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_common::EngineConfig;

    #[test]
    fn engine_creates_files() {
        let eng = StorageEngine::in_memory(&EngineConfig::default(), SimClock::new());
        let f1 = eng.create_file().unwrap();
        let f2 = eng.create_file().unwrap();
        assert_ne!(f1, f2);
        assert_eq!(eng.total_pages(), 0);
    }
}
