//! A page-based B+Tree.
//!
//! Used in two roles, both taken from Ingres:
//!
//! * as the **B-Tree storage structure** a table can be `MODIFY`-ed to (key =
//!   primary key, payload = packed [`crate::heap::RowId`]), which removes the
//!   overflow-chain penalty the analyzer's 10 % rule detects;
//! * as the structure behind **secondary indexes**, which Ingres stores "as
//!   tables that have columns containing the indexed keys and a pointer to
//!   the data page".
//!
//! Keys are memcomparable byte strings (see [`crate::codec::encode_key`]), so
//! node search is raw `memcmp`. Deletion is lazy (no rebalancing); pages the
//! tree abandons are reclaimed only on a rebuild (`MODIFY`), matching the
//! maintenance model of the paper's DBMS.

use std::sync::Arc;

use ingot_common::{Error, Result};
use parking_lot::RwLock;

use crate::buffer::BufferPool;
use crate::disk::FileId;
use crate::page::{Page, PAGE_SIZE};

const META_MAGIC: u32 = 0xB7EE_0001;
const NODE_LEAF: u8 = 1;
const NODE_INTERNAL: u8 = 2;
/// Split a node when its encoding would exceed this many bytes.
const NODE_CAPACITY: usize = PAGE_SIZE - 64;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        next: u64,
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    },
    Internal {
        /// `children.len() == keys.len() + 1`; `keys[i]` is the smallest key
        /// reachable under `children[i + 1]`.
        keys: Vec<Vec<u8>>,
        children: Vec<u64>,
    },
}

const NO_LEAF: u64 = u64::MAX;

fn corrupt(what: &str) -> Error {
    Error::storage(format!("corrupt btree node: {what}"))
}

/// Checked read of `len` bytes at `off` — a corrupt length field becomes an
/// [`Error::Storage`], never a panic.
fn take(bytes: &[u8], off: usize, len: usize) -> Result<&[u8]> {
    bytes
        .get(off..off.saturating_add(len))
        .ok_or_else(|| corrupt("slice out of bounds"))
}

fn u16_le(bytes: &[u8], off: usize) -> Result<u16> {
    match bytes.get(off..off.saturating_add(2)) {
        Some(&[a, b]) => Ok(u16::from_le_bytes([a, b])),
        _ => Err(corrupt("u16 out of bounds")),
    }
}

fn u64_le(bytes: &[u8], off: usize) -> Result<u64> {
    match bytes.get(off..off.saturating_add(8)) {
        Some(&[a, b, c, d, e, f, g, h]) => Ok(u64::from_le_bytes([a, b, c, d, e, f, g, h])),
        _ => Err(corrupt("u64 out of bounds")),
    }
}

fn put(bytes: &mut [u8], off: usize, src: &[u8]) -> Result<()> {
    match bytes.get_mut(off..off.saturating_add(src.len())) {
        Some(dst) => {
            dst.copy_from_slice(src);
            Ok(())
        }
        None => Err(corrupt("write out of bounds")),
    }
}

fn node_type(bytes: &[u8]) -> u8 {
    bytes.first().copied().unwrap_or(0)
}

impl Node {
    fn encoded_size(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                16 + entries
                    .iter()
                    .map(|(k, v)| 4 + k.len() + v.len())
                    .sum::<usize>()
            }
            Node::Internal { keys, .. } => {
                16 + 8 + keys.iter().map(|k| 10 + k.len()).sum::<usize>()
            }
        }
    }

    fn encode(&self, page: &mut Page) -> Result<()> {
        let bytes = page.bytes_mut();
        bytes.fill(0);
        match self {
            Node::Leaf { next, entries } => {
                put(bytes, 0, &[NODE_LEAF])?;
                put(bytes, 1, &(entries.len() as u16).to_le_bytes())?;
                put(bytes, 3, &next.to_le_bytes())?;
                let mut off = 16;
                for (k, v) in entries {
                    put(bytes, off, &(k.len() as u16).to_le_bytes())?;
                    off += 2;
                    put(bytes, off, k)?;
                    off += k.len();
                    put(bytes, off, &(v.len() as u16).to_le_bytes())?;
                    off += 2;
                    put(bytes, off, v)?;
                    off += v.len();
                }
            }
            Node::Internal { keys, children } => {
                put(bytes, 0, &[NODE_INTERNAL])?;
                put(bytes, 1, &(keys.len() as u16).to_le_bytes())?;
                let first = children
                    .first()
                    .ok_or_else(|| corrupt("internal node without children"))?;
                put(bytes, 3, &first.to_le_bytes())?;
                let mut off = 16;
                for (k, child) in keys.iter().zip(children.iter().skip(1)) {
                    put(bytes, off, &(k.len() as u16).to_le_bytes())?;
                    off += 2;
                    put(bytes, off, k)?;
                    off += k.len();
                    put(bytes, off, &child.to_le_bytes())?;
                    off += 8;
                }
            }
        }
        Ok(())
    }

    fn decode(page: &Page) -> Result<Node> {
        let bytes = page.bytes();
        let n = u16_le(bytes, 1)? as usize;
        match node_type(bytes) {
            NODE_LEAF => {
                let next = u64_le(bytes, 3)?;
                let mut entries = Vec::with_capacity(n);
                let mut off = 16;
                for _ in 0..n {
                    let klen = u16_le(bytes, off)? as usize;
                    off += 2;
                    let k = take(bytes, off, klen)?.to_vec();
                    off += klen;
                    let vlen = u16_le(bytes, off)? as usize;
                    off += 2;
                    let v = take(bytes, off, vlen)?.to_vec();
                    off += vlen;
                    entries.push((k, v));
                }
                Ok(Node::Leaf { next, entries })
            }
            NODE_INTERNAL => {
                let mut children = Vec::with_capacity(n + 1);
                children.push(u64_le(bytes, 3)?);
                let mut keys = Vec::with_capacity(n);
                let mut off = 16;
                for _ in 0..n {
                    let klen = u16_le(bytes, off)? as usize;
                    off += 2;
                    keys.push(take(bytes, off, klen)?.to_vec());
                    off += klen;
                    children.push(u64_le(bytes, off)?);
                    off += 8;
                }
                Ok(Node::Internal { keys, children })
            }
            t => Err(Error::storage(format!("invalid btree node type {t}"))),
        }
    }
}

/// A B+Tree over memcomparable keys.
pub struct BTreeFile {
    pool: Arc<BufferPool>,
    file: FileId,
    /// Structure latch: one writer or many readers per operation.
    latch: RwLock<()>,
}

impl BTreeFile {
    /// Create an empty tree (meta page + one empty root leaf).
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        let file = pool.create_file()?;
        let (meta_no, meta) = pool.allocate(file)?;
        debug_assert_eq!(meta_no, 0);
        let (root_no, root) = pool.allocate(file)?;
        {
            let mut guard = root.write();
            Node::Leaf {
                next: NO_LEAF,
                entries: Vec::new(),
            }
            .encode(&mut guard)?;
        }
        pool.mark_dirty(file, root_no);
        {
            let mut guard = meta.write();
            guard.set_u32(0, META_MAGIC);
            guard.set_u64(8, root_no);
            guard.set_u32(16, 1); // height
            guard.set_u64(24, 0); // entries
        }
        pool.mark_dirty(file, meta_no);
        Ok(BTreeFile {
            pool,
            file,
            latch: RwLock::new(()),
        })
    }

    /// Re-attach an existing tree.
    pub fn open(pool: Arc<BufferPool>, file: FileId) -> Result<Self> {
        let meta = pool.fetch(file, 0)?;
        if meta.read().u32_at(0) != META_MAGIC {
            return Err(Error::storage(format!("{file} is not a btree file")));
        }
        drop(meta);
        Ok(BTreeFile {
            pool,
            file,
            latch: RwLock::new(()),
        })
    }

    /// The underlying file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    fn meta(&self) -> Result<(u64, u32, u64)> {
        let meta = self.pool.fetch(self.file, 0)?;
        let guard = meta.read();
        Ok((guard.u64_at(8), guard.u32_at(16), guard.u64_at(24)))
    }

    fn set_meta(&self, root: u64, height: u32, entries: u64) -> Result<()> {
        let meta = self.pool.fetch(self.file, 0)?;
        {
            let mut guard = meta.write();
            guard.set_u64(8, root);
            guard.set_u32(16, height);
            guard.set_u64(24, entries);
        }
        self.pool.mark_dirty(self.file, 0);
        Ok(())
    }

    /// Tree height (1 = root is a leaf). Used by the optimizer's index-probe
    /// cost estimate.
    pub fn height(&self) -> u32 {
        self.meta().map(|(_, h, _)| h).unwrap_or(1)
    }

    /// Number of entries in the tree.
    pub fn entry_count(&self) -> u64 {
        self.meta().map(|(_, _, n)| n).unwrap_or(0)
    }

    /// Pages allocated to the tree (on-disk size).
    pub fn pages(&self) -> u64 {
        self.pool.file_pages(self.file)
    }

    fn read_node(&self, page_no: u64) -> Result<Node> {
        let page = self.pool.fetch(self.file, page_no)?;
        let guard = page.read();
        Node::decode(&guard)
    }

    fn write_node(&self, page_no: u64, node: &Node) -> Result<()> {
        let page = self.pool.fetch(self.file, page_no)?;
        node.encode(&mut page.write())?;
        self.pool.mark_dirty(self.file, page_no);
        Ok(())
    }

    fn alloc_node(&self, node: &Node) -> Result<u64> {
        let (no, page) = self.pool.allocate(self.file)?;
        node.encode(&mut page.write())?;
        self.pool.mark_dirty(self.file, no);
        Ok(no)
    }

    /// Find the leaf page that would contain `key`, returning its page
    /// number and decoded node.
    fn descend(&self, key: &[u8]) -> Result<(u64, Node)> {
        let (mut page_no, _, _) = self.meta()?;
        loop {
            let node = self.read_node(page_no)?;
            match node {
                Node::Leaf { .. } => return Ok((page_no, node)),
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= key);
                    page_no = children
                        .get(idx)
                        .copied()
                        .ok_or_else(|| corrupt("child index out of range"))?;
                }
            }
        }
    }

    /// Upsert. Returns the previous value when `key` was present.
    pub fn insert(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        if 4 + key.len() + value.len() > NODE_CAPACITY - 16 {
            return Err(Error::storage("btree entry exceeds node capacity"));
        }
        let _w = self.latch.write();
        let (root, height, entries) = self.meta()?;
        let (old, split) = self.insert_rec(root, key, value)?;
        if let Some((sep, new_child)) = split {
            let new_root = self.alloc_node(&Node::Internal {
                keys: vec![sep],
                children: vec![root, new_child],
            })?;
            self.set_meta(new_root, height + 1, entries + u64::from(old.is_none()))?;
        } else {
            self.set_meta(root, height, entries + u64::from(old.is_none()))?;
        }
        Ok(old)
    }

    #[allow(clippy::type_complexity)]
    fn insert_rec(
        &self,
        page_no: u64,
        key: &[u8],
        value: &[u8],
    ) -> Result<(Option<Vec<u8>>, Option<(Vec<u8>, u64)>)> {
        let node = self.read_node(page_no)?;
        match node {
            Node::Leaf { next, mut entries } => {
                let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        let e = entries
                            .get_mut(i)
                            .ok_or_else(|| corrupt("leaf entry index out of range"))?;
                        Some(std::mem::replace(&mut e.1, value.to_vec()))
                    }
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), value.to_vec()));
                        None
                    }
                };
                let node = Node::Leaf { next, entries };
                if node.encoded_size() <= NODE_CAPACITY {
                    self.write_node(page_no, &node)?;
                    return Ok((old, None));
                }
                // Split the leaf.
                let Node::Leaf { next, mut entries } = node else {
                    unreachable!()
                };
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries
                    .first()
                    .map(|(k, _)| k.clone())
                    .ok_or_else(|| corrupt("split produced an empty right leaf"))?;
                let right_no = self.alloc_node(&Node::Leaf {
                    next,
                    entries: right_entries,
                })?;
                self.write_node(
                    page_no,
                    &Node::Leaf {
                        next: right_no,
                        entries,
                    },
                )?;
                Ok((old, Some((sep, right_no))))
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                let child = children
                    .get(idx)
                    .copied()
                    .ok_or_else(|| corrupt("child index out of range"))?;
                let (old, split) = self.insert_rec(child, key, value)?;
                if let Some((sep, new_child)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, new_child);
                }
                let node = Node::Internal { keys, children };
                if node.encoded_size() <= NODE_CAPACITY {
                    self.write_node(page_no, &node)?;
                    return Ok((old, None));
                }
                // Split the internal node: the median key moves up.
                let Node::Internal {
                    mut keys,
                    mut children,
                } = node
                else {
                    unreachable!()
                };
                let mid = keys.len() / 2;
                let sep = keys
                    .get(mid)
                    .cloned()
                    .ok_or_else(|| corrupt("split median out of range"))?;
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // the median
                let right_children = children.split_off(mid + 1);
                let right_no = self.alloc_node(&Node::Internal {
                    keys: right_keys,
                    children: right_children,
                })?;
                self.write_node(page_no, &Node::Internal { keys, children })?;
                Ok((old, Some((sep, right_no))))
            }
        }
    }

    /// In-place descent: find the leaf page number for `key` without
    /// decoding nodes (probe hot path — zero allocation until the match).
    fn descend_raw(&self, key: &[u8]) -> Result<u64> {
        let (mut page_no, _, _) = self.meta()?;
        loop {
            let page = self.pool.fetch(self.file, page_no)?;
            let guard = page.read();
            let bytes = guard.bytes();
            if node_type(bytes) == NODE_LEAF {
                return Ok(page_no);
            }
            let n = u16_le(bytes, 1)? as usize;
            let mut child = u64_le(bytes, 3)?;
            let mut off = 16usize;
            for _ in 0..n {
                let klen = u16_le(bytes, off)? as usize;
                off += 2;
                let sep = take(bytes, off, klen)?;
                off += klen;
                let next_child = u64_le(bytes, off)?;
                off += 8;
                if sep <= key {
                    child = next_child;
                } else {
                    break;
                }
            }
            page_no = child;
        }
    }

    /// Walk leaf entries in `[lo, hi]` (inclusive, either bound optional)
    /// in place, calling `f(key, value)` per entry. Allocation-free except
    /// inside `f`. Used by point and probe paths.
    pub fn for_each_in_range(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]),
    ) -> Result<()> {
        let _r = self.latch.read();
        let mut page_no = self.descend_raw(lo.unwrap_or(&[]))?;
        loop {
            let page = self.pool.fetch(self.file, page_no)?;
            let guard = page.read();
            let bytes = guard.bytes();
            if node_type(bytes) != NODE_LEAF {
                return Err(Error::storage("leaf chain hit internal node"));
            }
            let n = u16_le(bytes, 1)? as usize;
            let next = u64_le(bytes, 3)?;
            let mut off = 16usize;
            for _ in 0..n {
                let klen = u16_le(bytes, off)? as usize;
                off += 2;
                let k = take(bytes, off, klen)?;
                off += klen;
                let vlen = u16_le(bytes, off)? as usize;
                off += 2;
                let v = take(bytes, off, vlen)?;
                off += vlen;
                if let Some(lo) = lo {
                    if k < lo {
                        continue;
                    }
                }
                if let Some(hi) = hi {
                    if k > hi {
                        return Ok(());
                    }
                }
                f(k, v);
            }
            if next == NO_LEAF {
                return Ok(());
            }
            page_no = next;
        }
    }

    /// Exact-match lookup (allocation-free descent).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let _r = self.latch.read();
        let page_no = self.descend_raw(key)?;
        let page = self.pool.fetch(self.file, page_no)?;
        let guard = page.read();
        let bytes = guard.bytes();
        let n = u16_le(bytes, 1)? as usize;
        let mut off = 16usize;
        for _ in 0..n {
            let klen = u16_le(bytes, off)? as usize;
            off += 2;
            let k = take(bytes, off, klen)?;
            off += klen;
            let vlen = u16_le(bytes, off)? as usize;
            off += 2;
            match k.cmp(key) {
                std::cmp::Ordering::Less => off += vlen,
                std::cmp::Ordering::Equal => return Ok(Some(take(bytes, off, vlen)?.to_vec())),
                std::cmp::Ordering::Greater => return Ok(None),
            }
        }
        Ok(None)
    }

    /// Remove `key`, returning its value when present. Lazy: no rebalancing.
    pub fn delete(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let _w = self.latch.write();
        let (page_no, node) = self.descend(key)?;
        let Node::Leaf { next, mut entries } = node else {
            unreachable!()
        };
        match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => {
                let (_, v) = entries.remove(i);
                self.write_node(page_no, &Node::Leaf { next, entries })?;
                let (root, height, n) = self.meta()?;
                self.set_meta(root, height, n.saturating_sub(1))?;
                Ok(Some(v))
            }
            Err(_) => Ok(None),
        }
    }

    /// Range scan: all entries with `lo ≤ key ≤ hi` (bounds optional). The
    /// result is materialised leaf-by-leaf; mutations during iteration are
    /// not supported (the executor materialises index probes first anyway).
    pub fn range(&self, lo: Option<&[u8]>, hi: Option<&[u8]>) -> BTreeRange<'_> {
        BTreeRange {
            tree: self,
            state: RangeState::NotStarted {
                lo: lo.map(<[u8]>::to_vec),
            },
            hi: hi.map(<[u8]>::to_vec),
        }
    }

    /// All entries with key starting with `prefix` (used by composite-key
    /// index probes on a leading-column equality).
    pub fn prefix(&self, prefix: &[u8]) -> impl Iterator<Item = Result<(Vec<u8>, Vec<u8>)>> + '_ {
        let p = prefix.to_vec();
        self.range(Some(prefix), None).take_while(move |r| match r {
            Ok((k, _)) => k.starts_with(&p),
            Err(_) => true,
        })
    }
}

enum RangeState {
    NotStarted {
        lo: Option<Vec<u8>>,
    },
    InLeaf {
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        idx: usize,
        next: u64,
    },
    Done,
}

/// Iterator over a key range of a [`BTreeFile`].
pub struct BTreeRange<'a> {
    tree: &'a BTreeFile,
    state: RangeState,
    hi: Option<Vec<u8>>,
}

impl Iterator for BTreeRange<'_> {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match &mut self.state {
                RangeState::NotStarted { lo } => {
                    let lo = lo.take();
                    let _r = self.tree.latch.read();
                    let start_key = lo.clone().unwrap_or_default();
                    let (page_no, node) = match self.tree.descend(&start_key) {
                        Ok(x) => x,
                        Err(e) => {
                            self.state = RangeState::Done;
                            return Some(Err(e));
                        }
                    };
                    let _ = page_no;
                    let Node::Leaf { next, entries } = node else {
                        unreachable!()
                    };
                    let idx = match &lo {
                        Some(lo) => entries.partition_point(|(k, _)| k.as_slice() < lo.as_slice()),
                        None => 0,
                    };
                    self.state = RangeState::InLeaf { entries, idx, next };
                }
                RangeState::InLeaf { entries, idx, next } => {
                    if let Some(entry) = entries.get(*idx) {
                        let (k, v) = entry.clone();
                        *idx += 1;
                        if let Some(hi) = &self.hi {
                            if k.as_slice() > hi.as_slice() {
                                self.state = RangeState::Done;
                                return None;
                            }
                        }
                        return Some(Ok((k, v)));
                    }
                    if *next == NO_LEAF {
                        self.state = RangeState::Done;
                        return None;
                    }
                    let next_no = *next;
                    let _r = self.tree.latch.read();
                    match self.tree.read_node(next_no) {
                        Ok(Node::Leaf { next, entries }) => {
                            self.state = RangeState::InLeaf {
                                entries,
                                idx: 0,
                                next,
                            };
                        }
                        Ok(_) => {
                            self.state = RangeState::Done;
                            return Some(Err(Error::storage("leaf chain hit internal node")));
                        }
                        Err(e) => {
                            self.state = RangeState::Done;
                            return Some(Err(e));
                        }
                    }
                }
                RangeState::Done => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemoryBackend;
    use crate::model::DiskModel;
    use ingot_common::{EngineConfig, SimClock};

    fn tree() -> BTreeFile {
        let cfg = EngineConfig::default();
        let pool = Arc::new(BufferPool::new(
            Box::new(MemoryBackend::new()),
            DiskModel::new(&cfg, SimClock::new()),
            512,
        ));
        BTreeFile::create(pool).unwrap()
    }

    fn k(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_get_small() {
        let t = tree();
        assert!(t.insert(&k(5), b"five").unwrap().is_none());
        assert!(t.insert(&k(1), b"one").unwrap().is_none());
        assert_eq!(t.get(&k(5)).unwrap().unwrap(), b"five");
        assert_eq!(t.get(&k(1)).unwrap().unwrap(), b"one");
        assert!(t.get(&k(9)).unwrap().is_none());
        assert_eq!(t.entry_count(), 2);
    }

    #[test]
    fn upsert_replaces() {
        let t = tree();
        t.insert(&k(1), b"a").unwrap();
        let old = t.insert(&k(1), b"b").unwrap();
        assert_eq!(old.unwrap(), b"a");
        assert_eq!(t.get(&k(1)).unwrap().unwrap(), b"b");
        assert_eq!(t.entry_count(), 1);
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        let t = tree();
        let n = 20_000u64;
        // Insert in a scrambled order to exercise splits everywhere.
        let mut order: Vec<u64> = (0..n).collect();
        let mut state = 88172645463325252u64;
        for i in (1..order.len()).rev() {
            // xorshift shuffle
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        for &i in &order {
            t.insert(&k(i), &i.to_le_bytes()).unwrap();
        }
        assert!(t.height() > 1, "20k entries must split the root");
        assert_eq!(t.entry_count(), n);
        // Full scan is sorted and complete.
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0u64;
        for item in t.range(None, None) {
            let (key, _) = item.unwrap();
            if let Some(p) = &prev {
                assert!(p < &key);
            }
            prev = Some(key);
            count += 1;
        }
        assert_eq!(count, n);
        // Point lookups all succeed.
        for i in (0..n).step_by(997) {
            assert_eq!(t.get(&k(i)).unwrap().unwrap(), i.to_le_bytes());
        }
    }

    #[test]
    fn range_bounds() {
        let t = tree();
        for i in 0..100 {
            t.insert(&k(i), b"x").unwrap();
        }
        let got: Vec<u64> = t
            .range(Some(&k(10)), Some(&k(15)))
            .map(|r| u64::from_be_bytes(r.unwrap().0.try_into().unwrap()))
            .collect();
        assert_eq!(got, vec![10, 11, 12, 13, 14, 15]);
        let from: Vec<u64> = t
            .range(Some(&k(97)), None)
            .map(|r| u64::from_be_bytes(r.unwrap().0.try_into().unwrap()))
            .collect();
        assert_eq!(from, vec![97, 98, 99]);
    }

    #[test]
    fn delete_removes() {
        let t = tree();
        for i in 0..1000 {
            t.insert(&k(i), b"v").unwrap();
        }
        assert_eq!(t.delete(&k(500)).unwrap().unwrap(), b"v");
        assert!(t.get(&k(500)).unwrap().is_none());
        assert!(t.delete(&k(500)).unwrap().is_none());
        assert_eq!(t.entry_count(), 999);
    }

    #[test]
    fn prefix_scan() {
        let t = tree();
        t.insert(b"aa-1", b"1").unwrap();
        t.insert(b"aa-2", b"2").unwrap();
        t.insert(b"ab-1", b"3").unwrap();
        let got: Vec<Vec<u8>> = t.prefix(b"aa").map(|r| r.unwrap().0).collect();
        assert_eq!(got, vec![b"aa-1".to_vec(), b"aa-2".to_vec()]);
    }

    #[test]
    fn reopen_preserves_tree() {
        let cfg = EngineConfig::default();
        let pool = Arc::new(BufferPool::new(
            Box::new(MemoryBackend::new()),
            DiskModel::new(&cfg, SimClock::new()),
            512,
        ));
        let t = BTreeFile::create(Arc::clone(&pool)).unwrap();
        for i in 0..5000u64 {
            t.insert(&k(i), b"v").unwrap();
        }
        let file = t.file_id();
        drop(t);
        let t2 = BTreeFile::open(pool, file).unwrap();
        assert_eq!(t2.entry_count(), 5000);
        assert_eq!(t2.get(&k(4999)).unwrap().unwrap(), b"v");
    }

    #[test]
    fn oversized_entry_is_rejected() {
        let t = tree();
        let huge = vec![0u8; PAGE_SIZE];
        assert!(t.insert(b"k", &huge).is_err());
    }

    #[test]
    fn corrupt_node_errors_instead_of_panicking() {
        let t = tree();
        t.insert(b"k", b"v").unwrap();
        // Scribble over the root leaf: the type byte still says "leaf" but
        // every length field points past the end of the page.
        let (root, _, _) = t.meta().unwrap();
        let page = t.pool.fetch(t.file, root).unwrap();
        {
            let mut g = page.write();
            let b = g.bytes_mut();
            b.fill(0xFF);
            if let Some(first) = b.first_mut() {
                *first = NODE_LEAF;
            }
        }
        assert!(t.get(b"k").is_err());
        assert!(t.range(None, None).next().unwrap().is_err());
        let mut hits = 0;
        assert!(t.for_each_in_range(None, None, |_, _| hits += 1).is_err());
        assert_eq!(hits, 0);
        // And a bogus node type is rejected outright.
        {
            let mut g = page.write();
            if let Some(first) = g.bytes_mut().first_mut() {
                *first = 0x77;
            }
        }
        assert!(t.insert(b"k2", b"v2").is_err());
        assert!(t.delete(b"k").is_err());
    }
}
