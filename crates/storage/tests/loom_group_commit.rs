#![cfg(loom)]
//! Model tests for the [`GroupCommit`] leader/follower coordinator under
//! perturbed schedules.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p ingot-storage --test
//! loom_group_commit`. Each body executes under `loom::model`, which re-runs
//! it across many seeded interleavings (see the loom-shim crate). The two
//! protocol invariants from DESIGN.md are checked directly:
//!
//! 1. **No early acknowledgement** — `wait_durable(lsn, …)` returns `Ok`
//!    only after a barrier whose durable watermark covers `lsn` has run.
//! 2. **No lost wakeups** — every committer terminates, even when a leader's
//!    barrier fails mid-batch; stranded followers self-elect.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use ingot_storage::GroupCommit;
use loom::sync::Arc;
use loom::thread;

const WRITERS: u64 = 4;

/// A shared model of the log device: `appended` is the highest LSN handed
/// out, `synced` the highest LSN a completed barrier has covered.
struct Device {
    appended: AtomicU64,
    synced: AtomicU64,
    barriers: AtomicU64,
}

impl Device {
    fn new() -> Self {
        Device {
            appended: AtomicU64::new(0),
            synced: AtomicU64::new(0),
            barriers: AtomicU64::new(0),
        }
    }

    /// The group barrier: everything appended so far becomes durable.
    fn sync_all(&self) -> u64 {
        self.barriers.fetch_add(1, Ordering::SeqCst);
        let high = self.appended.load(Ordering::SeqCst);
        self.synced.fetch_max(high, Ordering::SeqCst);
        self.synced.load(Ordering::SeqCst)
    }
}

/// Invariant 1: under any interleaving, a committer is acknowledged only
/// once the device's synced watermark covers its LSN — never on the strength
/// of a barrier that ran before its append.
#[test]
fn no_ack_before_covering_fsync() {
    loom::model(|| {
        let gc = Arc::new(GroupCommit::new(Duration::from_micros(50)));
        let dev = Arc::new(Device::new());
        let hs: Vec<_> = (0..WRITERS)
            .map(|_| {
                let gc = Arc::clone(&gc);
                let dev = Arc::clone(&dev);
                thread::spawn(move || {
                    let lsn = dev.appended.fetch_add(1, Ordering::SeqCst) + 1;
                    let durable = {
                        let dev = Arc::clone(&dev);
                        gc.wait_durable(lsn, move || Ok(dev.sync_all())).unwrap()
                    };
                    assert!(durable >= lsn, "ack for {lsn} with watermark {durable}");
                    assert!(
                        dev.synced.load(Ordering::SeqCst) >= lsn,
                        "commit {lsn} acknowledged before a covering barrier"
                    );
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let stats = gc.stats();
        assert!(stats.groups >= 1, "at least one batch must have run");
        assert!(
            stats.groups <= dev.barriers.load(Ordering::SeqCst),
            "counted more groups than barriers actually ran"
        );
        assert!(
            stats.max_group <= WRITERS,
            "a batch cannot hold more committers than exist"
        );
    });
}

/// Invariant 2: a leader whose barrier fails must not strand its followers —
/// they wake, observe the batch is over, self-elect, and complete. Every
/// thread terminates with a definite outcome; the failing leader's error
/// reaches only the failing leader.
#[test]
fn failed_leader_strands_no_followers() {
    loom::model(|| {
        let gc = Arc::new(GroupCommit::new(Duration::from_micros(50)));
        let dev = Arc::new(Device::new());
        let poisoned = Arc::new(AtomicBool::new(true));
        let hs: Vec<_> = (0..WRITERS)
            .map(|_| {
                let gc = Arc::clone(&gc);
                let dev = Arc::clone(&dev);
                let poisoned = Arc::clone(&poisoned);
                thread::spawn(move || {
                    let lsn = dev.appended.fetch_add(1, Ordering::SeqCst) + 1;
                    let res = {
                        let dev = Arc::clone(&dev);
                        let poisoned = Arc::clone(&poisoned);
                        gc.wait_durable(lsn, move || {
                            // The first barrier to run dies; later ones heal.
                            if poisoned.swap(false, Ordering::SeqCst) {
                                Err(ingot_common::Error::Io("injected barrier fault".into()))
                            } else {
                                Ok(dev.sync_all())
                            }
                        })
                    };
                    match &res {
                        Ok(durable) => {
                            assert!(*durable >= lsn);
                            assert!(
                                dev.synced.load(Ordering::SeqCst) >= lsn,
                                "commit {lsn} acknowledged before a covering barrier"
                            );
                        }
                        // Only the leader that ran the poisoned barrier may
                        // see the error — and it must not be acknowledged.
                        Err(e) => assert!(e.to_string().contains("injected barrier fault")),
                    }
                    res.is_ok()
                })
            })
            .collect();
        let outcomes: Vec<bool> = hs.into_iter().map(|h| h.join().unwrap()).collect();
        let failed = outcomes.iter().filter(|ok| !**ok).count();
        assert!(
            failed <= 1,
            "exactly one committer ran the poisoned barrier; {failed} failed"
        );
        assert!(
            outcomes.iter().filter(|ok| **ok).count() >= WRITERS as usize - 1,
            "followers must self-elect after a leader failure"
        );
    });
}
