//! Property-based tests of the storage layer: the B+Tree against a model,
//! codec round trips, memcomparable key ordering, and heap behaviour.

use std::collections::BTreeMap;
use std::sync::Arc;

use ingot_common::{EngineConfig, Row, SimClock, Value};
use ingot_storage::{
    decode_row, encode_key, encode_row, BTreeFile, BufferPool, DiskModel, HeapFile, MemoryBackend,
};
use proptest::prelude::*;

fn pool() -> Arc<BufferPool> {
    let cfg = EngineConfig::default();
    Arc::new(BufferPool::new(
        Box::new(MemoryBackend::new()),
        DiskModel::new(&cfg, SimClock::new()),
        256,
    ))
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN is normalised away at higher layers.
        (-1.0e12f64..1.0e12).prop_map(Value::Float),
        "[a-zA-Z0-9_%' ]{0,24}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    prop::collection::vec(arb_value(), 0..8).prop_map(Row::new)
}

/// Comparable values for key-order testing (no NULL-vs-NULL subtleties,
/// single type class per comparison).
fn arb_ordkey() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1i64 << 50..1i64 << 50).prop_map(Value::Int),
        (-1.0e12f64..1.0e12).prop_map(Value::Float),
        "[a-z]{0,12}".prop_map(Value::Str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn row_codec_roundtrip(row in arb_row()) {
        let encoded = encode_row(&row);
        let decoded = decode_row(&encoded).unwrap();
        prop_assert_eq!(decoded, row);
    }

    #[test]
    fn key_encoding_preserves_order(a in arb_ordkey(), b in arb_ordkey()) {
        let ka = encode_key(std::slice::from_ref(&a));
        let kb = encode_key(std::slice::from_ref(&b));
        let vord = a.cmp(&b);
        let kord = ka.cmp(&kb);
        // Byte order must agree with value order whenever values differ.
        if vord != std::cmp::Ordering::Equal {
            prop_assert_eq!(kord, vord, "{:?} vs {:?}", a, b);
        }
    }

    #[test]
    fn composite_key_order_is_lexicographic(
        a1 in -1000i64..1000, a2 in -1000i64..1000,
        b1 in -1000i64..1000, b2 in -1000i64..1000,
    ) {
        let ka = encode_key(&[Value::Int(a1), Value::Int(a2)]);
        let kb = encode_key(&[Value::Int(b1), Value::Int(b2)]);
        prop_assert_eq!(ka.cmp(&kb), (a1, a2).cmp(&(b1, b2)));
    }

    #[test]
    fn btree_matches_model(
        ops in prop::collection::vec(
            (0u8..3, prop::collection::vec(any::<u8>(), 1..12), any::<u16>()),
            1..200,
        )
    ) {
        let tree = BTreeFile::create(pool()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (op, key, val) in ops {
            let val = val.to_le_bytes().to_vec();
            match op {
                0 => {
                    let old = tree.insert(&key, &val).unwrap();
                    let model_old = model.insert(key, val);
                    prop_assert_eq!(old, model_old);
                }
                1 => {
                    let got = tree.get(&key).unwrap();
                    prop_assert_eq!(got.as_ref(), model.get(&key));
                }
                _ => {
                    let got = tree.delete(&key).unwrap();
                    let model_got = model.remove(&key);
                    prop_assert_eq!(got, model_got);
                }
            }
            prop_assert_eq!(tree.entry_count(), model.len() as u64);
        }
        // Full scan agrees with the model, in order.
        let scanned: Vec<(Vec<u8>, Vec<u8>)> =
            tree.range(None, None).map(|r| r.unwrap()).collect();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.into_iter().collect();
        prop_assert_eq!(scanned, expected);
    }

    #[test]
    fn btree_range_matches_model(
        keys in prop::collection::btree_set(0u32..5000, 1..300),
        lo in 0u32..5000,
        span in 0u32..1000,
    ) {
        let tree = BTreeFile::create(pool()).unwrap();
        for &k in &keys {
            tree.insert(&k.to_be_bytes(), b"v").unwrap();
        }
        let hi = lo.saturating_add(span);
        let got: Vec<u32> = tree
            .range(Some(&lo.to_be_bytes()), Some(&hi.to_be_bytes()))
            .map(|r| u32::from_be_bytes(r.unwrap().0.try_into().unwrap()))
            .collect();
        let expected: Vec<u32> = keys.iter().copied().filter(|&k| k >= lo && k <= hi).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn heap_preserves_all_rows(rows in prop::collection::vec(arb_row(), 1..120)) {
        let heap = HeapFile::create(pool(), 2).unwrap();
        let mut ids = Vec::new();
        for row in &rows {
            ids.push(heap.insert(row).unwrap());
        }
        for (id, row) in ids.iter().zip(&rows) {
            prop_assert_eq!(&heap.get(*id).unwrap(), row);
        }
        let scanned: Vec<Row> = heap.scan().map(|r| r.unwrap().1).collect();
        prop_assert_eq!(scanned, rows);
    }

    #[test]
    fn heap_delete_is_exact(
        rows in prop::collection::vec(arb_row(), 1..60),
        to_delete in prop::collection::vec(any::<prop::sample::Index>(), 0..20),
    ) {
        let heap = HeapFile::create(pool(), 1).unwrap();
        let ids: Vec<_> = rows.iter().map(|r| heap.insert(r).unwrap()).collect();
        let mut deleted = std::collections::HashSet::new();
        for idx in to_delete {
            let i = idx.index(ids.len());
            if deleted.insert(i) {
                heap.delete(ids[i]).unwrap();
            }
        }
        let survivors: Vec<Row> = heap.scan().map(|r| r.unwrap().1).collect();
        let expected: Vec<Row> = rows
            .iter()
            .enumerate()
            .filter(|(i, _)| !deleted.contains(i))
            .map(|(_, r)| r.clone())
            .collect();
        prop_assert_eq!(heap.row_count() as usize, expected.len());
        prop_assert_eq!(survivors, expected);
    }
}
