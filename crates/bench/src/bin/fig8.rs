//! Figure 8 — "Locks Diagram".
//!
//! Drives a contended multi-session workload (explicit transactions updating
//! two tables in opposite orders), samples the locking system through the
//! statistics sensor, and renders the analyzer's locks diagram: locks in use
//! over time with lock-wait (`W`) and deadlock (`D`) indicators.

// Bench pacing: sleeps model client think-time and sampling cadence.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ingot_analyzer::{report::build_locks_diagram, WorkloadView};
use ingot_bench::{header, Scale};
use ingot_common::EngineConfig;
use ingot_core::Engine;

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 8",
        "Locks Diagram (locks, waits, deadlocks over time)",
        &scale,
    );

    let config = EngineConfig {
        lock_timeout_ms: 500,
        ..EngineConfig::monitoring()
    };
    let engine = Engine::builder().config(config).build().unwrap();
    {
        let s = engine.open_session();
        s.execute("create table acc_a (id int not null primary key, v int)")
            .unwrap();
        s.execute("create table acc_b (id int not null primary key, v int)")
            .unwrap();
        for i in 0..50 {
            s.execute(&format!("insert into acc_a values ({i}, 0)"))
                .unwrap();
            s.execute(&format!("insert into acc_b values ({i}, 0)"))
                .unwrap();
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let n_workers = 4;
    let mut handles = Vec::new();
    for w in 0..n_workers {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let session = engine.open_session();
            let (first, second) = if w % 2 == 0 {
                ("acc_a", "acc_b")
            } else {
                ("acc_b", "acc_a")
            };
            let mut i = 0u64;
            let mut deadlocks = 0u64;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                let id = i % 50;
                if session.begin().is_err() {
                    continue;
                }
                let a = session.execute(&format!("update {first} set v = v + 1 where id = {id}"));
                std::thread::sleep(Duration::from_millis(2));
                let b = session.execute(&format!("update {second} set v = v + 1 where id = {id}"));
                match (a, b) {
                    (Ok(_), Ok(_)) => {
                        let _ = session.commit();
                    }
                    _ => {
                        deadlocks += 1;
                        // The deadlock victim's transaction was aborted by
                        // the engine; a leftover open txn is rolled back.
                        let _ = session.rollback();
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
            deadlocks
        }));
    }

    // Sample the statistics sensor every 50 ms for ~3 s, advancing the
    // simulated clock so the diagram has a time axis.
    let samples = 40;
    for _ in 0..samples {
        std::thread::sleep(Duration::from_millis(50));
        engine.sim_clock().advance_secs(30); // one "daemon interval" per tick
        engine.sample_statistics();
    }
    stop.store(true, Ordering::Relaxed);
    let mut victim_count = 0u64;
    for h in handles {
        victim_count += h.join().expect("worker");
    }

    let view = WorkloadView::from_monitor(engine.monitor().expect("monitor"));
    let diagram = build_locks_diagram(&view);
    println!("\n{}", diagram.render());

    let locks = engine.locks().stats();
    println!("lock-manager totals:");
    println!("  granted: {}", locks.granted_total);
    println!("  waits:   {}", locks.waits_total);
    println!(
        "  deadlocks detected: {} (worker-observed victims: {victim_count})",
        locks.deadlocks_total
    );
    println!(
        "\npaper shape: lock usage fluctuates with load; wait and deadlock markers \
         point the DBA at contention windows"
    );
    assert!(locks.waits_total > 0, "contention must produce waits");
}
