//! Plan-cache payoff — repeated-template throughput with the shared plan
//! cache on vs. off.
//!
//! Prepares one statement per template and executes it in a tight loop with
//! fresh parameter bindings. With the cache enabled every execution after
//! the first is a hit (bind values are substituted into the cached plan);
//! with `plan_cache_capacity(0)` the identical code path re-parses and
//! re-optimizes on every call. The ratio between the two is the cache's
//! payoff, and the join-template speedup is the headline claim checked at
//! the bottom (`>= 2x`). Numbers land in `results/plan_cache.json`
//! (override the directory with `INGOT_RESULTS_DIR`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use ingot_bench::{best_of, header, Scale};
use ingot_common::{EngineConfig, Value};
use ingot_core::Engine;

const ROWS: i64 = 2000;

const TEMPLATES: [(&str, &str); 3] = [
    (
        "point_select",
        "select name, len from protein where nref_id = $1",
    ),
    (
        "join",
        "select p.name, o.taxon_id from protein p \
         join organism o on p.nref_id = o.nref_id where p.nref_id = $1",
    ),
    ("update", "update protein set len = $2 where nref_id = $1"),
];

struct Cell {
    template: &'static str,
    executions: u64,
    cached_ms: f64,
    uncached_ms: f64,
    cached_stmts_per_sec: f64,
    uncached_stmts_per_sec: f64,
    speedup: f64,
}

fn build_engine(plan_cache_capacity: usize) -> Arc<Engine> {
    let engine = Engine::builder()
        .config(EngineConfig::monitoring().with_statement_capacity(4096))
        .plan_cache_capacity(plan_cache_capacity)
        .build()
        .expect("in-memory engine");
    let s = engine.open_session();
    s.execute("create table protein (nref_id int not null primary key, name text, len int)")
        .unwrap();
    s.execute("create table organism (nref_id int not null, taxon_id int)")
        .unwrap();
    for i in 0..ROWS {
        s.execute(&format!(
            "insert into protein values ({i}, 'p{i}', {})",
            i % 50
        ))
        .unwrap();
        s.execute(&format!("insert into organism values ({i}, {})", i % 20))
            .unwrap();
    }
    // Keyed access paths: the templates are point lookups, so execution is
    // a cheap probe and the parse+bind+optimize work the cache elides is
    // the bulk of each uncached round.
    s.execute("create index organism_nref on organism (nref_id)")
        .unwrap();
    s.execute("modify protein to btree").unwrap();
    s.execute("create statistics on protein").unwrap();
    s.execute("create statistics on organism").unwrap();
    engine
}

/// Execute `template` `n` times through one prepared statement, binding a
/// fresh key each round. Identical code path for both engines — only the
/// cache capacity differs.
fn run_template(engine: &Arc<Engine>, template: &str, n: u64) -> Duration {
    let session = engine.open_session();
    let prepared = session.prepare(template).unwrap();
    let two_params = prepared.param_count() == 2;
    let start = Instant::now();
    for i in 0..n {
        let key = Value::Int((i as i64) % ROWS);
        let r = if two_params {
            prepared.execute(&[key, Value::Int((i % 50) as i64)])
        } else {
            prepared.execute(&[key])
        };
        r.unwrap();
    }
    start.elapsed()
}

fn main() {
    let scale = Scale::from_env();
    header(
        "Plan cache",
        "repeated-template throughput, cache on vs. off",
        &scale,
    );
    let executions = (scale.n_simple / 2).max(500);

    let cached_engine = build_engine(256);
    let uncached_engine = build_engine(0);

    println!(
        "\n{:<14} {:>12} {:>12} {:>14} {:>14} {:>9}",
        "template", "cached_ms", "uncached_ms", "cached/s", "uncached/s", "speedup"
    );
    let mut cells: Vec<Cell> = Vec::new();
    for (name, template) in TEMPLATES {
        let cached = best_of(scale.repeats, || {
            run_template(&cached_engine, template, executions)
        });
        let uncached = best_of(scale.repeats, || {
            run_template(&uncached_engine, template, executions)
        });
        let cached_tput = executions as f64 / cached.as_secs_f64();
        let uncached_tput = executions as f64 / uncached.as_secs_f64();
        let speedup = cached_tput / uncached_tput;
        println!(
            "{:<14} {:>12.1} {:>12.1} {:>14.0} {:>14.0} {:>8.2}x",
            name,
            cached.as_secs_f64() * 1e3,
            uncached.as_secs_f64() * 1e3,
            cached_tput,
            uncached_tput,
            speedup
        );
        cells.push(Cell {
            template: name,
            executions,
            cached_ms: cached.as_secs_f64() * 1e3,
            uncached_ms: uncached.as_secs_f64() * 1e3,
            cached_stmts_per_sec: cached_tput,
            uncached_stmts_per_sec: uncached_tput,
            speedup,
        });
    }

    let stats = cached_engine.plan_cache_stats();
    println!(
        "\ncache counters: {} hits, {} misses, {} entries",
        stats.hits, stats.misses, stats.entries
    );

    let json = render_json(&scale, &cells, stats.hits, stats.misses);
    let dir = std::env::var("INGOT_RESULTS_DIR")
        .unwrap_or_else(|_| format!("{}/../../results", env!("CARGO_MANIFEST_DIR")));
    let path = format!("{dir}/plan_cache.json");
    std::fs::write(&path, json).expect("write results JSON");
    println!("wrote {path}");

    // The cache must actually be doing the work the speedup claims.
    assert!(
        stats.hits >= executions,
        "cached run should hit on (nearly) every execution (got {} hits)",
        stats.hits
    );
    let join = cells
        .iter()
        .find(|c| c.template == "join")
        .expect("join cell");
    assert!(
        join.speedup >= 2.0,
        "cached repeated-template throughput must be at least 2x the \
         uncached path on the join template (got {:.2}x)",
        join.speedup
    );
    let point = cells
        .iter()
        .find(|c| c.template == "point_select")
        .expect("point_select cell");
    assert!(
        point.speedup >= 1.3,
        "the cache must pay off even on the cheapest template \
         (got {:.2}x on point_select)",
        point.speedup
    );
}

/// Hand-rolled JSON (the workspace deliberately has no serde dependency).
fn render_json(scale: &Scale, cells: &[Cell], hits: u64, misses: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"plan_cache\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", scale.name));
    out.push_str(&format!("  \"repeats\": {},\n", scale.repeats));
    out.push_str(&format!("  \"table_rows\": {ROWS},\n"));
    out.push_str(&format!("  \"cache_hits\": {hits},\n"));
    out.push_str(&format!("  \"cache_misses\": {misses},\n"));
    out.push_str(
        "  \"model\": \"one prepared statement per template, fresh binds per execution\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"template\": \"{}\", \"executions\": {}, \
             \"cached_ms\": {:.2}, \"uncached_ms\": {:.2}, \
             \"cached_stmts_per_sec\": {:.1}, \"uncached_stmts_per_sec\": {:.1}, \
             \"speedup\": {:.3}}}{}\n",
            c.template,
            c.executions,
            c.cached_ms,
            c.uncached_ms,
            c.cached_stmts_per_sec,
            c.uncached_stmts_per_sec,
            c.speedup,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
