//! Figure 7 — "Analyser Results".
//!
//! Compares three configurations on the 50-query workload:
//!
//! * **Unoptimised** — freshly loaded NREF database, default heap storage;
//! * **Manually** — the reference index set + `MODIFY … TO BTREE` on all six
//!   tables + statistics everywhere (the paper's DBA baseline: 33 indexes,
//!   DB grows 33 → 65 GB, runtime drops to ~60 %);
//! * **Analyser** — whatever the analyzer recommends from the recorded
//!   workload (paper: 12 indexes, DB grows to 53 GB only, runtime ~62 %).
//!
//! Reports both wall-clock and *modelled* time (simulated disk latency +
//! tuple CPU), plus database size and index count.

use std::time::Duration;

use ingot_analyzer::{Analyzer, Recommendation, WorkloadView};
use ingot_bench::{build_instance_with, header, pages_to_mib, run_statements, Scale, Setup};
use ingot_core::{Engine, Session};
use ingot_workload::{analytic_queries, nref_schema_ddl, reference_indexes};

struct Outcome {
    wall: Duration,
    modelled_ms: f64,
    phys_reads: u64,
    pages: u64,
    indexes: usize,
}

/// Run the 50 queries measuring wall time, modelled time (simulated disk
/// latency + tuple CPU) and physical page reads. The buffer pool is dropped
/// first so the run starts cold, like the paper's larger-than-memory
/// database.
fn measure(engine: &std::sync::Arc<Engine>, session: &Session, queries: &[String]) -> Outcome {
    // Warm-up pass + best-of-2 for wall-clock stability; modelled time and
    // physical reads come from the final cold-started pass.
    for q in queries.iter().take(5) {
        session.execute(q).expect("warmup");
    }
    engine.catalog().read().pool().clear().expect("clear pool");
    let sim0 = engine.sim_clock().now_nanos();
    let io0 = engine.io_stats();
    let cpu_ns = engine.config().cpu_tuple_ns;
    let t0 = std::time::Instant::now();
    let mut cpu_tuples = 0f64;
    for q in queries {
        let r = session.execute(q).expect("query");
        cpu_tuples += r.actual_cost.cpu;
    }
    let wall = t0.elapsed();
    let io_ns = engine.sim_clock().now_nanos() - sim0;
    let phys_reads = engine.io_stats().delta_since(&io0).reads();
    let catalog = engine.catalog().read();
    let indexes = catalog.indexes().filter(|i| !i.meta.is_virtual).count();
    Outcome {
        wall,
        modelled_ms: (io_ns as f64 + cpu_tuples * cpu_ns as f64) / 1e6,
        phys_reads,
        pages: catalog.total_data_pages(),
        indexes,
    }
}

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 7",
        "Analyser Results (Unoptimised / Manually / Analyser)",
        &scale,
    );
    let queries = analytic_queries(&scale.nref);

    // --- Unoptimised -----------------------------------------------------------
    eprintln!("-- Unoptimised instance…");
    let unopt = build_instance_with(Setup::Original, &scale, false);
    let s = unopt.engine.open_session();
    let base = measure(&unopt.engine, &s, &queries);
    drop(s);

    // --- Manual optimization ----------------------------------------------------
    eprintln!("-- Manually optimized instance…");
    let manual = build_instance_with(Setup::Original, &scale, false);
    let s = manual.engine.open_session();
    let table_names: Vec<&str> = nref_schema_ddl()
        .iter()
        .map(|ddl| ddl.split_whitespace().nth(2).expect("table name"))
        .collect();
    let t0 = std::time::Instant::now();
    for t in &table_names {
        s.execute(&format!("create statistics on {t}")).unwrap();
        s.execute(&format!("modify {t} to btree")).unwrap();
    }
    let _ = run_statements(&s, reference_indexes());
    eprintln!("   manual tuning applied in {:?}", t0.elapsed());
    let man = measure(&manual.engine, &s, &queries);
    drop(s);

    // --- Analyzer recommendations -----------------------------------------------
    eprintln!("-- Analyzer-tuned instance…");
    let auto = build_instance_with(Setup::Monitoring, &scale, false);
    let s = auto.engine.open_session();
    // Record the workload once on the untuned database.
    let _ = run_statements(&s, &queries);
    let view = WorkloadView::from_monitor(auto.engine.monitor().expect("monitor"));
    let analyzer = Analyzer::default();
    let t0 = std::time::Instant::now();
    let report = analyzer.analyze(&auto.engine, &view).expect("analysis");
    eprintln!(
        "   analysis took {:?}, {} recommendations",
        t0.elapsed(),
        report.recommendations.len()
    );
    analyzer.apply(&s, &report.recommendations).expect("apply");
    let ana = measure(&auto.engine, &s, &queries);
    let ana_index_count = report
        .recommendations
        .iter()
        .filter(|r| matches!(r, Recommendation::CreateIndex { .. }))
        .count();
    drop(s);

    // --- The figure -------------------------------------------------------------
    println!("\nFigure 7 — workload runtime and database size:\n");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>11} {:>12} {:>9}",
        "setup", "wall", "wall %", "modelled %", "phys reads", "size MiB", "indexes"
    );
    let row = |name: &str, o: &Outcome| {
        println!(
            "{:<14} {:>9.2}s {:>11.1} % {:>11.1} % {:>11} {:>12.1} {:>9}",
            name,
            o.wall.as_secs_f64(),
            100.0 * o.wall.as_secs_f64() / base.wall.as_secs_f64(),
            100.0 * o.modelled_ms / base.modelled_ms.max(1e-9),
            o.phys_reads,
            pages_to_mib(o.pages),
            o.indexes
        );
    };
    row("Unoptimised", &base);
    row("Manually", &man);
    row("Analyser", &ana);
    println!(
        "\nanalyzer recommended {ana_index_count} secondary indexes vs {} in the manual \
         reference set",
        reference_indexes().len()
    );
    println!(
        "paper shape: manual → ~60 % runtime at 65 GB (33 indexes); analyzer → ~62 % \
         runtime at 53 GB (12 indexes) — comparable speed-up at roughly half the index storage"
    );
}
