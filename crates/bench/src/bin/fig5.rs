//! Figure 5 — "Share of Monitoring".
//!
//! Per-statement share of time spent in monitoring code, measured by the
//! monitor's own self-timing (no external profiler):
//!
//! * first five queries of the 50-test: the share is negligible because each
//!   query runs full scans, joins and sorts for (milli)seconds;
//! * the 1m-test: the very first statement is slow (cold caches), the second
//!   is already much faster, and by the 1 000th the constant monitoring time
//!   dominates the tiny execution time — the paper reports ~90 % at
//!   statement 1 000 and ~98 % at 100 000.

use ingot_bench::{build_instance, header, Scale, Setup};
use ingot_workload::{analytic_queries, point_select_statement};

fn main() {
    let scale = Scale::from_env();
    header("Figure 5", "Share of Monitoring per statement", &scale);
    let instance = build_instance(Setup::Monitoring, &scale);
    let session = instance.engine.open_session();
    let monitor = instance.engine.monitor().expect("monitoring setup");

    // Part 1: the first five analytic queries.
    println!("\n50-test, first five queries:");
    println!(
        "{:<4} {:>14} {:>14} {:>8}",
        "q", "wallclock", "monitoring", "share"
    );
    for (i, q) in analytic_queries(&scale.nref).iter().take(5).enumerate() {
        session.execute(q).expect("query");
        let w = monitor.workload();
        let rec = w.last().expect("recorded");
        println!(
            "Q{:<3} {:>11.3} ms {:>11.3} µs {:>7.2} %",
            i + 1,
            rec.wallclock_ns as f64 / 1e6,
            rec.monitor_ns as f64 / 1e3,
            100.0 * rec.monitor_ns as f64 / rec.wallclock_ns.max(1) as f64
        );
    }

    // Part 2: the 1m test at exponentially spaced statement counts.
    println!("\n1m-test, share at statement #k:");
    println!(
        "{:<10} {:>14} {:>14} {:>8}",
        "statement", "wallclock", "monitoring", "share"
    );
    let checkpoints: Vec<u64> = [1u64, 2, 10, 100, 1_000, 10_000, 100_000, 1_000_000]
        .into_iter()
        .filter(|&c| c <= scale.n_point)
        .collect();
    let mut executed = 0u64;
    for &cp in &checkpoints {
        while executed < cp {
            let stmt = point_select_statement(&scale.nref, executed);
            session.execute(&stmt).expect("point select");
            executed += 1;
        }
        let w = monitor.workload();
        let rec = w.last().expect("recorded");
        println!(
            "{:<10} {:>11.3} µs {:>11.3} µs {:>7.2} %",
            format!("#{cp}"),
            rec.wallclock_ns as f64 / 1e3,
            rec.monitor_ns as f64 / 1e3,
            100.0 * rec.monitor_ns as f64 / rec.wallclock_ns.max(1) as f64
        );
    }
    println!(
        "\npaper shape: 50-test share ≪ 1 %; 1m share grows from ≪1 % (first, cold) \
         to ~90 % by #1000 and ~98 % by #100000"
    );
}
