//! Figure 4 — "System Performance".
//!
//! Relative runtime of the three test workloads (`50` expensive analytic
//! queries, `50k` simple joins, `1m` point selects) on the three setups
//! (Original / Monitoring / Daemon), normalised to Original = 100 %.
//!
//! Paper's finding: overhead ≤ ~1 % for the 50 and 50k tests, ~11 %
//! (monitoring) and ~17 % (daemon) for the 1m test, because the constant
//! per-statement sensor cost dominates only when statements are sub-second.
//!
//! All three instances are built up front and the repeats are *interleaved*
//! (Original, Monitoring, Daemon, Original, …) so slow periods of a shared
//! machine hit every setup equally; the best run per setup is reported
//! ("repeated three times to minimize local anomalies"). Also prints the
//! §V-A in-text numbers: per-sensor-call cost and workload-DB growth.

use std::time::{Duration, Instant};

use ingot_bench::{build_instance, header, run_statements, Instance, Scale, Setup};
use ingot_workload::{analytic_queries, point_select_statements, simple_join_statements};

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 4",
        "System Performance (Original / Monitoring / Daemon)",
        &scale,
    );

    eprintln!("-- preparing all three instances…");
    let instances: Vec<Instance> = Setup::ALL
        .into_iter()
        .map(|s| build_instance(s, &scale))
        .collect();
    let sessions: Vec<_> = instances.iter().map(|i| i.engine.open_session()).collect();
    let daemon_start = Instant::now();

    let tests: [&str; 3] = ["50", "50k", "1m"];
    // results[test][setup] = best duration
    let mut results = vec![[Duration::MAX; 3]; tests.len()];
    let queries = analytic_queries(&scale.nref);

    for rep in 0..scale.repeats.max(1) {
        for (si, session) in sessions.iter().enumerate() {
            let t = run_statements(session, &queries);
            results[0][si] = results[0][si].min(t);
            let t = run_statements(session, simple_join_statements(&scale.nref, scale.n_simple));
            results[1][si] = results[1][si].min(t);
            let t = run_statements(session, point_select_statements(&scale.nref, scale.n_point));
            results[2][si] = results[2][si].min(t);
            eprintln!(
                "   rep {rep} {}: 50={:?} 50k={:?} 1m={:?}",
                Setup::ALL[si].label(),
                results[0][si],
                results[1][si],
                results[2][si]
            );
        }
    }

    // §V-A in-text numbers from the Monitoring instance.
    if let Some(m) = instances[1].engine.monitor() {
        let calls = m.sensor_calls().max(1);
        let stmts = m.statements_recorded().max(1);
        println!("\n§V-A sensor-cost analysis (Monitoring instance):");
        println!(
            "  sensor calls: {calls}, total monitoring time: {:.1} ms",
            m.self_time_ns() as f64 / 1e6
        );
        println!(
            "  per sensor call: {:.2} µs   (paper: ~1–2 µs)",
            m.self_time_ns() as f64 / calls as f64 / 1e3
        );
        println!(
            "  per statement:  {:.2} µs   (paper: 30–70 µs)",
            m.self_time_ns() as f64 / stmts as f64 / 1e3
        );
    }
    if let Some(handle) = &instances[2].daemon {
        let wldb = handle.daemon().wldb();
        let g = wldb.growth();
        let elapsed_h = daemon_start.elapsed().as_secs_f64() / 3600.0;
        let mib = g.bytes_appended() as f64 / (1024.0 * 1024.0);
        let rate = mib / elapsed_h.max(1e-9);
        println!("\n§V-A workload-DB growth (Daemon instance):");
        println!(
            "  rows appended: {}, payload: {:.2} MiB, polls: {}",
            g.rows_appended(),
            mib,
            handle.daemon().poll_count()
        );
        println!(
            "  growth rate at this statement rate: {rate:.1} MiB/h; \
             7-day projection: {:.2} GiB",
            rate * 24.0 * 7.0 / 1024.0
        );
        println!(
            "  (paper, at its 33-statement/s logging cap: ~28 MB/hour, \
             ~4.7 GB over seven days; our statement rate is far higher, so \
             the rate scales accordingly)"
        );
    }

    println!("\nFigure 4 — relative runtime (Original = 100 %):\n");
    println!(
        "{:<6} {:>14} {:>14} {:>14}",
        "test", "Original", "Monitoring", "Daemon"
    );
    for (ti, name) in tests.iter().enumerate() {
        let base = results[ti][0].as_secs_f64().max(1e-9);
        println!(
            "{:<6} {:>12.1} % {:>12.1} % {:>12.1} %   ({:.3}s / {:.3}s / {:.3}s)",
            name,
            100.0,
            100.0 * results[ti][1].as_secs_f64() / base,
            100.0 * results[ti][2].as_secs_f64() / base,
            results[ti][0].as_secs_f64(),
            results[ti][1].as_secs_f64(),
            results[ti][2].as_secs_f64(),
        );
    }
    println!("\npaper shape: 50/50k ≈ 100–101 %, 1m ≈ 111 % (Monitoring) and ≈ 117 % (Daemon)");
}
