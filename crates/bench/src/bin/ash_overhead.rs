//! ASH / wait-event overhead — point-select throughput with the wait
//! subsystem (RAII guards + cooperative ASH sampler) enabled vs. disabled.
//!
//! The observability bargain of the paper is that always-on monitoring must
//! be cheap enough to never turn off. Wait-event instrumentation raises the
//! stakes: guards sit on the lock, WAL and buffer hot paths, and the sampler
//! piggybacks on statement boundaries. This harness runs the same prepared
//! point-select loop against two engines that differ only in
//! `wait_events_enabled` and gates the relative throughput loss at <= 3 %
//! (with a small allowance for timer noise at small scale). Numbers land in
//! `results/ash_overhead.json` (override with `INGOT_RESULTS_DIR`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use ingot_bench::{best_of, header, Scale};
use ingot_common::{EngineConfig, Value};
use ingot_core::Engine;

const ROWS: i64 = 2000;
const TEMPLATE: &str = "select name, len from protein where nref_id = $1";

/// Gate: instrumented throughput must stay within 3 % of the uninstrumented
/// baseline (the paper's "monitoring is always on" budget).
const MAX_OVERHEAD_PCT: f64 = 3.0;
/// Sub-millisecond runs at small scale jitter more than the effect we
/// measure; the gate gets this much slack so the CI job is not a coin flip.
const NOISE_FLOOR_PCT: f64 = 2.0;

fn build_engine(wait_events: bool) -> Arc<Engine> {
    let engine = Engine::builder()
        .config(
            EngineConfig::monitoring()
                .with_statement_capacity(4096)
                .with_wait_events_enabled(wait_events),
        )
        .build()
        .expect("in-memory engine");
    let s = engine.open_session();
    s.execute("create table protein (nref_id int not null primary key, name text, len int)")
        .unwrap();
    for i in 0..ROWS {
        s.execute(&format!(
            "insert into protein values ({i}, 'p{i}', {})",
            i % 50
        ))
        .unwrap();
    }
    s.execute("modify protein to btree").unwrap();
    s.execute("create statistics on protein").unwrap();
    engine
}

/// One prepared statement, `n` executions with fresh binds — the same code
/// path on both engines; only the wait subsystem differs.
fn run_points(engine: &Arc<Engine>, n: u64) -> Duration {
    let session = engine.open_session();
    let prepared = session.prepare(TEMPLATE).unwrap();
    let start = Instant::now();
    for i in 0..n {
        prepared.execute(&[Value::Int((i as i64) % ROWS)]).unwrap();
    }
    start.elapsed()
}

fn main() {
    let scale = Scale::from_env();
    header(
        "ASH overhead",
        "point-select throughput, wait events on vs. off",
        &scale,
    );
    let executions = scale.n_point.clamp(10_000, 100_000);

    let instrumented = build_engine(true);
    let baseline = build_engine(false);
    // Warm both engines before timing.
    run_points(&instrumented, executions / 10);
    run_points(&baseline, executions / 10);

    let on = best_of(scale.repeats.max(3), || {
        run_points(&instrumented, executions)
    });
    let off = best_of(scale.repeats.max(3), || run_points(&baseline, executions));

    let on_tput = executions as f64 / on.as_secs_f64();
    let off_tput = executions as f64 / off.as_secs_f64();
    let overhead_pct = (off_tput / on_tput - 1.0) * 100.0;

    println!(
        "\n{:<22} {:>12} {:>14}",
        "configuration", "elapsed_ms", "stmts/s"
    );
    println!(
        "{:<22} {:>12.1} {:>14.0}",
        "wait events on",
        on.as_secs_f64() * 1e3,
        on_tput
    );
    println!(
        "{:<22} {:>12.1} {:>14.0}",
        "wait events off",
        off.as_secs_f64() * 1e3,
        off_tput
    );
    println!("overhead: {overhead_pct:.2} % (gate {MAX_OVERHEAD_PCT:.0} %)");

    // The instrumented engine must actually have been instrumenting.
    let registry = instrumented
        .wait_registry()
        .expect("wait registry on the instrumented engine");
    let sampled = instrumented
        .ash_sampler()
        .map(|s| s.samples_taken())
        .unwrap_or(0);
    let charged: u64 = registry.counters().snapshot().iter().map(|t| t.count).sum();
    assert!(
        baseline.wait_registry().is_none(),
        "the baseline engine must run without the wait subsystem"
    );
    println!("instrumented engine: {charged} waits charged, {sampled} ASH instants");

    let json = render_json(&scale, executions, on, off, on_tput, off_tput, overhead_pct);
    let dir = std::env::var("INGOT_RESULTS_DIR")
        .unwrap_or_else(|_| format!("{}/../../results", env!("CARGO_MANIFEST_DIR")));
    let path = format!("{dir}/ash_overhead.json");
    std::fs::write(&path, json).expect("write results JSON");
    println!("wrote {path}");

    assert!(
        overhead_pct <= MAX_OVERHEAD_PCT + NOISE_FLOOR_PCT,
        "wait-event instrumentation costs {overhead_pct:.2} % point-select \
         throughput; the budget is {MAX_OVERHEAD_PCT:.0} % (+{NOISE_FLOOR_PCT:.0} % noise floor)"
    );
}

/// Hand-rolled JSON (the workspace deliberately has no serde dependency).
#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: &Scale,
    executions: u64,
    on: Duration,
    off: Duration,
    on_tput: f64,
    off_tput: f64,
    overhead_pct: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"ash_overhead\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", scale.name));
    out.push_str(&format!("  \"repeats\": {},\n", scale.repeats.max(3)));
    out.push_str(&format!("  \"table_rows\": {ROWS},\n"));
    out.push_str(&format!("  \"executions\": {executions},\n"));
    out.push_str(
        "  \"model\": \"prepared point-selects; engines differ only in wait_events_enabled\",\n",
    );
    out.push_str(&format!("  \"gate_pct\": {MAX_OVERHEAD_PCT},\n"));
    out.push_str(&format!(
        "  \"waits_on\": {{\"elapsed_ms\": {:.2}, \"stmts_per_sec\": {:.1}}},\n",
        on.as_secs_f64() * 1e3,
        on_tput
    ));
    out.push_str(&format!(
        "  \"waits_off\": {{\"elapsed_ms\": {:.2}, \"stmts_per_sec\": {:.1}}},\n",
        off.as_secs_f64() * 1e3,
        off_tput
    ));
    out.push_str(&format!("  \"overhead_pct\": {overhead_pct:.2}\n"));
    out.push_str("}\n");
    out
}
