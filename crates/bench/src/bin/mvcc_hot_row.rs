//! Row-level MVCC payoff — snapshot readers against a contended hot row.
//!
//! One writer thread runs a loop of auto-commit `update … where id = 1`
//! statements against a single-row table while N reader sessions point-read
//! the same row as fast as they can. Two arms per cell:
//!
//! * **table-lock** — the pre-MVCC discipline, emulated with an external
//!   [`LockManager`] (the engine's own FIFO-fair queue): every read holds a
//!   table-Shared lock and every write a table-Exclusive lock across its
//!   whole statement, exactly the serialization DML used before row-level
//!   MVCC. Readers stall whenever the writer is inside its commit barrier.
//! * **mvcc** — the engine as shipped: readers take no locks and evaluate
//!   snapshot visibility against the version chain, the writer takes the
//!   shared DDL fence plus a row-exclusive chain-root lock.
//!
//! The WAL simulates a disk barrier (`SYNC_DELAY_US` per fsync) so the
//! writer's critical section is dominated by durable-commit latency, as it
//! is on real hardware. The headline claim checked at the bottom: **at 8
//! reader sessions MVCC sustains at least 4x the table-lock read
//! throughput**. Numbers land in `results/mvcc_hot_row.json` (override the
//! directory with `INGOT_RESULTS_DIR`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ingot_bench::{header, Scale};
use ingot_common::{EngineConfig, WalFsyncMode};
use ingot_common::{TableId, TxnId};
use ingot_core::Engine;
use ingot_txn::{LockManager, LockMode, Resource};

/// Concurrent reader counts (the writer is always one extra thread).
const READERS: [usize; 4] = [1, 2, 4, 8];

/// Simulated disk-barrier latency per fsync: the writer's exclusive window
/// in the table-lock arm is dominated by this, as on real storage.
const SYNC_DELAY_US: u64 = 8000;

/// Writer think time between statements, spent outside any lock so the
/// table-lock arm's readers are guaranteed forward progress.
const WRITER_PAUSE_US: u64 = 20;

/// The writer triggers a version-chain sweep this often, standing in for
/// the daemon's poll-cadence GC so chains stay short in both arms.
const GC_EVERY: u64 = 64;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

#[derive(Clone, Copy, PartialEq)]
enum Arm {
    TableLock,
    Mvcc,
}

struct Cell {
    readers: usize,
    reads: usize,
    lock_ms: f64,
    mvcc_ms: f64,
    lock_reads_per_sec: f64,
    mvcc_reads_per_sec: f64,
    speedup: f64,
    lock_writes: u64,
    mvcc_writes: u64,
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ingot-mvccbench-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// One storm: `readers` threads x `reads` point-selects of the hot row,
/// racing one update-loop writer. Returns (reader elapsed, writer commits).
fn run_storm(arm: Arm, readers: usize, reads: usize) -> (Duration, u64) {
    let dir = scratch_dir();
    let engine = Engine::builder()
        .config(
            EngineConfig::default()
                .with_wal_fsync_mode(WalFsyncMode::Always)
                .with_wal_sync_delay_us(SYNC_DELAY_US),
        )
        .path(dir.clone())
        .build()
        .expect("file-backed engine");
    {
        let s = engine.open_session();
        s.execute("create table hot (id int not null, v int)")
            .unwrap();
        s.execute("insert into hot values (1, 0)").unwrap();
    }
    // The emulated table lock — the engine's own FIFO-fair queue, so the
    // writer's exclusive request is never starved by a reader stampede.
    // The MVCC arm never touches it.
    let table = Arc::new(LockManager::new(Duration::from_secs(30)));
    let hot = Resource::Table(TableId(1));
    let stop = Arc::new(AtomicBool::new(false));
    let writes = Arc::new(AtomicU64::new(0));

    let writer = {
        let engine = Arc::clone(&engine);
        let table = Arc::clone(&table);
        let stop = Arc::clone(&stop);
        let writes = Arc::clone(&writes);
        std::thread::spawn(move || {
            let s = engine.open_session();
            let me = TxnId(u64::MAX);
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                n += 1;
                if arm == Arm::TableLock {
                    table.lock(me, hot, LockMode::Exclusive).unwrap();
                }
                let r = s.execute(&format!("update hot set v = {n} where id = 1"));
                if arm == Arm::TableLock {
                    table.release_all(me);
                }
                r.unwrap();
                writes.fetch_add(1, Ordering::Relaxed);
                if n.is_multiple_of(GC_EVERY) {
                    let _ = engine.mvcc_gc();
                }
                // Bench think-time between statements, outside any lock.
                #[allow(clippy::disallowed_methods)]
                std::thread::sleep(Duration::from_micros(WRITER_PAUSE_US));
            }
        })
    };

    let start = Instant::now();
    let handles: Vec<_> = (0..readers)
        .map(|i| {
            let engine = Arc::clone(&engine);
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                let s = engine.open_session();
                let me = TxnId(u64::MAX - 1 - i as u64);
                for _ in 0..reads {
                    if arm == Arm::TableLock {
                        table.lock(me, hot, LockMode::Shared).unwrap();
                    }
                    let r = s.execute("select v from hot where id = 1");
                    if arm == Arm::TableLock {
                        table.release_all(me);
                    }
                    let r = r.unwrap();
                    assert_eq!(r.rows.len(), 1, "the hot row must stay visible");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("reader thread");
    }
    let elapsed = start.elapsed();
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer thread");
    let committed = writes.load(Ordering::Relaxed);
    drop(engine);
    let _ = std::fs::remove_dir_all(dir);
    (elapsed, committed)
}

/// Best of `repeats` storms (fresh engine and directory each time).
fn best_storm(repeats: u32, arm: Arm, readers: usize, reads: usize) -> (Duration, u64) {
    let mut best: Option<(Duration, u64)> = None;
    for _ in 0..repeats.max(1) {
        let run = run_storm(arm, readers, reads);
        if best.as_ref().is_none_or(|b| run.0 < b.0) {
            best = Some(run);
        }
    }
    best.expect("at least one repeat")
}

fn main() {
    let scale = Scale::from_env();
    header(
        "MVCC hot row",
        "snapshot-read throughput against one contended row, table-lock vs. MVCC",
        &scale,
    );
    let reads = ((scale.n_simple / 25).max(200)) as usize;
    println!(
        "simulated barrier: {SYNC_DELAY_US} us per fsync, {reads} reads per reader, \
         1 update-loop writer\n"
    );
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>9} {:>9} {:>9}",
        "readers", "lock_ms", "mvcc_ms", "lock r/s", "mvcc r/s", "speedup", "lock_w", "mvcc_w"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for readers in READERS {
        let total = (readers * reads) as f64;
        let (lock, lock_writes) = best_storm(scale.repeats, Arm::TableLock, readers, reads);
        let (mvcc, mvcc_writes) = best_storm(scale.repeats, Arm::Mvcc, readers, reads);
        let lock_tput = total / lock.as_secs_f64();
        let mvcc_tput = total / mvcc.as_secs_f64();
        let speedup = mvcc_tput / lock_tput;
        println!(
            "{:<8} {:>10.1} {:>10.1} {:>12.0} {:>12.0} {:>8.2}x {:>9} {:>9}",
            readers,
            lock.as_secs_f64() * 1e3,
            mvcc.as_secs_f64() * 1e3,
            lock_tput,
            mvcc_tput,
            speedup,
            lock_writes,
            mvcc_writes
        );
        cells.push(Cell {
            readers,
            reads,
            lock_ms: lock.as_secs_f64() * 1e3,
            mvcc_ms: mvcc.as_secs_f64() * 1e3,
            lock_reads_per_sec: lock_tput,
            mvcc_reads_per_sec: mvcc_tput,
            speedup,
            lock_writes,
            mvcc_writes,
        });
    }

    let json = render_json(&scale, &cells);
    let dir = std::env::var("INGOT_RESULTS_DIR")
        .unwrap_or_else(|_| format!("{}/../../results", env!("CARGO_MANIFEST_DIR")));
    let path = format!("{dir}/mvcc_hot_row.json");
    std::fs::write(&path, json).expect("write results JSON");
    println!("\nwrote {path}");

    // The headline claim: snapshot reads never queue behind the writer's
    // commit barrier, so read throughput scales with the session count.
    for c in cells.iter().filter(|c| c.readers >= 8) {
        assert!(
            c.speedup >= 4.0,
            "MVCC must sustain at least 4x the table-lock read throughput at \
             {} readers (got {:.2}x)",
            c.readers,
            c.speedup
        );
        assert!(
            c.mvcc_writes > 0,
            "the writer must keep committing under read load"
        );
    }
}

/// Hand-rolled JSON (the workspace deliberately has no serde dependency).
fn render_json(scale: &Scale, cells: &[Cell]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"mvcc_hot_row\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", scale.name));
    out.push_str(&format!("  \"repeats\": {},\n", scale.repeats));
    out.push_str(&format!("  \"sync_delay_us\": {SYNC_DELAY_US},\n"));
    out.push_str(
        "  \"model\": \"one hot row, N snapshot readers vs. 1 auto-commit \
         update writer; table-lock arm emulated with an external FIFO lock \
         queue, best-of wall clock per cell\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"readers\": {}, \"reads_per_reader\": {}, \
             \"table_lock_ms\": {:.2}, \"mvcc_ms\": {:.2}, \
             \"table_lock_reads_per_sec\": {:.1}, \"mvcc_reads_per_sec\": {:.1}, \
             \"speedup\": {:.3}, \"table_lock_writes\": {}, \"mvcc_writes\": {}}}{}\n",
            c.readers,
            c.reads,
            c.lock_ms,
            c.mvcc_ms,
            c.lock_reads_per_sec,
            c.mvcc_reads_per_sec,
            c.speedup,
            c.lock_writes,
            c.mvcc_writes,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
