//! Concurrency scaling — throughput vs. number of sessions.
//!
//! Runs 1/2/4/8 closed-loop client sessions against one shared engine for
//! each of three statement mixes (read-only, 90-10 mixed, write-heavy on
//! disjoint tables), reports aggregate statements/second and the speedup
//! over a single session, and writes the numbers as JSON to
//! `results/concurrency_scaling.json` (override the directory with
//! `INGOT_RESULTS_DIR`).
//!
//! This is the proof-of-scaling experiment for the snapshot-catalog
//! architecture: statement execution takes no engine-wide lock, so sessions
//! overlap up to the compatibility of their table locks.

use std::time::Duration;

use ingot_bench::concurrency::{build_engine, run_batch, Workload, SESSION_COUNTS};
use ingot_bench::{best_of, header, Scale};

struct Cell {
    workload: &'static str,
    sessions: usize,
    total_statements: u64,
    elapsed_ms: f64,
    stmts_per_sec: f64,
    speedup_vs_1: f64,
}

fn main() {
    let scale = Scale::from_env();
    header(
        "Concurrency scaling",
        "closed-loop sessions vs. aggregate throughput",
        &scale,
    );

    // Closed-loop client model: each statement is followed by a think-time
    // sleep, so aggregate throughput can scale with sessions as far as the
    // engine lets them overlap (even on a single core).
    let think = Duration::from_millis(1);
    let per_session = (scale.n_simple / 40).max(100);

    let mut cells: Vec<Cell> = Vec::new();
    for workload in Workload::ALL {
        let engine = build_engine();
        println!(
            "\n{:<12} {:>8} {:>12} {:>14} {:>12}",
            workload.label(),
            "sessions",
            "elapsed_ms",
            "stmts/sec",
            "speedup"
        );
        let mut base_tput = 0.0;
        for sessions in SESSION_COUNTS {
            let elapsed = best_of(scale.repeats, || {
                run_batch(&engine, workload, sessions, per_session, think)
            });
            let total = per_session * sessions as u64;
            let tput = total as f64 / elapsed.as_secs_f64();
            if sessions == 1 {
                base_tput = tput;
            }
            let speedup = tput / base_tput;
            println!(
                "{:<12} {:>8} {:>12.1} {:>14.0} {:>11.2}x",
                "",
                sessions,
                elapsed.as_secs_f64() * 1e3,
                tput,
                speedup
            );
            cells.push(Cell {
                workload: workload.label(),
                sessions,
                total_statements: total,
                elapsed_ms: elapsed.as_secs_f64() * 1e3,
                stmts_per_sec: tput,
                speedup_vs_1: speedup,
            });
        }
    }

    let json = render_json(&scale, per_session, think, &cells);
    let dir = std::env::var("INGOT_RESULTS_DIR")
        .unwrap_or_else(|_| format!("{}/../../results", env!("CARGO_MANIFEST_DIR")));
    let path = format!("{dir}/concurrency_scaling.json");
    std::fs::write(&path, json).expect("write results JSON");
    println!("\nwrote {path}");

    let mixed8 = cells
        .iter()
        .find(|c| c.workload == "mixed_90_10" && c.sessions == 8)
        .expect("mixed 8-session cell");
    assert!(
        mixed8.speedup_vs_1 >= 2.0,
        "8-session mixed throughput must be at least 2x a single session \
         (got {:.2}x)",
        mixed8.speedup_vs_1
    );
}

/// Hand-rolled JSON (the workspace deliberately has no serde dependency).
fn render_json(scale: &Scale, per_session: u64, think: Duration, cells: &[Cell]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"concurrency_scaling\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", scale.name));
    out.push_str(&format!("  \"repeats\": {},\n", scale.repeats));
    out.push_str(&format!("  \"statements_per_session\": {per_session},\n"));
    out.push_str(&format!(
        "  \"think_time_ms\": {},\n",
        think.as_secs_f64() * 1e3
    ));
    out.push_str("  \"model\": \"closed-loop clients with think time\",\n");
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"sessions\": {}, \
             \"total_statements\": {}, \"elapsed_ms\": {:.2}, \
             \"stmts_per_sec\": {:.1}, \"speedup_vs_1\": {:.3}}}{}\n",
            c.workload,
            c.sessions,
            c.total_statements,
            c.elapsed_ms,
            c.stmts_per_sec,
            c.speedup_vs_1,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
