//! Figure 6 — "Cost Diagram".
//!
//! Runs the 50-query analytic workload under monitoring, feeds the recorded
//! data to the analyzer, and prints the per-statement cost diagram of the
//! ten most expensive statements: actual cost vs. optimizer estimate vs.
//! estimate with the recommended *virtual* indexes. Statements whose
//! estimate diverges from the actual cost (the paper's Q2/Q4/Q7) get the
//! "collect statistics" recommendation; §V-B's counts are printed too.

use ingot_analyzer::{Analyzer, Recommendation, WorkloadView};
use ingot_bench::{build_instance_with, header, run_statements, Scale, Setup};
use ingot_workload::analytic_queries;

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 6",
        "Cost Diagram (actual / estimated / estimated+virtual)",
        &scale,
    );
    let instance = build_instance_with(Setup::Monitoring, &scale, false);
    let session = instance.engine.open_session();

    let queries = analytic_queries(&scale.nref);
    eprintln!("-- recording the 50-query workload…");
    let elapsed = run_statements(&session, &queries);
    eprintln!("   done in {elapsed:?}");

    let view = WorkloadView::from_monitor(instance.engine.monitor().expect("monitor"));
    let analyzer = Analyzer::default();
    let t0 = std::time::Instant::now();
    let report = analyzer.analyze(&instance.engine, &view).expect("analysis");
    let analysis_time = t0.elapsed();

    println!("\n{}", report.cost_diagram.render());

    // Companion view: the statements the what-if indexes improve most (the
    // paper notes "only a few statements seem to benefit from the
    // recommended changes" — these are the few).
    let mut improved: Vec<_> = report
        .cost_diagram
        .entries
        .iter()
        .filter(|e| e.estimated_with_virtual < e.estimated * 0.99)
        .collect();
    let all_entries;
    if improved.is_empty() {
        // Rebuild a wider diagram over every query to find the winners.
        let view_all = view.clone();
        let chosen = ingot_analyzer::advisor::recommend_indexes(
            &analyzer.config.advisor,
            &instance.engine,
            &view_all,
        )
        .expect("advisor")
        .chosen_candidates;
        all_entries =
            ingot_analyzer::report::build_cost_diagram(&instance.engine, &view_all, &chosen, 50)
                .expect("diagram");
        improved = all_entries
            .entries
            .iter()
            .filter(|e| e.estimated_with_virtual < e.estimated * 0.99)
            .collect();
    }
    println!(
        "statements improved by the recommended (virtual) indexes: {}",
        improved.len()
    );
    for e in improved.iter().take(5) {
        println!(
            "  e {:>12.0} → v {:>12.0}  {}",
            e.estimated,
            e.estimated_with_virtual,
            &e.text[..e.text.len().min(70)]
        );
    }
    println!();

    // §V-B counts.
    let stats_recs = report
        .recommendations
        .iter()
        .filter(|r| matches!(r, Recommendation::CollectStatistics { .. }))
        .count();
    let btree_recs = report
        .recommendations
        .iter()
        .filter(|r| matches!(r, Recommendation::ModifyToBTree { .. }))
        .count();
    let index_recs = report
        .recommendations
        .iter()
        .filter(|r| matches!(r, Recommendation::CreateIndex { .. }))
        .count();
    let diverging = view
        .statements
        .iter()
        .filter(|s| {
            s.is_query()
                && s.executions > 0
                && s.actual.total() >= analyzer.config.min_actual_total
                && ingot_common::Cost::relative_error(
                    &ingot_common::Cost::new(
                        s.est.cpu / s.executions as f64,
                        s.est.io / s.executions as f64,
                    ),
                    &ingot_common::Cost::new(
                        s.actual.cpu / s.executions as f64,
                        s.actual.io / s.executions as f64,
                    ),
                ) > analyzer.config.cost_error_threshold
        })
        .count();

    println!("§V-B analysis summary:");
    println!("  analysis wall time: {analysis_time:?}   (paper: ~40 s on 2009 hardware)");
    println!("  statements with significant est/actual divergence: {diverging}   (paper: 31)");
    println!("  statistics recommendations: {stats_recs}");
    println!("  modify-to-BTree recommendations: {btree_recs}   (paper: 6 tables)");
    println!("  secondary-index recommendations: {index_recs}   (paper: 12)");
    println!("\nRecommendations:");
    for r in &report.recommendations {
        println!("  - {}", r.describe());
    }
}
