//! WAL group-commit payoff — concurrent commit throughput with the group
//! coordinator batching fsyncs vs. one fsync per commit.
//!
//! Each writer thread owns its own table (so table locks never serialize
//! the storm) and runs a loop of auto-commit single-row inserts against a
//! file-backed engine whose WAL simulates a disk barrier of
//! `SYNC_DELAY_US` per fsync — on a laptop-class SSD (or tmpfs in CI) the
//! raw fsync is too cheap to show the batching effect the coordinator
//! exists for. Under `always` every commit pays the barrier serially; under
//! `group` concurrent committers ride one leader's fsync, so throughput
//! climbs with the writer count. The headline claim checked at the bottom:
//! **group commit sustains at least 2x the always-fsync throughput from 8
//! writers up**. Numbers land in `results/wal_group_commit.json` (override
//! the directory with `INGOT_RESULTS_DIR`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ingot_bench::{header, Scale};
use ingot_common::{EngineConfig, WalFsyncMode};
use ingot_core::Engine;

/// Concurrent committer counts (the 1-writer cell is the no-batching
/// baseline where both modes must be within noise of each other).
const WRITERS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Simulated disk-barrier latency per fsync. Sized so the barrier dominates
/// per-commit execution and scheduler noise: the always-fsync arm pays
/// `writers * commits * 500us` serially while the group arm amortises one
/// barrier per batch, keeping the >= 2x claim out of the noise floor even on
/// loaded CI runners.
const SYNC_DELAY_US: u64 = 500;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

struct Cell {
    writers: usize,
    commits: usize,
    always_ms: f64,
    group_ms: f64,
    always_commits_per_sec: f64,
    group_commits_per_sec: f64,
    speedup: f64,
    group_batches: u64,
    max_group: u64,
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ingot-walbench-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// One storm: `writers` threads x `commits` auto-commit inserts, each
/// writer on its own table. Returns (elapsed, grouped_commits, max_group).
fn run_storm(mode: WalFsyncMode, writers: usize, commits: usize) -> (Duration, u64, u64) {
    let dir = scratch_dir();
    let engine = Engine::builder()
        .config(
            EngineConfig::default()
                .with_wal_fsync_mode(mode)
                .with_wal_sync_delay_us(SYNC_DELAY_US),
        )
        .path(dir.clone())
        .build()
        .expect("file-backed engine");
    {
        let s = engine.open_session();
        for w in 0..writers {
            s.execute(&format!("create table w{w} (a int not null, b text)"))
                .unwrap();
        }
    }
    let start = Instant::now();
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let s = engine.open_session();
                for i in 0..commits {
                    s.execute(&format!("insert into w{w} values ({i}, 'payload {i}')"))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }
    let elapsed = start.elapsed();
    let stats = engine.wal_stats();
    drop(engine);
    let _ = std::fs::remove_dir_all(dir);
    (elapsed, stats.grouped_commits, stats.max_group)
}

/// Best of `repeats` storms (fresh engine and directory each time).
fn best_storm(
    repeats: u32,
    mode: WalFsyncMode,
    writers: usize,
    commits: usize,
) -> (Duration, u64, u64) {
    let mut best: Option<(Duration, u64, u64)> = None;
    for _ in 0..repeats.max(1) {
        let run = run_storm(mode, writers, commits);
        if best.as_ref().is_none_or(|b| run.0 < b.0) {
            best = Some(run);
        }
    }
    best.expect("at least one repeat")
}

fn main() {
    let scale = Scale::from_env();
    header(
        "WAL group commit",
        "concurrent commit throughput, group vs. always fsync",
        &scale,
    );
    let commits = ((scale.n_simple / 100).max(30)) as usize;
    println!("simulated barrier: {SYNC_DELAY_US} us per fsync, {commits} commits per writer\n");
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>9} {:>8} {:>9}",
        "writers",
        "always_ms",
        "group_ms",
        "always c/s",
        "group c/s",
        "speedup",
        "batches",
        "max_grp"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for writers in WRITERS {
        let total = (writers * commits) as f64;
        let (always, _, _) = best_storm(scale.repeats, WalFsyncMode::Always, writers, commits);
        let (group, batches, max_group) =
            best_storm(scale.repeats, WalFsyncMode::Group, writers, commits);
        let always_tput = total / always.as_secs_f64();
        let group_tput = total / group.as_secs_f64();
        let speedup = group_tput / always_tput;
        println!(
            "{:<8} {:>10.1} {:>10.1} {:>12.0} {:>12.0} {:>8.2}x {:>8} {:>9}",
            writers,
            always.as_secs_f64() * 1e3,
            group.as_secs_f64() * 1e3,
            always_tput,
            group_tput,
            speedup,
            batches,
            max_group
        );
        cells.push(Cell {
            writers,
            commits,
            always_ms: always.as_secs_f64() * 1e3,
            group_ms: group.as_secs_f64() * 1e3,
            always_commits_per_sec: always_tput,
            group_commits_per_sec: group_tput,
            speedup,
            group_batches: batches,
            max_group,
        });
    }

    let json = render_json(&scale, &cells);
    let dir = std::env::var("INGOT_RESULTS_DIR")
        .unwrap_or_else(|_| format!("{}/../../results", env!("CARGO_MANIFEST_DIR")));
    let path = format!("{dir}/wal_group_commit.json");
    std::fs::write(&path, json).expect("write results JSON");
    println!("\nwrote {path}");

    // The coordinator must actually batch once there is anyone to batch.
    for c in cells.iter().filter(|c| c.writers >= 8) {
        assert!(
            c.max_group >= 2,
            "at {} writers the leader must pick up followers (max batch {})",
            c.writers,
            c.max_group
        );
        assert!(
            c.speedup >= 2.0,
            "group commit must sustain at least 2x the always-fsync commit \
             throughput at {} writers (got {:.2}x)",
            c.writers,
            c.speedup
        );
    }
}

/// Hand-rolled JSON (the workspace deliberately has no serde dependency).
fn render_json(scale: &Scale, cells: &[Cell]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"wal_commit\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", scale.name));
    out.push_str(&format!("  \"repeats\": {},\n", scale.repeats));
    out.push_str(&format!("  \"sync_delay_us\": {SYNC_DELAY_US},\n"));
    out.push_str(
        "  \"model\": \"per-writer tables, auto-commit single-row inserts, \
         best-of wall clock per cell\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"writers\": {}, \"commits_per_writer\": {}, \
             \"always_ms\": {:.2}, \"group_ms\": {:.2}, \
             \"always_commits_per_sec\": {:.1}, \"group_commits_per_sec\": {:.1}, \
             \"speedup\": {:.3}, \"group_batches\": {}, \"max_group\": {}}}{}\n",
            c.writers,
            c.commits,
            c.always_ms,
            c.group_ms,
            c.always_commits_per_sec,
            c.group_commits_per_sec,
            c.speedup,
            c.group_batches,
            c.max_group,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
