//! Server fleet scaling — wire-client throughput vs. connection count.
//!
//! Binds an in-process `ingot-server` on a unix socket and drives it with
//! 1/8/64/256/1000 closed-loop wire clients, one OS thread per client, for
//! a point-select and an insert mix. Each client connects once, prepares
//! its statement once (the shared plan cache makes the second prepare of a
//! template free), then issues statements back-to-back; a cell measures
//! the barrier-to-join wall time of the whole fleet. Results go to
//! `results/server_fleet.json` (override the directory with
//! `INGOT_RESULTS_DIR`).
//!
//! This is the proof-of-multiplexing experiment for the server: session
//! state lives in the handler threads and the statement path takes no
//! server-wide lock, so aggregate throughput must hold (not collapse) as
//! the fleet grows three orders of magnitude past the core count.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ingot_bench::{best_of, header, Scale};
use ingot_client::ClientConnection;
use ingot_common::{Connection, EngineConfig, SocketSpec, Value};
use ingot_core::Engine;
use ingot_server::{Server, ServerConfig};
use parking_lot::{Condvar, Mutex};

/// Fleet sizes measured, in order.
const CONN_COUNTS: [usize; 5] = [1, 8, 64, 256, 1000];

/// Rows preloaded for the point-select mix.
const PRELOAD_ROWS: i64 = 1024;

/// The two statement mixes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mix {
    /// Prepared point selects over the preloaded rows.
    PointSelect,
    /// Prepared single-row inserts of globally unique keys.
    Insert,
}

impl Mix {
    const ALL: [Mix; 2] = [Mix::PointSelect, Mix::Insert];

    fn label(self) -> &'static str {
        match self {
            Mix::PointSelect => "point_select",
            Mix::Insert => "insert",
        }
    }
}

struct Cell {
    mix: &'static str,
    connections: usize,
    total_statements: u64,
    elapsed_ms: f64,
    stmts_per_sec: f64,
    tput_vs_1: f64,
}

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ingot-server-fleet-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Interruptible pause (the workspace bans `std::thread::sleep`).
fn pace(ms: u64) {
    let m = Mutex::new(());
    let cv = Condvar::new();
    let mut g = m.lock();
    let _ = cv.wait_for(&mut g, Duration::from_millis(ms));
}

fn connect_retry(spec: &SocketSpec, name: &str) -> ClientConnection {
    for _ in 0..5_000 {
        match ClientConnection::connect_with_name(spec, name) {
            Ok(c) => return c,
            Err(_) => pace(2),
        }
    }
    panic!("server never came up on {spec}");
}

fn main() {
    let scale = Scale::from_env();
    header(
        "Server fleet",
        "closed-loop wire clients vs. aggregate throughput",
        &scale,
    );

    // Keep total statement volume roughly constant across fleet sizes so a
    // 1000-connection cell finishes in the same ballpark as a 1-connection
    // cell; the variable is the multiplexing, not the work.
    let total_target = scale.n_simple.max(1_000);

    let mut cells: Vec<Cell> = Vec::new();
    for mix in Mix::ALL {
        println!(
            "\n{:<12} {:>12} {:>12} {:>14} {:>12}",
            mix.label(),
            "connections",
            "elapsed_ms",
            "stmts/sec",
            "vs_1_conn"
        );
        let mut base_tput = 0.0;
        for conns in CONN_COUNTS {
            let per_conn = (total_target / conns as u64).max(4);
            let total = per_conn * conns as u64;
            let elapsed = best_of(scale.repeats, || run_cell(mix, conns, per_conn));
            let tput = total as f64 / elapsed.as_secs_f64();
            if conns == 1 {
                base_tput = tput;
            }
            let ratio = tput / base_tput;
            println!(
                "{:<12} {:>12} {:>12.1} {:>14.0} {:>11.2}x",
                "",
                conns,
                elapsed.as_secs_f64() * 1e3,
                tput,
                ratio
            );
            cells.push(Cell {
                mix: mix.label(),
                connections: conns,
                total_statements: total,
                elapsed_ms: elapsed.as_secs_f64() * 1e3,
                stmts_per_sec: tput,
                tput_vs_1: ratio,
            });
        }
    }

    let json = render_json(&scale, total_target, &cells);
    let dir = std::env::var("INGOT_RESULTS_DIR")
        .unwrap_or_else(|_| format!("{}/../../results", env!("CARGO_MANIFEST_DIR")));
    let path = format!("{dir}/server_fleet.json");
    std::fs::write(&path, json).expect("write results JSON");
    println!("\nwrote {path}");

    // The multiplexing claim: a 64-connection fleet must not collapse below
    // half of single-connection throughput (thread-per-connection with a
    // per-statement engine lock would).
    for mix in Mix::ALL {
        let c64 = cells
            .iter()
            .find(|c| c.mix == mix.label() && c.connections == 64)
            .expect("64-connection cell");
        assert!(
            c64.tput_vs_1 >= 0.5,
            "{}: 64-connection throughput collapsed to {:.2}x of 1 connection",
            mix.label(),
            c64.tput_vs_1
        );
    }
}

/// One measured cell: fresh engine + server, `conns` wire clients each
/// issuing `per_conn` prepared statements. Returns the barrier-to-join
/// wall time of the statement phase (connection setup is not measured).
fn run_cell(mix: Mix, conns: usize, per_conn: u64) -> Duration {
    let data = temp_dir("data");
    let sock = temp_dir("sock").join("srv.sock");
    let spec = SocketSpec::Unix(sock);

    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .path(data.clone())
        .build()
        .expect("build engine");
    let mut cfg = ServerConfig::new(spec.clone());
    cfg.heartbeat_timeout_ms = 600_000; // the bench fleet never idles long
    cfg.drain_deadline_ms = 10_000;
    let server = Server::bind(Arc::clone(&engine), cfg).expect("bind server");
    let stop = server.stop_handle();
    let server_join = std::thread::spawn(move || server.run());

    let admin = connect_retry(&spec, "bench-admin");
    admin
        .execute("create table kv (id int not null primary key, v int)")
        .expect("create table");
    if mix == Mix::PointSelect {
        let ins = admin
            .prepare("insert into kv values ($1, $2)")
            .expect("prepare preload");
        for id in 0..PRELOAD_ROWS {
            ins.execute(&[Value::Int(id), Value::Int(id * 10)])
                .expect("preload row");
        }
    }

    // Insert keys must stay unique across the whole fleet.
    let next_key = Arc::new(AtomicU64::new(PRELOAD_ROWS as u64 + 1));
    let start = Arc::new(Barrier::new(conns + 1));
    let done = Arc::new(Barrier::new(conns + 1));
    let mut workers = Vec::with_capacity(conns);
    for w in 0..conns {
        let spec = spec.clone();
        let start = Arc::clone(&start);
        let done = Arc::clone(&done);
        let next_key = Arc::clone(&next_key);
        workers.push(std::thread::spawn(move || {
            let conn = connect_retry(&spec, &format!("fleet-{w}"));
            let sql = match mix {
                Mix::PointSelect => "select v from kv where id = $1",
                Mix::Insert => "insert into kv values ($1, $2)",
            };
            let stmt = conn.prepare(sql).expect("prepare");
            start.wait();
            for j in 0..per_conn {
                match mix {
                    Mix::PointSelect => {
                        let id = ((w as u64 * per_conn + j) % PRELOAD_ROWS as u64) as i64;
                        let r = stmt.execute(&[Value::Int(id)]).expect("point select");
                        assert_eq!(r.rows[0].get(0).as_int(), Some(id * 10));
                    }
                    Mix::Insert => {
                        let id = next_key.fetch_add(1, Ordering::Relaxed) as i64;
                        stmt.execute(&[Value::Int(id), Value::Int(id)])
                            .expect("insert");
                    }
                }
            }
            done.wait();
        }));
    }

    start.wait();
    let t0 = Instant::now();
    done.wait();
    let elapsed = t0.elapsed();
    for w in workers {
        w.join().expect("worker");
    }

    drop(admin);
    stop.request_stop();
    server_join
        .join()
        .expect("server thread")
        .expect("server run");
    engine.detach_connections_provider();
    drop(engine);
    let _ = std::fs::remove_dir_all(data);
    elapsed
}

/// Hand-rolled JSON (the workspace deliberately has no serde dependency).
fn render_json(scale: &Scale, total_target: u64, cells: &[Cell]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"server_fleet\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", scale.name));
    out.push_str(&format!("  \"repeats\": {},\n", scale.repeats));
    out.push_str(&format!("  \"total_statement_target\": {total_target},\n"));
    out.push_str(&format!("  \"preload_rows\": {PRELOAD_ROWS},\n"));
    out.push_str(
        "  \"model\": \"closed-loop wire clients over a unix socket, \
         one thread per connection\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mix\": \"{}\", \"connections\": {}, \
             \"total_statements\": {}, \"elapsed_ms\": {:.2}, \
             \"stmts_per_sec\": {:.1}, \"tput_vs_1_conn\": {:.3}}}{}\n",
            c.mix,
            c.connections,
            c.total_statements,
            c.elapsed_ms,
            c.stmts_per_sec,
            c.tput_vs_1,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
