//! Session-scaling driver: N closed-loop client sessions against one shared
//! engine, the experiment behind `results/concurrency_scaling.json`.
//!
//! Each simulated client executes statements with a fixed *think time*
//! between them (the classic closed-loop model). Aggregate throughput then
//! scales with the number of sessions exactly as far as the engine lets the
//! sessions overlap: an engine-wide statement lock caps the curve at 1×,
//! table-granular locking over catalog snapshots keeps it climbing. Think
//! time (rather than CPU-bound spinning) is what makes the scaling
//! observable on small machines — a single core cannot parallelise compute,
//! but it can overlap waiting.

// Bench pacing: the think-time sleep *is* the closed-loop client model.
#![allow(clippy::disallowed_methods)]

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ingot_common::EngineConfig;
use ingot_core::Engine;

/// Session counts measured, in order.
pub const SESSION_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Rows in each table.
pub const TABLE_ROWS: u64 = 256;

/// The three statement mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Point selects on one shared table (S locks — fully compatible).
    ReadOnly,
    /// 90 % point selects, 10 % updates, all on one shared table (the
    /// updates take X table locks and briefly serialise).
    Mixed9010,
    /// Updates only, each session on its own table (disjoint X locks — the
    /// case an engine-wide lock would serialise for no reason).
    WriteHeavy,
}

impl Workload {
    /// All mixes, in report order.
    pub const ALL: [Workload; 3] = [
        Workload::ReadOnly,
        Workload::Mixed9010,
        Workload::WriteHeavy,
    ];

    /// Identifier used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Workload::ReadOnly => "read_only",
            Workload::Mixed9010 => "mixed_90_10",
            Workload::WriteHeavy => "write_heavy",
        }
    }
}

/// Build the engine for the experiment: one shared keyed table (`acct`)
/// plus one keyed table per potential session (`acct_w0` …), all with
/// statistics so point statements plan to primary-key lookups.
pub fn build_engine() -> Arc<Engine> {
    let engine = Engine::builder()
        .config(EngineConfig {
            lock_timeout_ms: 10_000,
            ..EngineConfig::monitoring()
        })
        .build()
        .unwrap();
    let s = engine.open_session();
    let mut tables = vec!["acct".to_string()];
    tables.extend((0..SESSION_COUNTS[SESSION_COUNTS.len() - 1]).map(|i| format!("acct_w{i}")));
    for t in &tables {
        s.execute(&format!(
            "create table {t} (id int not null primary key, v int)"
        ))
        .expect("create");
        for id in 0..TABLE_ROWS {
            s.execute(&format!("insert into {t} values ({id}, 0)"))
                .expect("insert");
        }
        s.execute(&format!("create statistics on {t}"))
            .expect("stats");
        s.execute(&format!("modify {t} to btree")).expect("modify");
    }
    engine
}

/// The `i`-th statement of session `session` under `workload`.
pub fn statement(workload: Workload, session: usize, i: u64) -> String {
    // Per-session stride through the key space, decorrelated across sessions.
    let key = (session as u64 * 31 + i * 7) % TABLE_ROWS;
    match workload {
        Workload::ReadOnly => format!("select v from acct where id = {key}"),
        Workload::Mixed9010 => {
            if i.is_multiple_of(10) {
                format!("update acct set v = v + 1 where id = {key}")
            } else {
                format!("select v from acct where id = {key}")
            }
        }
        Workload::WriteHeavy => {
            format!("update acct_w{session} set v = v + 1 where id = {key}")
        }
    }
}

/// Run `sessions` concurrent closed-loop clients, each executing
/// `per_session` statements with `think` sleep between them. Returns the
/// wall-clock duration from the synchronised start to the last client's
/// finish. Panics on any statement error (the workload is conflict-free by
/// construction; with a 10 s lock timeout nothing should fail).
pub fn run_batch(
    engine: &Arc<Engine>,
    workload: Workload,
    sessions: usize,
    per_session: u64,
    think: Duration,
) -> Duration {
    let barrier = Arc::new(Barrier::new(sessions + 1));
    let mut handles = Vec::with_capacity(sessions);
    for sid in 0..sessions {
        let engine = Arc::clone(engine);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let s = engine.open_session();
            barrier.wait();
            for i in 0..per_session {
                s.execute(&statement(workload, sid, i))
                    .unwrap_or_else(|e| panic!("session {sid} stmt {i}: {e}"));
                if !think.is_zero() {
                    std::thread::sleep(think);
                }
            }
        }));
    }
    barrier.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().expect("client session");
    }
    t0.elapsed()
}
