//! Shared harness for the experiment binaries (`fig4` … `fig8`) that
//! regenerate every figure of the paper's evaluation (§V).
//!
//! Scale is controlled by the `INGOT_SCALE` environment variable:
//! `small` (default; seconds per figure), `medium`, or `large` (closest to
//! the paper's regime, minutes per figure). Absolute numbers differ from the
//! paper's 2009 hardware — EXPERIMENTS.md records both and compares shapes.

pub mod concurrency;

use std::sync::Arc;
use std::time::{Duration, Instant};

use ingot_common::{EngineConfig, SimClock};
use ingot_core::{Engine, Session};
use ingot_daemon::{DaemonConfig, StorageDaemon, WorkloadDb};
use ingot_workload::{load_nref, NrefConfig};

/// Experiment sizing.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Label printed in reports.
    pub name: &'static str,
    /// NREF scale.
    pub nref: NrefConfig,
    /// Statement count of the "50k" simple-join test.
    pub n_simple: u64,
    /// Statement count of the "1m" point-select test.
    pub n_point: u64,
    /// Buffer-pool pages (kept below the data size, as in the paper).
    pub buffer_pages: usize,
    /// Repetitions per measurement ("all tests were repeated three times").
    pub repeats: u32,
}

impl Scale {
    /// Resolve from `INGOT_SCALE` (small | medium | large), with
    /// `INGOT_REPEATS` optionally overriding the repeat count.
    pub fn from_env() -> Scale {
        let mut scale = Self::from_scale_name();
        if let Ok(r) = std::env::var("INGOT_REPEATS") {
            if let Ok(r) = r.parse::<u32>() {
                scale.repeats = r.max(1);
            }
        }
        scale
    }

    fn from_scale_name() -> Scale {
        match std::env::var("INGOT_SCALE").as_deref() {
            Ok("large") => Scale {
                name: "large",
                nref: NrefConfig::scaled(10.0), // 100 k proteins
                n_simple: 50_000,
                n_point: 1_000_000,
                buffer_pages: 4096,
                repeats: 3,
            },
            Ok("medium") => Scale {
                name: "medium",
                nref: NrefConfig::scaled(2.0), // 20 k proteins
                n_simple: 20_000,
                n_point: 200_000,
                buffer_pages: 2048,
                repeats: 3,
            },
            _ => Scale {
                name: "small",
                nref: NrefConfig::scaled(0.5), // 5 k proteins
                n_simple: 5_000,
                n_point: 50_000,
                buffer_pages: 1024,
                repeats: 2,
            },
        }
    }
}

/// The three instances of the paper's §V-A evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setup {
    /// Untouched engine, no sensors compiled in.
    Original,
    /// Sensors active, no daemon.
    Monitoring,
    /// Sensors active + storage daemon writing the workload DB.
    Daemon,
}

impl Setup {
    /// All three, in paper order.
    pub const ALL: [Setup; 3] = [Setup::Original, Setup::Monitoring, Setup::Daemon];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Setup::Original => "Original",
            Setup::Monitoring => "Monitoring",
            Setup::Daemon => "Daemon",
        }
    }
}

/// A prepared instance: engine with NREF loaded, plus the daemon when the
/// setup demands one.
pub struct Instance {
    /// The engine.
    pub engine: Arc<Engine>,
    /// Running daemon (Daemon setup only). Held for its lifetime.
    pub daemon: Option<ingot_daemon::DaemonHandle>,
    /// Temp dir of the workload DB (removed on drop).
    workdir: Option<std::path::PathBuf>,
}

impl Drop for Instance {
    fn drop(&mut self) {
        self.daemon.take(); // stop before removing files
        if let Some(dir) = self.workdir.take() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Build an instance of `setup` at `scale` with the NREF data loaded and
/// keyed primary structures (BTREE) on all six tables — the paper's §V-A
/// monitoring testbed is "created and filled … using only primary keys and
/// no other indexes", and its sub-second point selects require keyed access.
pub fn build_instance(setup: Setup, scale: &Scale) -> Instance {
    build_instance_with(setup, scale, true)
}

/// Build an instance, choosing whether tables get keyed (BTREE) primary
/// structures or stay on default heap (the §V-B tuning experiments start
/// from "the default storage structure heap").
pub fn build_instance_with(setup: Setup, scale: &Scale, keyed: bool) -> Instance {
    let config = match setup {
        Setup::Original => EngineConfig::original(),
        _ => EngineConfig::monitoring(),
    }
    .with_buffer_pool_pages(scale.buffer_pages);
    let clock = SimClock::new();
    let engine = Engine::builder()
        .config(config)
        .clock(clock.clone())
        .build()
        .expect("in-memory engine");
    load_nref(&engine, &scale.nref).expect("NREF load");
    if keyed {
        // The §V-A monitoring testbed is a *tuned* database (keyed primary
        // structures, statistics collected): those experiments measure
        // sensor overhead on fast statements, not planning quality. The
        // §V-B tuning experiments (fig6/fig7) pass `keyed = false` and
        // start from the untuned default-heap state instead.
        let session = engine.open_session();
        for ddl in ingot_workload::nref_schema_ddl() {
            let table = ddl.split_whitespace().nth(2).expect("table name");
            session
                .execute(&format!("create statistics on {table}"))
                .expect("create statistics");
            session
                .execute(&format!("modify {table} to btree"))
                .expect("modify to btree");
        }
    }

    let (daemon, workdir) = if setup == Setup::Daemon {
        let dir = std::env::temp_dir().join(format!(
            "ingot-bench-{}-{}",
            std::process::id(),
            engine.wall_clock().now_nanos()
        ));
        let wldb = Arc::new(WorkloadDb::file_backed(&dir, clock).expect("workload DB"));
        let daemon = StorageDaemon::new(
            Arc::clone(&engine),
            wldb,
            DaemonConfig {
                // The paper polls every 30 s during minutes-long runs;
                // scaled to our seconds-long runs so every test overlaps
                // several polls and the daemon's cost amortizes instead of
                // hitting one repetition as a spike.
                interval: Duration::from_millis(500),
                ..Default::default()
            },
        );
        (
            Some(daemon.spawn().expect("spawn daemon thread")),
            Some(dir),
        )
    } else {
        (None, None)
    };
    Instance {
        engine,
        daemon,
        workdir,
    }
}

/// Run a set of statements, returning the wall-clock duration.
pub fn run_statements<I, S>(session: &Session, statements: I) -> Duration
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let t0 = Instant::now();
    for stmt in statements {
        session
            .execute(stmt.as_ref())
            .unwrap_or_else(|e| panic!("statement failed: {e}: {}", stmt.as_ref()));
    }
    t0.elapsed()
}

/// Best-of-`repeats` wall time of `f` ("repeated three times to minimize
/// local anomalies").
pub fn best_of<F: FnMut() -> Duration>(repeats: u32, mut f: F) -> Duration {
    (0..repeats.max(1)).map(|_| f()).min().expect("≥1 repeat")
}

/// Pages → mebibytes.
pub fn pages_to_mib(pages: u64) -> f64 {
    pages as f64 * ingot_storage::PAGE_SIZE as f64 / (1024.0 * 1024.0)
}

/// Print a standard experiment header.
pub fn header(fig: &str, title: &str, scale: &Scale) {
    println!("==========================================================");
    println!("{fig}: {title}");
    println!(
        "scale={} (proteins={}, simple={}, point={}, buffer={}p, repeats={})",
        scale.name,
        scale.nref.proteins,
        scale.n_simple,
        scale.n_point,
        scale.buffer_pages,
        scale.repeats
    );
    println!("==========================================================");
}
