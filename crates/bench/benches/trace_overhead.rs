//! Cost of the structured tracing layer, measured the same way Fig 4
//! measures the monitor: per-statement wall time of a sub-millisecond point
//! select under three setups — monitoring only (tracing compiled in but
//! disabled at runtime, i.e. one relaxed atomic load per statement),
//! tracing enabled (stage + operator spans, histogram, ring buffer), and a
//! full `EXPLAIN ANALYZE` of the same statement.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ingot_common::EngineConfig;
use ingot_core::Engine;
use std::sync::Arc;

fn prepared_engine(config: EngineConfig) -> Arc<Engine> {
    let engine = Engine::builder().config(config).build().unwrap();
    let s = engine.open_session();
    s.execute("create table protein (nref_id int not null primary key, name text)")
        .unwrap();
    for i in 0..1000 {
        s.execute(&format!("insert into protein values ({i}, 'p{i}')"))
            .unwrap();
    }
    s.execute("create statistics on protein").unwrap();
    s.execute("modify protein to btree").unwrap();
    engine
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    let cases = [
        ("tracing_off", EngineConfig::monitoring(), false),
        ("tracing_on", EngineConfig::tracing(), false),
        ("explain_analyze", EngineConfig::tracing(), true),
    ];
    for (label, config, explain) in cases {
        let engine = prepared_engine(config);
        let session = engine.open_session();
        let prefix = if explain { "explain analyze " } else { "" };
        let mut i = 0u64;
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                i += 1;
                let sql = format!(
                    "{prefix}select name from protein where nref_id = {}",
                    i % 1000
                );
                black_box(session.execute(&sql).unwrap());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
