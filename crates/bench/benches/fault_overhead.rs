//! Healthy-path overhead of the robustness layer: a `FaultInjectingBackend`
//! with an empty plan in front of the memory backend, and the retry wrapper
//! around an operation that succeeds first try. Both should cost nanoseconds
//! (one atomic increment + an uncontended mutex, and one closure call) —
//! negligible against the microsecond-scale page I/O they wrap.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ingot_common::{RetryPolicy, SimClock};
use ingot_storage::{DiskBackend, FaultInjectingBackend, FaultPlan, MemoryBackend, Page};

fn bench_backend_write(c: &mut Criterion) {
    let raw = MemoryBackend::new();
    let f = raw.create_file().unwrap();
    let p0 = raw.allocate_page(f).unwrap();
    let page = Page::new();
    c.bench_function("write_page_raw_memory", |b| {
        b.iter(|| {
            raw.write_page(black_box(f), black_box(p0), black_box(&page))
                .unwrap()
        })
    });

    let wrapped = FaultInjectingBackend::new(Box::new(MemoryBackend::new()), FaultPlan::new());
    let f = wrapped.create_file().unwrap();
    let p0 = wrapped.allocate_page(f).unwrap();
    c.bench_function("write_page_fault_wrapper_empty_plan", |b| {
        b.iter(|| {
            wrapped
                .write_page(black_box(f), black_box(p0), black_box(&page))
                .unwrap()
        })
    });
}

fn bench_backend_read(c: &mut Criterion) {
    let raw = MemoryBackend::new();
    let f = raw.create_file().unwrap();
    let p0 = raw.allocate_page(f).unwrap();
    c.bench_function("read_page_raw_memory", |b| {
        b.iter(|| raw.read_page(black_box(f), black_box(p0)).unwrap())
    });

    let wrapped = FaultInjectingBackend::new(Box::new(MemoryBackend::new()), FaultPlan::new());
    let f = wrapped.create_file().unwrap();
    let p0 = wrapped.allocate_page(f).unwrap();
    c.bench_function("read_page_fault_wrapper_empty_plan", |b| {
        b.iter(|| wrapped.read_page(black_box(f), black_box(p0)).unwrap())
    });
}

fn bench_retry_healthy_path(c: &mut Criterion) {
    let policy = RetryPolicy::default();
    let clock = SimClock::new();
    c.bench_function("retry_run_sim_first_try_success", |b| {
        b.iter(|| {
            policy
                .run_sim(&clock, |attempt| {
                    Ok::<u64, ingot_common::Error>(black_box(u64::from(attempt)))
                })
                .unwrap()
        })
    });
    c.bench_function("bare_closure_baseline", |b| b.iter(|| black_box(1u64)));
}

criterion_group!(
    benches,
    bench_backend_write,
    bench_backend_read,
    bench_retry_healthy_path
);
criterion_main!(benches);
