//! Plan-cache micro-benchmarks: the cost of one prepared execution with the
//! shared plan cache hitting vs. disabled (full parse + bind + optimize on
//! every call), for a point select and a two-table join.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ingot_common::{EngineConfig, Value};
use ingot_core::Engine;

const POINT: &str = "select name, len from protein where nref_id = $1";
const JOIN: &str = "select p.name, o.taxon_id from protein p \
                    join organism o on p.nref_id = o.nref_id where p.nref_id = $1";

fn engine(plan_cache_capacity: usize) -> std::sync::Arc<Engine> {
    let engine = Engine::builder()
        .config(EngineConfig::original())
        .plan_cache_capacity(plan_cache_capacity)
        .build()
        .unwrap();
    let s = engine.open_session();
    s.execute("create table protein (nref_id int not null primary key, name text, len int)")
        .unwrap();
    s.execute("create table organism (nref_id int not null, taxon_id int)")
        .unwrap();
    for i in 0..2000 {
        s.execute(&format!(
            "insert into protein values ({i}, 'p{i}', {})",
            i % 50
        ))
        .unwrap();
        s.execute(&format!("insert into organism values ({i}, {})", i % 20))
            .unwrap();
    }
    s.execute("create index organism_nref on organism (nref_id)")
        .unwrap();
    s.execute("modify protein to btree").unwrap();
    s.execute("create statistics on protein").unwrap();
    s.execute("create statistics on organism").unwrap();
    engine
}

fn bench_template(c: &mut Criterion, label: &str, template: &str) {
    for (suffix, capacity) in [("cached", 256), ("uncached", 0)] {
        let engine = engine(capacity);
        let session = engine.open_session();
        let prepared = session.prepare(template).unwrap();
        let mut i = 0i64;
        c.bench_function(&format!("{label}_{suffix}"), |b| {
            b.iter(|| {
                i = (i + 1) % 2000;
                black_box(prepared.execute(black_box(&[Value::Int(i)])).unwrap())
            })
        });
    }
}

fn bench_point(c: &mut Criterion) {
    bench_template(c, "prepared_point_select", POINT);
}

fn bench_join(c: &mut Criterion) {
    bench_template(c, "prepared_join", JOIN);
}

criterion_group!(benches, bench_point, bench_join);
criterion_main!(benches);
