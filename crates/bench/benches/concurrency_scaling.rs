//! Criterion harness for the concurrency-scaling experiment: 1/2/4/8
//! closed-loop sessions × {read-only, 90-10 mixed, write-heavy} statement
//! mixes on one shared engine. The JSON artefact in `results/` is produced
//! by the `concurrency_scaling` *binary*; this bench tracks the same cells
//! under criterion for regression comparison.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ingot_bench::concurrency::{build_engine, run_batch, Workload, SESSION_COUNTS};

/// Statements per session per iteration — small, so criterion's repeated
/// sampling stays affordable.
const PER_SESSION: u64 = 50;

/// Think time between statements (closed-loop client model; see the
/// `ingot_bench::concurrency` module docs for why throughput rather than
/// CPU parallelism is the scaling signal).
const THINK: Duration = Duration::from_micros(200);

fn bench_scaling(c: &mut Criterion) {
    for workload in Workload::ALL {
        let engine = build_engine();
        let mut group = c.benchmark_group(format!("concurrency_scaling/{}", workload.label()));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(3));
        for sessions in SESSION_COUNTS {
            group.throughput(Throughput::Elements(PER_SESSION * sessions as u64));
            group.bench_with_input(
                BenchmarkId::from_parameter(sessions),
                &sessions,
                |b, &sessions| {
                    b.iter(|| run_batch(&engine, workload, sessions, PER_SESSION, THINK))
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
