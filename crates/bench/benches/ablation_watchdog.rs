//! Ablation: the paper's central design choice is sensors *inside* the DBMS
//! core versus "an additional watchdog on top of the system" with its
//! "communication overhead". This bench compares our inline sensor path with
//! a watchdog-style design that ships the same per-statement record over a
//! channel to a separate consumer thread.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use crossbeam::channel;
use ingot_common::{Cost, EngineConfig, MonotonicClock, TableId};
use ingot_core::monitor::{Monitor, TableDetail};

const TEXT: &str = "select p.nref_id from protein p where p.nref_id = 'NF00000001'";

fn table_detail() -> TableDetail {
    TableDetail {
        id: TableId(1),
        name: "protein".into(),
        storage: "HEAP".into(),
        data_pages: 100,
        overflow_pages: 10,
        rows: 10_000,
    }
}

/// The record a watchdog design would ship per statement.
#[allow(dead_code)]
struct WatchdogRecord {
    text: String,
    tables: Vec<TableDetail>,
    est: Cost,
    exec_cpu: u64,
    exec_io: u64,
    wallclock_ns: u64,
}

fn bench_inline_sensors(c: &mut Criterion) {
    let monitor = Monitor::new(&EngineConfig::default(), MonotonicClock::new());
    c.bench_function("ablation_inline_sensors", |b| {
        b.iter(|| {
            let mut s = monitor.begin_statement(black_box(TEXT));
            monitor.parsed(&mut s, vec![table_detail()], vec![]);
            monitor.optimized(&mut s, Cost::new(100.0, 3.0), vec![], 1_000, 3);
            monitor.executed(&mut s, 1, 0);
            monitor.record(s, 0);
        })
    });
}

fn bench_watchdog_channel(c: &mut Criterion) {
    // Consumer thread mimicking a watchdog that aggregates records.
    let (tx, rx) = channel::bounded::<WatchdogRecord>(4096);
    let consumer = std::thread::spawn(move || {
        let mut total_ns = 0u64;
        for rec in rx {
            total_ns = total_ns.wrapping_add(rec.wallclock_ns);
        }
        total_ns
    });
    let clock = MonotonicClock::new();
    c.bench_function("ablation_watchdog_channel", |b| {
        b.iter(|| {
            let t0 = clock.now_nanos();
            let rec = WatchdogRecord {
                text: TEXT.to_owned(),
                tables: vec![table_detail()],
                est: Cost::new(100.0, 3.0),
                exec_cpu: 1,
                exec_io: 0,
                wallclock_ns: clock.now_nanos() - t0,
            };
            tx.send(black_box(rec)).unwrap();
        })
    });
    drop(tx);
    let _ = consumer.join();
}

criterion_group!(benches, bench_inline_sensors, bench_watchdog_channel);
criterion_main!(benches);
