//! Micro-benchmarks of the monitoring primitives: the §V-A claim is that
//! "each call to a monitoring function takes about one or two microseconds"
//! and adds 30–70 µs per statement. These benches measure our equivalents.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ingot_common::TableId;
use ingot_common::{fnv1a64, Cost, EngineConfig, MonotonicClock, StmtHash};
use ingot_core::monitor::{Monitor, RingBuffer, TableDetail};

fn bench_hashing(c: &mut Criterion) {
    let text = "select p.nref_id, sequence, ordinal from protein p \
                join organism o on p.nref_id = o.nref_id where p.nref_id = 'NF00012345'";
    c.bench_function("fnv1a64_statement_text", |b| {
        b.iter(|| fnv1a64(black_box(text.as_bytes())))
    });
    c.bench_function("stmt_hash", |b| b.iter(|| StmtHash::of(black_box(text))));
}

fn bench_ring(c: &mut Criterion) {
    c.bench_function("ring_push_wrapping", |b| {
        let mut ring = RingBuffer::new(1000);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ring.push(black_box(i));
        })
    });
}

fn bench_sensor_pipeline(c: &mut Criterion) {
    let monitor = Monitor::new(&EngineConfig::default(), MonotonicClock::new());
    let text = "select p.nref_id from protein p where p.nref_id = 'NF00000001'";
    c.bench_function("full_sensor_pipeline_per_statement", |b| {
        b.iter(|| {
            let mut s = monitor.begin_statement(black_box(text));
            monitor.parsed(
                &mut s,
                vec![TableDetail {
                    id: TableId(1),
                    name: "protein".into(),
                    storage: "HEAP".into(),
                    data_pages: 100,
                    overflow_pages: 10,
                    rows: 10_000,
                }],
                vec![],
            );
            monitor.optimized(&mut s, Cost::new(100.0, 3.0), vec![], 1_000, 3);
            monitor.executed(&mut s, 1, 0);
            monitor.record(s, 0);
        })
    });
    c.bench_function("begin_statement_only", |b| {
        b.iter(|| {
            let s = monitor.begin_statement(black_box(text));
            black_box(&s);
        })
    });
}

criterion_group!(benches, bench_hashing, bench_ring, bench_sensor_pipeline);
criterion_main!(benches);
