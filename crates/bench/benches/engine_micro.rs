//! Engine-stage micro-benchmarks: where does a statement's time go?
//! (Parse, bind+optimize, execute — the three stages the sensors bracket.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ingot_common::EngineConfig;
use ingot_core::Engine;
use ingot_planner::{optimize, Binder, OptimizerOptions};
use ingot_sql::parse_statement;

const POINT: &str = "select name from protein where nref_id = 42";
const JOIN: &str = "select p.name, o.taxon_id from protein p \
                    join organism o on p.nref_id = o.nref_id where o.taxon_id = 3";

fn engine() -> std::sync::Arc<Engine> {
    let engine = Engine::builder()
        .config(EngineConfig::original())
        .build()
        .unwrap();
    let s = engine.open_session();
    s.execute("create table protein (nref_id int not null primary key, name text, len int)")
        .unwrap();
    s.execute("create table organism (nref_id int not null, taxon_id int)")
        .unwrap();
    for i in 0..2000 {
        s.execute(&format!(
            "insert into protein values ({i}, 'p{i}', {})",
            i % 50
        ))
        .unwrap();
        s.execute(&format!("insert into organism values ({i}, {})", i % 20))
            .unwrap();
    }
    s.execute("create statistics on protein").unwrap();
    s.execute("create statistics on organism").unwrap();
    engine
}

fn bench_parse(c: &mut Criterion) {
    c.bench_function("parse_point_select", |b| {
        b.iter(|| parse_statement(black_box(POINT)).unwrap())
    });
    c.bench_function("parse_join", |b| {
        b.iter(|| parse_statement(black_box(JOIN)).unwrap())
    });
}

fn bench_bind_optimize(c: &mut Criterion) {
    let engine = engine();
    let stmt = parse_statement(JOIN).unwrap();
    c.bench_function("bind_and_optimize_join", |b| {
        b.iter(|| {
            let catalog = engine.catalog().read();
            let (bound, _) = Binder::new(&catalog).bind(black_box(&stmt)).unwrap();
            black_box(optimize(&catalog, &bound, OptimizerOptions::default()).unwrap());
        })
    });
}

fn bench_execute(c: &mut Criterion) {
    let engine = engine();
    let session = engine.open_session();
    c.bench_function("execute_point_select_seqscan", |b| {
        b.iter(|| black_box(session.execute(POINT).unwrap()))
    });
    session.execute("modify protein to btree").unwrap();
    c.bench_function("execute_point_select_pklookup", |b| {
        b.iter(|| black_box(session.execute(POINT).unwrap()))
    });
    c.bench_function("execute_join_grouped", |b| {
        b.iter(|| black_box(session.execute(JOIN).unwrap()))
    });
}

criterion_group!(benches, bench_parse, bench_bind_optimize, bench_execute);
criterion_main!(benches);
