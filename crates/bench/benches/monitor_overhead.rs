//! The Fig 4 comparison as a criterion micro-benchmark: per-statement cost
//! of a sub-millisecond point select on the Original vs Monitoring setups.
//! The absolute difference is the per-statement monitoring overhead.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ingot_common::EngineConfig;
use ingot_core::Engine;
use std::sync::Arc;

fn prepared_engine(monitoring: bool) -> Arc<Engine> {
    let config = if monitoring {
        EngineConfig::monitoring()
    } else {
        EngineConfig::original()
    };
    let engine = Engine::builder().config(config).build().unwrap();
    let s = engine.open_session();
    s.execute("create table protein (nref_id int not null primary key, name text)")
        .unwrap();
    for i in 0..1000 {
        s.execute(&format!("insert into protein values ({i}, 'p{i}')"))
            .unwrap();
    }
    s.execute("create statistics on protein").unwrap();
    s.execute("modify protein to btree").unwrap();
    engine
}

fn bench_point_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_select");
    for monitoring in [false, true] {
        let engine = prepared_engine(monitoring);
        let session = engine.open_session();
        let label = if monitoring { "monitoring" } else { "original" };
        let mut i = 0u64;
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                i += 1;
                let sql = format!("select name from protein where nref_id = {}", i % 1000);
                black_box(session.execute(&sql).unwrap());
            })
        });
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert");
    for monitoring in [false, true] {
        let engine = prepared_engine(monitoring);
        let session = engine.open_session();
        let label = if monitoring { "monitoring" } else { "original" };
        let mut i = 10_000u64;
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                i += 1;
                let sql = format!("insert into protein values ({i}, 'x')");
                black_box(session.execute(&sql).unwrap());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_point_select, bench_insert);
criterion_main!(benches);
