//! DML execution: INSERT, UPDATE, DELETE, plus the top-level statement
//! dispatcher.
//!
//! UPDATE/DELETE resolve their target rows through the cheapest access path
//! available — clustered primary-key lookup, a secondary-index probe, or a
//! full scan — mirroring how the optimizer chooses paths for queries.

use ingot_catalog::Catalog;
use ingot_common::{MonotonicClock, Result, Row, TableId, Value};
use ingot_planner::{InsertRows, PhysExpr, PlannedStatement};
use ingot_sql::BinOp;
use ingot_storage::RowId;
use ingot_trace::OperatorSpan;

use crate::exec::{execute_plan, execute_plan_traced, QueryResult};

/// The outcome of executing any statement.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    /// Result rows (queries only).
    pub rows: Vec<Row>,
    /// Rows inserted/updated/deleted (DML only).
    pub affected: u64,
    /// Tuples processed (actual CPU cost proxy).
    pub tuples: u64,
}

/// Row-mutation callback, invoked after each successful catalog mutation.
///
/// The engine uses this to write WAL records and undo entries without the
/// executor knowing about either. An `Err` from a callback aborts the
/// statement mid-way; the engine's transaction machinery is responsible for
/// undoing the rows already applied (it records undo information *before*
/// the fallible part of each callback runs).
pub trait DmlObserver {
    /// `row` was inserted into `table` at `rid`.
    fn on_insert(&self, table: TableId, rid: RowId, row: &Row) -> Result<()>;
    /// The row `old` at `rid` was deleted from `table`.
    fn on_delete(&self, table: TableId, rid: RowId, old: &Row) -> Result<()>;
    /// `old` at `old_rid` was rewritten to `new` at `new_rid` (the row id
    /// moves when the update changes the primary key of a BTree table).
    fn on_update(
        &self,
        table: TableId,
        old_rid: RowId,
        new_rid: RowId,
        old: &Row,
        new: &Row,
    ) -> Result<()>;
}

/// Observer that records nothing (query paths, replay, tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl DmlObserver for NoopObserver {
    fn on_insert(&self, _table: TableId, _rid: RowId, _row: &Row) -> Result<()> {
        Ok(())
    }
    fn on_delete(&self, _table: TableId, _rid: RowId, _old: &Row) -> Result<()> {
        Ok(())
    }
    fn on_update(
        &self,
        _table: TableId,
        _old_rid: RowId,
        _new_rid: RowId,
        _old: &Row,
        _new: &Row,
    ) -> Result<()> {
        Ok(())
    }
}

/// Execute a planned statement against a catalog snapshot. DML goes through
/// the catalog's `&self` row mutators (the storage handles are shared and
/// internally synchronised); the caller must hold the logical table locks.
pub fn execute_statement(catalog: &Catalog, planned: &PlannedStatement) -> Result<ExecOutcome> {
    execute_statement_observed(catalog, planned, &NoopObserver)
}

/// [`execute_statement`] with a [`DmlObserver`] receiving every row mutation.
pub fn execute_statement_observed(
    catalog: &Catalog,
    planned: &PlannedStatement,
    observer: &dyn DmlObserver,
) -> Result<ExecOutcome> {
    match planned {
        PlannedStatement::Query(q) => {
            let QueryResult { rows, tuples } = execute_plan(catalog, &q.root)?;
            Ok(ExecOutcome {
                affected: 0,
                tuples: tuples + rows.len() as u64,
                rows,
            })
        }
        PlannedStatement::Insert { table, rows, .. } => {
            let n = rows.len() as u64;
            match rows {
                InsertRows::Const(rows) => {
                    for row in rows {
                        let rid = catalog.insert_row(*table, row)?;
                        observer.on_insert(*table, rid, row)?;
                    }
                }
                // Parameterised templates: values were unknown at bind time,
                // so evaluate and constraint-check each row here.
                InsertRows::Dynamic(exprs) => {
                    let schema = catalog.table(*table)?.meta.schema.clone();
                    let empty = Row::default();
                    for row_exprs in exprs {
                        let values: Vec<Value> = row_exprs
                            .iter()
                            .map(|e| e.eval(&empty))
                            .collect::<Result<_>>()?;
                        let row = schema.check_row(&Row::new(values))?;
                        let rid = catalog.insert_row(*table, &row)?;
                        observer.on_insert(*table, rid, &row)?;
                    }
                }
            }
            Ok(ExecOutcome {
                rows: Vec::new(),
                affected: n,
                tuples: n,
            })
        }
        PlannedStatement::Update {
            table,
            sets,
            filter,
            ..
        } => {
            let (targets, scanned) = target_rows(catalog, *table, filter.as_ref())?;
            let n = targets.len() as u64;
            for (rid, row) in targets {
                let mut new_row = row.clone();
                for (col, expr) in sets {
                    new_row.set(*col, expr.eval(&row)?);
                }
                let new_rid = catalog.update_row(*table, rid, &new_row)?;
                observer.on_update(*table, rid, new_rid, &row, &new_row)?;
            }
            Ok(ExecOutcome {
                rows: Vec::new(),
                affected: n,
                tuples: scanned,
            })
        }
        PlannedStatement::Delete { table, filter, .. } => {
            let (targets, scanned) = target_rows(catalog, *table, filter.as_ref())?;
            let n = targets.len() as u64;
            for (rid, old) in targets {
                catalog.delete_row(*table, rid)?;
                observer.on_delete(*table, rid, &old)?;
            }
            Ok(ExecOutcome {
                rows: Vec::new(),
                affected: n,
                tuples: scanned,
            })
        }
    }
}

/// Execute a planned statement with span collection. Queries get a full
/// per-operator span tree; writing DML gets one synthetic span covering the
/// whole statement (the write paths have no operator tree to decompose).
pub fn execute_statement_traced(
    catalog: &Catalog,
    planned: &PlannedStatement,
    clock: MonotonicClock,
) -> Result<(ExecOutcome, Vec<OperatorSpan>)> {
    execute_statement_traced_observed(catalog, planned, clock, &NoopObserver)
}

/// [`execute_statement_traced`] with a [`DmlObserver`] receiving every row
/// mutation.
pub fn execute_statement_traced_observed(
    catalog: &Catalog,
    planned: &PlannedStatement,
    clock: MonotonicClock,
    observer: &dyn DmlObserver,
) -> Result<(ExecOutcome, Vec<OperatorSpan>)> {
    if let PlannedStatement::Query(q) = planned {
        let (QueryResult { rows, tuples }, spans) = execute_plan_traced(catalog, &q.root, clock)?;
        return Ok((
            ExecOutcome {
                affected: 0,
                tuples: tuples + rows.len() as u64,
                rows,
            },
            spans,
        ));
    }
    let (op, table) = match planned {
        PlannedStatement::Query(_) => unreachable!(),
        PlannedStatement::Insert { table, .. } => ("Insert", *table),
        PlannedStatement::Update { table, .. } => ("Update", *table),
        PlannedStatement::Delete { table, .. } => ("Delete", *table),
    };
    let detail = match catalog.table(table) {
        Ok(entry) => format!(" on {}", entry.meta.name),
        Err(_) => String::new(),
    };
    let est = planned.estimated_cost();
    let io_before = catalog.pool().io_stats().total();
    let start_ns = clock.now_nanos();
    let outcome = execute_statement_observed(catalog, planned, observer)?;
    let elapsed_ns = clock.now_nanos().saturating_sub(start_ns);
    let pages = catalog.pool().io_stats().total().saturating_sub(io_before);
    let span = OperatorSpan {
        op_id: 0,
        parent: None,
        depth: 0,
        op: op.to_string(),
        detail,
        est_rows: est.cpu,
        est_cost: est.total(),
        rows_in: 0,
        rows_out: outcome.affected,
        tuples: outcome.tuples,
        pages,
        elapsed_ns,
    };
    Ok((outcome, vec![span]))
}

/// Resolve the `(RowId, Row)` targets of an UPDATE/DELETE, returning also
/// the number of tuples inspected.
fn target_rows(
    catalog: &Catalog,
    table: TableId,
    filter: Option<&PhysExpr>,
) -> Result<(Vec<(RowId, Row)>, u64)> {
    let entry = catalog.table(table)?;
    let mut scanned = 0u64;

    if let Some(f) = filter {
        let eqs = equalities(f);
        // Path 1: full primary key on a BTree table.
        if entry.primary.is_some() && !entry.meta.primary_key.is_empty() {
            let key: Vec<Value> = entry
                .meta
                .primary_key
                .iter()
                .filter_map(|c| eqs.iter().find(|(col, _)| col == c).map(|(_, v)| v.clone()))
                .collect();
            if key.len() == entry.meta.primary_key.len() {
                let mut out = Vec::new();
                if let Some(rid) = entry.pk_lookup(&key)? {
                    let row = entry.heap.get(rid)?;
                    scanned += 1;
                    if f.eval_predicate(&row)? {
                        out.push((rid, row));
                    }
                }
                return Ok((out, scanned));
            }
        }
        // Path 2: secondary index with a leading-column equality.
        for idx in catalog.indexes_of(table) {
            if idx.meta.is_virtual {
                continue;
            }
            if let Some((_, v)) = eqs.iter().find(|(c, _)| *c == idx.meta.columns[0]) {
                let rids = idx.probe_eq(std::slice::from_ref(v))?;
                let mut out = Vec::new();
                for rid in rids {
                    let row = entry.heap.get(rid)?;
                    scanned += 1;
                    if f.eval_predicate(&row)? {
                        out.push((rid, row));
                    }
                }
                return Ok((out, scanned));
            }
        }
    }

    // Path 3: full scan.
    let mut out = Vec::new();
    for item in entry.heap.scan() {
        let (rid, row) = item?;
        scanned += 1;
        let keep = match filter {
            Some(f) => f.eval_predicate(&row)?,
            None => true,
        };
        if keep {
            out.push((rid, row));
        }
    }
    Ok((out, scanned))
}

/// Extract `(column, literal)` equality pairs from a conjunctive filter.
fn equalities(f: &PhysExpr) -> Vec<(usize, Value)> {
    let mut out = Vec::new();
    fn walk(e: &PhysExpr, out: &mut Vec<(usize, Value)>) {
        match e {
            PhysExpr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                walk(left, out);
                walk(right, out);
            }
            PhysExpr::Binary {
                op: BinOp::Eq,
                left,
                right,
            } => match (&**left, &**right) {
                (PhysExpr::Col(c), PhysExpr::Literal(v))
                | (PhysExpr::Literal(v), PhysExpr::Col(c)) => out.push((*c, v.clone())),
                _ => {}
            },
            _ => {}
        }
    }
    walk(f, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_catalog::StorageStructure;
    use ingot_common::{Column, DataType, EngineConfig, Schema, SimClock};
    use ingot_planner::{optimize, Binder, OptimizerOptions};
    use ingot_sql::parse_statement;
    use ingot_storage::StorageEngine;
    use std::sync::Arc;

    fn setup() -> Catalog {
        let cfg = EngineConfig::default();
        let storage = StorageEngine::in_memory(&cfg, SimClock::new());
        let mut c = Catalog::new(Arc::clone(storage.pool()), 4);
        c.create_table(
            "t",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("v", DataType::Int),
            ]),
            vec![0],
        )
        .unwrap();
        c
    }

    fn exec(c: &mut Catalog, sql: &str) -> ExecOutcome {
        let (bound, _) = Binder::new(c).bind(&parse_statement(sql).unwrap()).unwrap();
        let planned = optimize(c, &bound, OptimizerOptions::default()).unwrap();
        execute_statement(c, &planned).unwrap()
    }

    #[test]
    fn insert_update_delete_roundtrip() {
        let mut c = setup();
        let out = exec(&mut c, "insert into t values (1, 10), (2, 20), (3, 30)");
        assert_eq!(out.affected, 3);
        let out = exec(&mut c, "update t set v = v + 5 where id = 2");
        assert_eq!(out.affected, 1);
        let r = exec(&mut c, "select v from t where id = 2");
        assert_eq!(r.rows[0].get(0), &Value::Int(25));
        let out = exec(&mut c, "delete from t where v > 20");
        assert_eq!(out.affected, 2); // 25 and 30
        let r = exec(&mut c, "select count(*) from t");
        assert_eq!(r.rows[0].get(0), &Value::Int(1));
    }

    #[test]
    fn update_via_pk_lookup_scans_one_row() {
        let mut c = setup();
        for i in 0..500 {
            exec(&mut c, &format!("insert into t values ({i}, {})", i * 2));
        }
        let t = c.resolve_table("t").unwrap();
        c.modify_storage(t, StorageStructure::BTree).unwrap();
        let out = exec(&mut c, "update t set v = 0 where id = 250");
        assert_eq!(out.affected, 1);
        assert_eq!(out.tuples, 1, "pk path must not scan the table");
    }

    #[test]
    fn delete_via_secondary_index() {
        let mut c = setup();
        for i in 0..100 {
            exec(&mut c, &format!("insert into t values ({i}, {})", i % 10));
        }
        let t = c.resolve_table("t").unwrap();
        c.create_index("t_v", t, vec![1], false).unwrap();
        let out = exec(&mut c, "delete from t where v = 3");
        assert_eq!(out.affected, 10);
        assert!(out.tuples <= 10, "index path must not scan the table");
        let r = exec(&mut c, "select count(*) from t where v = 3");
        assert_eq!(r.rows[0].get(0), &Value::Int(0));
    }

    #[test]
    fn update_that_moves_pk() {
        let mut c = setup();
        exec(&mut c, "insert into t values (1, 10)");
        let t = c.resolve_table("t").unwrap();
        c.modify_storage(t, StorageStructure::BTree).unwrap();
        let out = exec(&mut c, "update t set id = 99 where id = 1");
        assert_eq!(out.affected, 1);
        let r = exec(&mut c, "select v from t where id = 99");
        assert_eq!(r.rows.len(), 1);
        let r = exec(&mut c, "select v from t where id = 1");
        assert!(r.rows.is_empty());
    }
}
