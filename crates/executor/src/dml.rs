//! DML execution: INSERT, UPDATE, DELETE, plus the top-level statement
//! dispatcher.
//!
//! UPDATE/DELETE resolve their target rows through the cheapest access path
//! available — clustered primary-key lookup, a secondary-index probe, or a
//! full scan — mirroring how the optimizer chooses paths for queries.
//!
//! Writes are MVCC row-level (PR 8): target resolution reads the statement's
//! snapshot, then each target's version chain is locked at its *root* (a
//! row-exclusive lock — writers never lock the table exclusively) and the
//! write applies to the chain head. When the head moved past the snapshot,
//! [`DmlCtx::retarget`] decides between first-committer-wins abort (explicit
//! transactions) and re-evaluating the statement against the new head
//! (auto-commit, which preserves the no-lost-updates behaviour of the old
//! table-lock protocol).

use ingot_catalog::{Catalog, TableEntry, VersionChange, WriteAs};
use ingot_common::mvcc::{is_txn_mark, mark_owner, TS_INF};
use ingot_common::{fnv1a64, Error, MonotonicClock, Result, Row, Snapshot, TableId, TxnId, Value};
use ingot_planner::{InsertRows, PhysExpr, PlannedStatement};
use ingot_sql::BinOp;
use ingot_storage::RowId;
use ingot_trace::OperatorSpan;
use ingot_txn::{LockManager, LockMode, Resource};

use crate::exec::{execute_plan_snapshot, execute_plan_traced_snapshot, QueryResult};

/// The outcome of executing any statement.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    /// Result rows (queries only).
    pub rows: Vec<Row>,
    /// Rows inserted/updated/deleted (DML only).
    pub affected: u64,
    /// Tuples processed (actual CPU cost proxy).
    pub tuples: u64,
}

/// Everything a statement needs to read and write consistently under MVCC.
#[derive(Clone, Copy)]
pub struct DmlCtx<'a> {
    /// The visibility snapshot: queries and DML target resolution read it.
    pub snap: Snapshot,
    /// How new versions are stamped (transaction marker or final timestamp).
    pub write: WriteAs,
    /// Row-lock manager plus the locking transaction. `None` runs unlocked —
    /// single-threaded callers only (WAL replay, bulk load, tests).
    pub locks: Option<(&'a LockManager, TxnId)>,
    /// When a target row's chain grew past the snapshot: `true` re-reads the
    /// head, re-evaluates the predicate and applies there (auto-commit
    /// semantics — no lost updates, no spurious aborts); `false` fails the
    /// statement with [`Error::WriteConflict`] (explicit transactions,
    /// first-committer-wins).
    pub retarget: bool,
}

impl DmlCtx<'static> {
    /// Unlocked, latest-snapshot, committed-at-0 context: the behaviour of
    /// the pre-MVCC direct write path. Single-threaded callers only.
    pub fn direct() -> Self {
        DmlCtx {
            snap: Snapshot::latest(),
            write: WriteAs::Committed(0),
            locks: None,
            retarget: false,
        }
    }
}

/// Row-mutation callback, invoked after each successful catalog mutation.
///
/// The engine uses this to write WAL records and undo entries without the
/// executor knowing about either. An `Err` from a callback aborts the
/// statement mid-way; the engine's transaction machinery is responsible for
/// undoing the versions already applied (each callback receives the
/// [`VersionChange`]s *before* its fallible part runs, so the undo list is
/// always complete).
pub trait DmlObserver {
    /// `row` was inserted into `table` at `rid`.
    fn on_insert(
        &self,
        table: TableId,
        rid: RowId,
        row: &Row,
        change: &VersionChange,
    ) -> Result<()>;
    /// The row `old` at `rid` was delete-marked in `table`.
    fn on_delete(
        &self,
        table: TableId,
        rid: RowId,
        old: &Row,
        change: &VersionChange,
    ) -> Result<()>;
    /// `old` at `old_rid` was superseded by `new` at `new_rid` (two changes
    /// when the update moved the primary key: delete-mark + fresh insert).
    fn on_update(
        &self,
        table: TableId,
        old_rid: RowId,
        new_rid: RowId,
        old: &Row,
        new: &Row,
        changes: &[VersionChange],
    ) -> Result<()>;
}

/// Observer that records nothing (query paths, replay, tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl DmlObserver for NoopObserver {
    fn on_insert(
        &self,
        _table: TableId,
        _rid: RowId,
        _row: &Row,
        _change: &VersionChange,
    ) -> Result<()> {
        Ok(())
    }
    fn on_delete(
        &self,
        _table: TableId,
        _rid: RowId,
        _old: &Row,
        _change: &VersionChange,
    ) -> Result<()> {
        Ok(())
    }
    fn on_update(
        &self,
        _table: TableId,
        _old_rid: RowId,
        _new_rid: RowId,
        _old: &Row,
        _new: &Row,
        _changes: &[VersionChange],
    ) -> Result<()> {
        Ok(())
    }
}

/// Execute a planned statement in direct mode (see [`DmlCtx::direct`]).
pub fn execute_statement(catalog: &Catalog, planned: &PlannedStatement) -> Result<ExecOutcome> {
    execute_statement_ctx(catalog, planned, &DmlCtx::direct(), &NoopObserver)
}

/// [`execute_statement`] with a [`DmlObserver`] receiving every row mutation.
pub fn execute_statement_observed(
    catalog: &Catalog,
    planned: &PlannedStatement,
    observer: &dyn DmlObserver,
) -> Result<ExecOutcome> {
    execute_statement_ctx(catalog, planned, &DmlCtx::direct(), observer)
}

/// Execute a planned statement under an explicit [`DmlCtx`]: queries read
/// the context's snapshot (lock-free), DML locks row chains and stamps
/// versions per the context's write mode.
pub fn execute_statement_ctx(
    catalog: &Catalog,
    planned: &PlannedStatement,
    ctx: &DmlCtx<'_>,
    observer: &dyn DmlObserver,
) -> Result<ExecOutcome> {
    match planned {
        PlannedStatement::Query(q) => {
            let QueryResult { rows, tuples } = execute_plan_snapshot(catalog, &q.root, &ctx.snap)?;
            Ok(ExecOutcome {
                affected: 0,
                tuples: tuples + rows.len() as u64,
                rows,
            })
        }
        PlannedStatement::Insert { table, rows, .. } => {
            let mut n = 0u64;
            match rows {
                InsertRows::Const(rows) => {
                    for row in rows {
                        insert_one(catalog, *table, row, ctx, observer)?;
                        n += 1;
                    }
                }
                // Parameterised templates: values were unknown at bind time,
                // so evaluate and constraint-check each row here.
                InsertRows::Dynamic(exprs) => {
                    let schema = catalog.table(*table)?.meta.schema.clone();
                    let empty = Row::default();
                    for row_exprs in exprs {
                        let values: Vec<Value> = row_exprs
                            .iter()
                            .map(|e| e.eval(&empty))
                            .collect::<Result<_>>()?;
                        let row = schema.check_row(&Row::new(values))?;
                        insert_one(catalog, *table, &row, ctx, observer)?;
                        n += 1;
                    }
                }
            }
            Ok(ExecOutcome {
                rows: Vec::new(),
                affected: n,
                tuples: n,
            })
        }
        PlannedStatement::Update {
            table,
            sets,
            filter,
            ..
        } => {
            let entry = catalog.table(*table)?;
            let (targets, scanned) = target_rows(catalog, *table, filter.as_ref(), &ctx.snap)?;
            let mut affected = 0u64;
            for (rid, row) in targets {
                let Some((head, head_row)) =
                    resolve_for_write(entry, *table, rid, row, filter.as_ref(), ctx)?
                else {
                    continue;
                };
                let mut new_row = head_row.clone();
                for (col, expr) in sets {
                    new_row.set(*col, expr.eval(&head_row)?);
                }
                lock_constraint_keys(catalog, entry, *table, &new_row, ctx)?;
                let changes = catalog.update_row_v(*table, head, &new_row, ctx.write)?;
                let new_rid = changes
                    .iter()
                    .rev()
                    .find_map(|c| match c {
                        VersionChange::Update { new, .. } | VersionChange::Insert { new, .. } => {
                            Some(*new)
                        }
                        VersionChange::Delete { .. } => None,
                    })
                    .unwrap_or(head);
                observer.on_update(*table, head, new_rid, &head_row, &new_row, &changes)?;
                affected += 1;
            }
            Ok(ExecOutcome {
                rows: Vec::new(),
                affected,
                tuples: scanned,
            })
        }
        PlannedStatement::Delete { table, filter, .. } => {
            let entry = catalog.table(*table)?;
            let (targets, scanned) = target_rows(catalog, *table, filter.as_ref(), &ctx.snap)?;
            let mut affected = 0u64;
            for (rid, row) in targets {
                let Some((head, head_row)) =
                    resolve_for_write(entry, *table, rid, row, filter.as_ref(), ctx)?
                else {
                    continue;
                };
                let change = catalog.delete_row_v(*table, head, ctx.write)?;
                observer.on_delete(*table, head, &head_row, &change)?;
                affected += 1;
            }
            Ok(ExecOutcome {
                rows: Vec::new(),
                affected,
                tuples: scanned,
            })
        }
    }
}

/// Execute a planned statement with span collection. Queries get a full
/// per-operator span tree; writing DML gets one synthetic span covering the
/// whole statement (the write paths have no operator tree to decompose).
pub fn execute_statement_traced(
    catalog: &Catalog,
    planned: &PlannedStatement,
    clock: MonotonicClock,
) -> Result<(ExecOutcome, Vec<OperatorSpan>)> {
    execute_statement_traced_ctx(catalog, planned, clock, &DmlCtx::direct(), &NoopObserver)
}

/// [`execute_statement_traced`] under an explicit [`DmlCtx`] with a
/// [`DmlObserver`] receiving every row mutation.
pub fn execute_statement_traced_ctx(
    catalog: &Catalog,
    planned: &PlannedStatement,
    clock: MonotonicClock,
    ctx: &DmlCtx<'_>,
    observer: &dyn DmlObserver,
) -> Result<(ExecOutcome, Vec<OperatorSpan>)> {
    if let PlannedStatement::Query(q) = planned {
        let (QueryResult { rows, tuples }, spans) =
            execute_plan_traced_snapshot(catalog, &q.root, clock, &ctx.snap)?;
        return Ok((
            ExecOutcome {
                affected: 0,
                tuples: tuples + rows.len() as u64,
                rows,
            },
            spans,
        ));
    }
    let (op, table) = match planned {
        PlannedStatement::Query(_) => unreachable!(),
        PlannedStatement::Insert { table, .. } => ("Insert", *table),
        PlannedStatement::Update { table, .. } => ("Update", *table),
        PlannedStatement::Delete { table, .. } => ("Delete", *table),
    };
    let detail = match catalog.table(table) {
        Ok(entry) => format!(" on {}", entry.meta.name),
        Err(_) => String::new(),
    };
    let est = planned.estimated_cost();
    let io_before = catalog.pool().io_stats().total();
    let start_ns = clock.now_nanos();
    let outcome = execute_statement_ctx(catalog, planned, ctx, observer)?;
    let elapsed_ns = clock.now_nanos().saturating_sub(start_ns);
    let pages = catalog.pool().io_stats().total().saturating_sub(io_before);
    let span = OperatorSpan {
        op_id: 0,
        parent: None,
        depth: 0,
        op: op.to_string(),
        detail,
        est_rows: est.cpu,
        est_cost: est.total(),
        rows_in: 0,
        rows_out: outcome.affected,
        tuples: outcome.tuples,
        pages,
        elapsed_ns,
    };
    Ok((outcome, vec![span]))
}

/// Insert one row through the full MVCC write path: constraint-key row
/// locks, a versioned catalog insert, and the observer callback. Shared by
/// the INSERT statement path and the engine's parse-free bulk-load entry.
pub fn insert_one(
    catalog: &Catalog,
    table: TableId,
    row: &Row,
    ctx: &DmlCtx<'_>,
    observer: &dyn DmlObserver,
) -> Result<RowId> {
    let entry = catalog.table(table)?;
    lock_constraint_keys(catalog, entry, table, row, ctx)?;
    let change = catalog.insert_row_v(table, row, ctx.write)?;
    let VersionChange::Insert { new, .. } = &change else {
        return Err(Error::execution("insert produced a non-insert change"));
    };
    observer.on_insert(table, *new, row, &change)?;
    Ok(*new)
}

/// Serialise check-then-act constraint enforcement across writers: take a
/// row-exclusive lock on a hash of each key the statement is about to claim
/// (the primary key, and every unique secondary index value). Two inserts
/// racing on the same key collide on the lock instead of both passing the
/// duplicate check. Hash collisions with real chain-root lock keys only
/// over-serialise; they cannot break correctness.
fn lock_constraint_keys(
    catalog: &Catalog,
    entry: &TableEntry,
    table: TableId,
    row: &Row,
    ctx: &DmlCtx<'_>,
) -> Result<()> {
    let Some((mgr, txn)) = ctx.locks else {
        return Ok(());
    };
    let row = entry.meta.schema.check_row(row)?;
    if entry.primary.is_some() {
        let key = ingot_storage::encode_key(&entry.pk_values(&row));
        mgr.lock(
            txn,
            Resource::Row(table, fnv1a64(&key)),
            LockMode::Exclusive,
        )?;
    }
    for idx in catalog.indexes_of(table) {
        if idx.meta.unique && !idx.meta.is_virtual {
            let vals: Vec<Value> = idx
                .meta
                .columns
                .iter()
                .map(|&c| row.get(c).clone())
                .collect();
            let mut buf = idx.meta.id.raw().to_le_bytes().to_vec();
            buf.extend_from_slice(&ingot_storage::encode_key(&vals));
            mgr.lock(
                txn,
                Resource::Row(table, fnv1a64(&buf)),
                LockMode::Exclusive,
            )?;
        }
    }
    Ok(())
}

/// Lock a target's chain root and re-resolve the write position at the
/// chain head. Returns `None` when the target should be skipped (vanished
/// or no longer matching under retargeting), the head `(RowId, Row)` to
/// supersede otherwise.
fn resolve_for_write(
    entry: &TableEntry,
    table: TableId,
    visible: RowId,
    visible_row: Row,
    filter: Option<&PhysExpr>,
    ctx: &DmlCtx<'_>,
) -> Result<Option<(RowId, Row)>> {
    let meta = entry.heap.meta(visible)?;
    if let Some((mgr, txn)) = ctx.locks {
        mgr.lock(
            txn,
            Resource::Row(table, meta.root_for(visible)),
            LockMode::Exclusive,
        )?;
    }
    // The row lock serialises writers on this chain, so the head is stable
    // from here until our own write lands. The pre-lock `meta` may be stale
    // (a writer can supersede `visible` while we wait for the lock), so the
    // chain walk re-reads it under the lock.
    let mut head = visible;
    let mut hmeta = entry.heap.meta(visible)?;
    while hmeta.next != TS_INF {
        head = RowId::unpack(hmeta.next);
        hmeta = entry.heap.meta(head)?;
    }
    if hmeta.end != TS_INF {
        // Delete-marked (or committed-dead) head: the row vanished after our
        // snapshot. Own deletes were already invisible at target resolution.
        let own_mark = matches!(ctx.write, WriteAs::Txn(t)
            if is_txn_mark(hmeta.end) && mark_owner(hmeta.end) == t);
        if ctx.retarget || own_mark {
            return Ok(None);
        }
        return Err(Error::write_conflict(format!(
            "row in '{}' was deleted after this snapshot",
            entry.meta.name
        )));
    }
    if head == visible {
        return Ok(Some((head, visible_row)));
    }
    // The chain grew past our snapshot: first committer wins for explicit
    // transactions; auto-commit retargets onto the new head.
    if !ctx.retarget {
        return Err(Error::write_conflict(format!(
            "row in '{}' was changed after this snapshot",
            entry.meta.name
        )));
    }
    let (_, head_row) = entry.heap.get_version(head)?;
    if let Some(f) = filter {
        if !f.eval_predicate(&head_row)? {
            return Ok(None);
        }
    }
    Ok(Some((head, head_row)))
}

/// Resolve the `(RowId, Row)` targets of an UPDATE/DELETE under `snap`,
/// returning also the number of tuples inspected. The returned row ids are
/// *visible version* ids; [`resolve_for_write`] maps them to chain heads
/// under the row lock.
fn target_rows(
    catalog: &Catalog,
    table: TableId,
    filter: Option<&PhysExpr>,
    snap: &Snapshot,
) -> Result<(Vec<(RowId, Row)>, u64)> {
    let entry = catalog.table(table)?;
    let mut scanned = 0u64;

    if let Some(f) = filter {
        let eqs = equalities(f);
        // Path 1: full primary key on a BTree table.
        if entry.primary.is_some() && !entry.meta.primary_key.is_empty() {
            let key: Vec<Value> = entry
                .meta
                .primary_key
                .iter()
                .filter_map(|c| eqs.iter().find(|(col, _)| col == c).map(|(_, v)| v.clone()))
                .collect();
            if key.len() == entry.meta.primary_key.len() {
                let mut out = Vec::new();
                if let Some(head) = entry.pk_lookup(&key)? {
                    scanned += 1;
                    if let Some((rid, row)) = entry.fetch_visible(head, snap)? {
                        if f.eval_predicate(&row)? {
                            out.push((rid, row));
                        }
                    }
                }
                return Ok((out, scanned));
            }
        }
        // Path 2: secondary index with a leading-column equality.
        for idx in catalog.indexes_of(table) {
            if idx.meta.is_virtual {
                continue;
            }
            let Some(lead) = idx.meta.columns.first() else {
                continue;
            };
            if let Some((_, v)) = eqs.iter().find(|(c, _)| c == lead) {
                let rids = idx.probe_eq(std::slice::from_ref(v))?;
                let mut out = Vec::new();
                for rid in rids {
                    scanned += 1;
                    if let Some(row) = entry.version_visible(rid, snap)? {
                        if f.eval_predicate(&row)? {
                            out.push((rid, row));
                        }
                    }
                }
                return Ok((out, scanned));
            }
        }
    }

    // Path 3: full scan.
    let mut out = Vec::new();
    for item in entry.scan_visible(snap) {
        let (rid, row) = item?;
        scanned += 1;
        let keep = match filter {
            Some(f) => f.eval_predicate(&row)?,
            None => true,
        };
        if keep {
            out.push((rid, row));
        }
    }
    Ok((out, scanned))
}

/// Extract `(column, literal)` equality pairs from a conjunctive filter.
fn equalities(f: &PhysExpr) -> Vec<(usize, Value)> {
    let mut out = Vec::new();
    fn walk(e: &PhysExpr, out: &mut Vec<(usize, Value)>) {
        match e {
            PhysExpr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                walk(left, out);
                walk(right, out);
            }
            PhysExpr::Binary {
                op: BinOp::Eq,
                left,
                right,
            } => match (&**left, &**right) {
                (PhysExpr::Col(c), PhysExpr::Literal(v))
                | (PhysExpr::Literal(v), PhysExpr::Col(c)) => out.push((*c, v.clone())),
                _ => {}
            },
            _ => {}
        }
    }
    walk(f, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_catalog::StorageStructure;
    use ingot_common::{Column, DataType, EngineConfig, Schema, SimClock};
    use ingot_planner::{optimize, Binder, OptimizerOptions};
    use ingot_sql::parse_statement;
    use ingot_storage::StorageEngine;
    use std::sync::Arc;

    fn setup() -> Catalog {
        let cfg = EngineConfig::default();
        let storage = StorageEngine::in_memory(&cfg, SimClock::new());
        let mut c = Catalog::new(Arc::clone(storage.pool()), 4);
        c.create_table(
            "t",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("v", DataType::Int),
            ]),
            vec![0],
        )
        .unwrap();
        c
    }

    fn plan(c: &Catalog, sql: &str) -> PlannedStatement {
        let (bound, _) = Binder::new(c).bind(&parse_statement(sql).unwrap()).unwrap();
        optimize(c, &bound, OptimizerOptions::default()).unwrap()
    }

    fn exec(c: &mut Catalog, sql: &str) -> ExecOutcome {
        let planned = plan(c, sql);
        execute_statement(c, &planned).unwrap()
    }

    #[test]
    fn insert_update_delete_roundtrip() {
        let mut c = setup();
        let out = exec(&mut c, "insert into t values (1, 10), (2, 20), (3, 30)");
        assert_eq!(out.affected, 3);
        let out = exec(&mut c, "update t set v = v + 5 where id = 2");
        assert_eq!(out.affected, 1);
        let r = exec(&mut c, "select v from t where id = 2");
        assert_eq!(r.rows[0].get(0), &Value::Int(25));
        let out = exec(&mut c, "delete from t where v > 20");
        assert_eq!(out.affected, 2); // 25 and 30
        let r = exec(&mut c, "select count(*) from t");
        assert_eq!(r.rows[0].get(0), &Value::Int(1));
    }

    #[test]
    fn update_via_pk_lookup_scans_one_row() {
        let mut c = setup();
        for i in 0..500 {
            exec(&mut c, &format!("insert into t values ({i}, {})", i * 2));
        }
        let t = c.resolve_table("t").unwrap();
        c.modify_storage(t, StorageStructure::BTree).unwrap();
        let out = exec(&mut c, "update t set v = 0 where id = 250");
        assert_eq!(out.affected, 1);
        assert_eq!(out.tuples, 1, "pk path must not scan the table");
    }

    #[test]
    fn delete_via_secondary_index() {
        let mut c = setup();
        for i in 0..100 {
            exec(&mut c, &format!("insert into t values ({i}, {})", i % 10));
        }
        let t = c.resolve_table("t").unwrap();
        c.create_index("t_v", t, vec![1], false).unwrap();
        let out = exec(&mut c, "delete from t where v = 3");
        assert_eq!(out.affected, 10);
        assert!(out.tuples <= 10, "index path must not scan the table");
        let r = exec(&mut c, "select count(*) from t where v = 3");
        assert_eq!(r.rows[0].get(0), &Value::Int(0));
    }

    #[test]
    fn update_that_moves_pk() {
        let mut c = setup();
        exec(&mut c, "insert into t values (1, 10)");
        let t = c.resolve_table("t").unwrap();
        c.modify_storage(t, StorageStructure::BTree).unwrap();
        let out = exec(&mut c, "update t set id = 99 where id = 1");
        assert_eq!(out.affected, 1);
        let r = exec(&mut c, "select v from t where id = 99");
        assert_eq!(r.rows.len(), 1);
        let r = exec(&mut c, "select v from t where id = 1");
        assert!(r.rows.is_empty());
    }

    #[test]
    fn txn_writes_are_private_until_stamped() {
        let mut c = setup();
        exec(&mut c, "insert into t values (1, 10)");
        let txn = TxnId(3);
        let ctx = DmlCtx {
            snap: Snapshot { ts: 5, txn },
            write: WriteAs::Txn(txn),
            locks: None,
            retarget: false,
        };
        let planned = plan(&c, "update t set v = 99 where id = 1");
        let out = execute_statement_ctx(&c, &planned, &ctx, &NoopObserver).unwrap();
        assert_eq!(out.affected, 1);

        // A foreign snapshot still reads the original value...
        let select = plan(&c, "select v from t where id = 1");
        let foreign = DmlCtx {
            snap: Snapshot {
                ts: 5,
                txn: TxnId(8),
            },
            ..DmlCtx::direct()
        };
        let r = execute_statement_ctx(&c, &select, &foreign, &NoopObserver).unwrap();
        assert_eq!(r.rows[0].get(0), &Value::Int(10));
        // ...while the writer sees its own uncommitted version.
        let own = DmlCtx {
            snap: Snapshot { ts: 5, txn },
            ..DmlCtx::direct()
        };
        let r = execute_statement_ctx(&c, &select, &own, &NoopObserver).unwrap();
        assert_eq!(r.rows[0].get(0), &Value::Int(99));
    }

    #[test]
    fn stale_snapshot_write_conflicts_without_retarget() {
        let mut c = setup();
        exec(&mut c, "insert into t values (1, 10)");
        // A commits an update at ts 4.
        let upd = plan(&c, "update t set v = 20 where id = 1");
        let a = DmlCtx {
            snap: Snapshot::latest(),
            write: WriteAs::Committed(4),
            locks: None,
            retarget: false,
        };
        execute_statement_ctx(&c, &upd, &a, &NoopObserver).unwrap();
        // B, whose snapshot predates A's commit, must lose.
        let upd_b = plan(&c, "update t set v = 30 where id = 1");
        let b = DmlCtx {
            snap: Snapshot {
                ts: 3,
                txn: TxnId(7),
            },
            write: WriteAs::Txn(TxnId(7)),
            locks: None,
            retarget: false,
        };
        let err = execute_statement_ctx(&c, &upd_b, &b, &NoopObserver).unwrap_err();
        assert!(matches!(err, Error::WriteConflict(_)), "got {err:?}");
        // With retargeting (auto-commit) the same statement lands on the
        // new head instead.
        let b_auto = DmlCtx {
            retarget: true,
            ..b
        };
        let out = execute_statement_ctx(&c, &upd_b, &b_auto, &NoopObserver).unwrap();
        assert_eq!(out.affected, 1);
    }
}
