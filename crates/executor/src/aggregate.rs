//! Hash aggregation.

use std::collections::{HashMap, HashSet};

use ingot_common::{Error, Result, Row, Value};
use ingot_planner::{AggFunc, AggSpec, PhysExpr};

use crate::exec::normalize_key;

/// Accumulator for one aggregate in one group.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Sum {
        int: i64,
        float: f64,
        any_float: bool,
        seen: bool,
    },
    Avg {
        sum: f64,
        n: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                int: 0,
                float: 0.0,
                any_float: false,
                seen: false,
            },
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(n) => {
                // COUNT(*) gets None (count every row); COUNT(e) skips NULL.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            AggState::Sum {
                int,
                float,
                any_float,
                seen,
            } => {
                if let Some(val) = v {
                    match val {
                        Value::Null => {}
                        Value::Int(i) => {
                            *int += i;
                            *float += *i as f64;
                            *seen = true;
                        }
                        Value::Float(f) => {
                            *float += f;
                            *any_float = true;
                            *seen = true;
                        }
                        other => {
                            return Err(Error::type_error(format!("SUM of non-number {other}")))
                        }
                    }
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(val) = v {
                    if let Some(f) = val.as_f64() {
                        *sum += f;
                        *n += 1;
                    } else if !val.is_null() {
                        return Err(Error::type_error(format!("AVG of non-number {val}")));
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(val) = v {
                    if !val.is_null() && cur.as_ref().is_none_or(|c| val < c) {
                        *cur = Some(val.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(val) = v {
                    if !val.is_null() && cur.as_ref().is_none_or(|c| val > c) {
                        *cur = Some(val.clone());
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum {
                int,
                float,
                any_float,
                seen,
            } => {
                if !seen {
                    Value::Null
                } else if any_float {
                    Value::Float(float)
                } else {
                    Value::Int(int)
                }
            }
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

struct Group {
    states: Vec<AggState>,
    distinct_seen: Vec<Option<HashSet<Value>>>,
}

/// Run hash aggregation. Output rows: `[group keys ‖ aggregate values]`,
/// filtered by HAVING (which is bound over that output layout).
pub fn run_aggregate(
    rows: &[Row],
    group_by: &[PhysExpr],
    aggs: &[AggSpec],
    having: Option<&PhysExpr>,
) -> Result<Vec<Row>> {
    let mut groups: HashMap<Vec<Value>, Group> = HashMap::new();
    // A global aggregate (no GROUP BY) over zero rows must still produce one
    // output group.
    if group_by.is_empty() {
        groups.insert(Vec::new(), new_group(aggs));
    }
    for row in rows {
        let key: Vec<Value> = group_by
            .iter()
            .map(|e| e.eval(row).map(|v| normalize_key(&v)))
            .collect::<Result<_>>()?;
        let group = groups.entry(key).or_insert_with(|| new_group(aggs));
        let slots = group.states.iter_mut().zip(group.distinct_seen.iter_mut());
        for (spec, (state, seen)) in aggs.iter().zip(slots) {
            let input = spec.input.as_ref().map(|e| e.eval(row)).transpose()?;
            if spec.distinct {
                if let Some(v) = &input {
                    if v.is_null() {
                        continue;
                    }
                    // `new_group` allocates the set iff the spec is distinct,
                    // so the slot is always `Some` on this branch.
                    if let Some(set) = seen.as_mut() {
                        if !set.insert(normalize_key(v)) {
                            continue;
                        }
                    }
                }
            }
            state.update(input.as_ref())?;
        }
    }
    let mut out = Vec::with_capacity(groups.len());
    for (key, group) in groups {
        let mut vals = key;
        for st in group.states {
            vals.push(st.finish());
        }
        let row = Row::new(vals);
        if let Some(h) = having {
            if !h.eval_predicate(&row)? {
                continue;
            }
        }
        out.push(row);
    }
    Ok(out)
}

fn new_group(aggs: &[AggSpec]) -> Group {
    Group {
        states: aggs.iter().map(|a| AggState::new(a.func)).collect(),
        distinct_seen: aggs.iter().map(|a| a.distinct.then(HashSet::new)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        // (grp, val)
        [(1, 10), (1, 20), (2, 5), (2, 5), (2, 30)]
            .into_iter()
            .map(|(g, v)| Row::new(vec![Value::Int(g), Value::Int(v)]))
            .collect()
    }

    fn spec(func: AggFunc, col: Option<usize>, distinct: bool) -> AggSpec {
        AggSpec {
            func,
            input: col.map(PhysExpr::Col),
            distinct,
        }
    }

    fn by_group(mut out: Vec<Row>) -> Vec<Row> {
        out.sort();
        out
    }

    #[test]
    fn grouped_count_sum_avg() {
        let out = by_group(
            run_aggregate(
                &rows(),
                &[PhysExpr::Col(0)],
                &[
                    spec(AggFunc::Count, None, false),
                    spec(AggFunc::Sum, Some(1), false),
                    spec(AggFunc::Avg, Some(1), false),
                ],
                None,
            )
            .unwrap(),
        );
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0].values()[..3],
            [Value::Int(1), Value::Int(2), Value::Int(30)]
        );
        assert_eq!(out[1].get(2), &Value::Int(40));
        assert_eq!(out[1].get(3), &Value::Float(40.0 / 3.0));
    }

    #[test]
    fn min_max_and_distinct_count() {
        let out = by_group(
            run_aggregate(
                &rows(),
                &[PhysExpr::Col(0)],
                &[
                    spec(AggFunc::Min, Some(1), false),
                    spec(AggFunc::Max, Some(1), false),
                    spec(AggFunc::Count, Some(1), true),
                ],
                None,
            )
            .unwrap(),
        );
        // Group 2: min 5, max 30, distinct {5, 30} → 2.
        assert_eq!(out[1].get(1), &Value::Int(5));
        assert_eq!(out[1].get(2), &Value::Int(30));
        assert_eq!(out[1].get(3), &Value::Int(2));
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let out = run_aggregate(
            &[],
            &[],
            &[
                spec(AggFunc::Count, None, false),
                spec(AggFunc::Sum, Some(0), false),
                spec(AggFunc::Avg, Some(0), false),
                spec(AggFunc::Min, Some(0), false),
            ],
            None,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0), &Value::Int(0));
        assert_eq!(out[0].get(1), &Value::Null);
        assert_eq!(out[0].get(2), &Value::Null);
        assert_eq!(out[0].get(3), &Value::Null);
    }

    #[test]
    fn nulls_are_skipped_by_aggregates() {
        let data = vec![
            Row::new(vec![Value::Int(1), Value::Null]),
            Row::new(vec![Value::Int(1), Value::Int(7)]),
        ];
        let out = run_aggregate(
            &data,
            &[PhysExpr::Col(0)],
            &[
                spec(AggFunc::Count, Some(1), false),
                spec(AggFunc::Count, None, false),
                spec(AggFunc::Avg, Some(1), false),
            ],
            None,
        )
        .unwrap();
        assert_eq!(out[0].get(1), &Value::Int(1)); // count(val) skips null
        assert_eq!(out[0].get(2), &Value::Int(2)); // count(*) does not
        assert_eq!(out[0].get(3), &Value::Float(7.0));
    }

    #[test]
    fn having_filters_groups() {
        // HAVING count(*) > 2 keeps only group 2.
        let having = PhysExpr::Binary {
            op: ingot_sql::BinOp::Gt,
            left: Box::new(PhysExpr::Col(1)),
            right: Box::new(PhysExpr::Literal(Value::Int(2))),
        };
        let out = run_aggregate(
            &rows(),
            &[PhysExpr::Col(0)],
            &[spec(AggFunc::Count, None, false)],
            Some(&having),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0), &Value::Int(2));
    }

    #[test]
    fn sum_promotes_to_float() {
        let data = vec![
            Row::new(vec![Value::Int(1)]),
            Row::new(vec![Value::Float(2.5)]),
        ];
        let out = run_aggregate(&data, &[], &[spec(AggFunc::Sum, Some(0), false)], None).unwrap();
        assert_eq!(out[0].get(0), &Value::Float(3.5));
    }
}
