#![forbid(unsafe_code)]
//! The executor: interprets physical plans and accounts actual costs.
//!
//! Execution counts every tuple it touches; the engine wraps each statement
//! with a buffer-pool I/O snapshot, so together they yield the *actual* CPU
//! and disk-I/O cost that the monitor's execution sensor records (Fig 2,
//! "Actual Costs") — the quantity the analyzer compares with the optimizer's
//! estimate to detect stale statistics.

pub mod aggregate;
pub mod dml;
pub mod exec;

pub use dml::{
    execute_statement, execute_statement_ctx, execute_statement_observed, execute_statement_traced,
    execute_statement_traced_ctx, DmlCtx, DmlObserver, ExecOutcome, NoopObserver,
};
pub use exec::{
    execute_plan, execute_plan_snapshot, execute_plan_traced, execute_plan_traced_snapshot,
    QueryResult,
};
