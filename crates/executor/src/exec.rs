//! Plan interpretation.
//!
//! A materialising executor: each operator consumes its children's row
//! vectors and produces its own. At the scale the benchmarks run (and with
//! `LIMIT` applied eagerly where safe) this keeps the code obviously correct;
//! the per-tuple work is still counted exactly, which is what the actual-cost
//! sensor needs.

use std::collections::HashMap;

use ingot_catalog::Catalog;
use ingot_common::{Error, MonotonicClock, Result, Row, Snapshot, Value};
use ingot_planner::{PhysPlan, PlanNode, ProbeSource, ProbeSpec};
use ingot_trace::{OperatorSpan, SpanCollector};

use crate::aggregate::run_aggregate;

/// The result of a query plan.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output rows.
    pub rows: Vec<Row>,
    /// Tuples processed across all operators (actual CPU cost proxy).
    pub tuples: u64,
}

/// Execute a query plan against the catalog at the latest snapshot.
pub fn execute_plan(catalog: &Catalog, plan: &PlanNode) -> Result<QueryResult> {
    execute_plan_snapshot(catalog, plan, &Snapshot::latest())
}

/// Execute a query plan with every base-table access filtered through
/// `snap`: sequential scans and index probes evaluate per-version
/// visibility, clustered lookups walk version chains backwards from the
/// head. Readers take no locks at all.
pub fn execute_plan_snapshot(
    catalog: &Catalog,
    plan: &PlanNode,
    snap: &Snapshot,
) -> Result<QueryResult> {
    let mut tuples = 0u64;
    let rows = run(catalog, plan, snap, &mut tuples, None)?;
    Ok(QueryResult { rows, tuples })
}

/// Execute a query plan with per-operator span collection: every plan node
/// gets an [`OperatorSpan`] carrying rows-out, tuple work, pages touched and
/// elapsed time next to the optimizer's estimates for the same node.
pub fn execute_plan_traced(
    catalog: &Catalog,
    plan: &PlanNode,
    clock: MonotonicClock,
) -> Result<(QueryResult, Vec<OperatorSpan>)> {
    execute_plan_traced_snapshot(catalog, plan, clock, &Snapshot::latest())
}

/// [`execute_plan_traced`] against an explicit snapshot.
pub fn execute_plan_traced_snapshot(
    catalog: &Catalog,
    plan: &PlanNode,
    clock: MonotonicClock,
    snap: &Snapshot,
) -> Result<(QueryResult, Vec<OperatorSpan>)> {
    let mut collector = SpanCollector::new(clock);
    let mut tuples = 0u64;
    let rows = run(catalog, plan, snap, &mut tuples, Some(&mut collector))?;
    Ok((QueryResult { rows, tuples }, collector.finish()))
}

/// Normalise a hash/group key so values that compare equal hash equally
/// (Int 2 vs Float 2.0).
pub fn normalize_key(v: &Value) -> Value {
    match v {
        Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => Value::Int(*f as i64),
        other => other.clone(),
    }
}

/// Run one node, opening/closing a span around it when tracing. The span's
/// tuple and page counts are measured inclusively (subtree totals);
/// `SpanCollector::finish` converts tuples to exclusive self-work.
fn run(
    catalog: &Catalog,
    node: &PlanNode,
    snap: &Snapshot,
    tuples: &mut u64,
    trace: Option<&mut SpanCollector>,
) -> Result<Vec<Row>> {
    match trace {
        None => run_node(catalog, node, snap, tuples, None),
        Some(collector) => {
            let io_before = catalog.pool().io_stats().total();
            let tuples_before = *tuples;
            let frame = collector.enter(
                node.op_name(),
                node.op_detail(),
                node.est_rows,
                node.est_cost.total(),
            );
            let rows = run_node(catalog, node, snap, tuples, Some(collector))?;
            let pages = catalog.pool().io_stats().total().saturating_sub(io_before);
            collector.exit(frame, rows.len() as u64, *tuples - tuples_before, pages);
            Ok(rows)
        }
    }
}

fn run_node(
    catalog: &Catalog,
    node: &PlanNode,
    snap: &Snapshot,
    tuples: &mut u64,
    mut trace: Option<&mut SpanCollector>,
) -> Result<Vec<Row>> {
    match &node.op {
        PhysPlan::DualScan => Ok(vec![Row::default()]),

        PhysPlan::VirtualScan { table, filter, .. } => {
            let def = catalog
                .virtual_table(*table)
                .ok_or_else(|| Error::execution(format!("no virtual table {table}")))?;
            let mut out = Vec::new();
            for row in (def.provider)() {
                *tuples += 1;
                if eval_filter(filter, &row)? {
                    out.push(row);
                }
            }
            Ok(out)
        }

        PhysPlan::SeqScan { table, filter, .. } => {
            let entry = catalog.table(*table)?;
            let mut out = Vec::new();
            for item in entry.scan_visible(snap) {
                let (_, row) = item?;
                *tuples += 1;
                if eval_filter(filter, &row)? {
                    out.push(row);
                }
            }
            Ok(out)
        }

        PhysPlan::IndexScan {
            table,
            index,
            probe,
            filter,
            ..
        } => {
            let entry = catalog.table(*table)?;
            let idx = catalog.index(*index)?;
            // Probe keys are row-free expressions (literals after parameter
            // substitution); evaluate them against the empty row.
            let empty = Row::default();
            let rids = match probe {
                ProbeSpec::Eq(keys) => {
                    let values: Vec<Value> =
                        keys.iter().map(|e| e.eval(&empty)).collect::<Result<_>>()?;
                    idx.probe_eq(&values)?
                }
                ProbeSpec::Range { lo, hi } => {
                    let lo = lo.as_ref().map(|e| e.eval(&empty)).transpose()?;
                    let hi = hi.as_ref().map(|e| e.eval(&empty)).transpose()?;
                    idx.probe_range(lo.as_ref(), hi.as_ref())?
                }
            };
            // Secondary indexes hold one entry per version: each rid is an
            // exact physical version, filtered for visibility with no walk.
            let mut out = Vec::with_capacity(rids.len());
            for rid in rids {
                *tuples += 1;
                if let Some(row) = entry.version_visible(rid, snap)? {
                    if eval_filter(filter, &row)? {
                        out.push(row);
                    }
                }
            }
            Ok(out)
        }

        PhysPlan::PkLookup {
            table, key, filter, ..
        } => {
            let entry = catalog.table(*table)?;
            let empty = Row::default();
            let key: Vec<Value> = key.iter().map(|e| e.eval(&empty)).collect::<Result<_>>()?;
            let rids = if key.len() == entry.meta.primary_key.len() {
                entry.pk_lookup(&key)?.into_iter().collect()
            } else {
                entry.pk_prefix_probe(&key)?
            };
            // The clustered tree points at chain heads; resolve each to the
            // version visible under the snapshot.
            let mut out = Vec::with_capacity(rids.len());
            for rid in rids {
                *tuples += 1;
                if let Some((_, row)) = entry.fetch_visible(rid, snap)? {
                    if eval_filter(filter, &row)? {
                        out.push(row);
                    }
                }
            }
            Ok(out)
        }

        PhysPlan::ProbeJoin {
            left,
            table,
            left_key,
            source,
            filter,
            ..
        } => {
            let outer = run(catalog, left, snap, tuples, trace.as_deref_mut())?;
            let entry = catalog.table(*table)?;
            let mut out = Vec::new();
            for lrow in &outer {
                let key = normalize_key(lrow.get(*left_key));
                if key.is_null() {
                    continue; // NULL keys never join
                }
                match source {
                    ProbeSource::PrimaryTree => {
                        for rid in entry.pk_prefix_probe(std::slice::from_ref(&key))? {
                            *tuples += 1;
                            if let Some((_, rrow)) = entry.fetch_visible(rid, snap)? {
                                let joined = lrow.concat(&rrow);
                                if eval_filter(filter, &joined)? {
                                    out.push(joined);
                                }
                            }
                        }
                    }
                    ProbeSource::Index(id, _) => {
                        for rid in catalog.index(*id)?.probe_eq(std::slice::from_ref(&key))? {
                            *tuples += 1;
                            if let Some(rrow) = entry.version_visible(rid, snap)? {
                                let joined = lrow.concat(&rrow);
                                if eval_filter(filter, &joined)? {
                                    out.push(joined);
                                }
                            }
                        }
                    }
                }
            }
            Ok(out)
        }

        PhysPlan::NestedLoopJoin { left, right, on } => {
            let l = run(catalog, left, snap, tuples, trace.as_deref_mut())?;
            let r = run(catalog, right, snap, tuples, trace.as_deref_mut())?;
            let mut out = Vec::new();
            for lr in &l {
                for rr in &r {
                    *tuples += 1;
                    let joined = lr.concat(rr);
                    if eval_filter(on, &joined)? {
                        out.push(joined);
                    }
                }
            }
            Ok(out)
        }

        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            filter,
        } => {
            let l = run(catalog, left, snap, tuples, trace.as_deref_mut())?;
            let r = run(catalog, right, snap, tuples, trace.as_deref_mut())?;
            // Build on the left, probe with the right.
            let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::with_capacity(l.len());
            for row in &l {
                *tuples += 1;
                let key: Vec<Value> = left_keys
                    .iter()
                    .map(|&k| normalize_key(row.get(k)))
                    .collect();
                if key.iter().any(Value::is_null) {
                    continue; // NULL keys never join
                }
                table.entry(key).or_default().push(row);
            }
            let mut out = Vec::new();
            for rr in &r {
                *tuples += 1;
                let key: Vec<Value> = right_keys
                    .iter()
                    .map(|&k| normalize_key(rr.get(k)))
                    .collect();
                if key.iter().any(Value::is_null) {
                    continue;
                }
                if let Some(matches) = table.get(&key) {
                    for lr in matches {
                        *tuples += 1;
                        let joined = lr.concat(rr);
                        if eval_filter(filter, &joined)? {
                            out.push(joined);
                        }
                    }
                }
            }
            Ok(out)
        }

        PhysPlan::Filter { input, pred } => {
            let rows = run(catalog, input, snap, tuples, trace.as_deref_mut())?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                *tuples += 1;
                if pred.eval_predicate(&row)? {
                    out.push(row);
                }
            }
            Ok(out)
        }

        PhysPlan::Project { input, exprs } => {
            let rows = run(catalog, input, snap, tuples, trace.as_deref_mut())?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                *tuples += 1;
                let mut vals = Vec::with_capacity(exprs.len());
                for e in exprs {
                    vals.push(e.eval(&row)?);
                }
                out.push(Row::new(vals));
            }
            Ok(out)
        }

        PhysPlan::Aggregate {
            input,
            group_by,
            aggs,
            having,
        } => {
            let rows = run(catalog, input, snap, tuples, trace.as_deref_mut())?;
            *tuples += rows.len() as u64;
            run_aggregate(&rows, group_by, aggs, having.as_ref())
        }

        PhysPlan::Sort { input, keys } => {
            let mut rows = run(catalog, input, snap, tuples, trace.as_deref_mut())?;
            *tuples += rows.len() as u64;
            rows.sort_by(|a, b| {
                for &(k, desc) in keys {
                    let ord = a.get(k).cmp(b.get(k));
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                // Whole-row tiebreak: under-specified ORDER BY still yields
                // a deterministic total order (reproducible LIMIT results).
                a.cmp(b)
            });
            Ok(rows)
        }

        PhysPlan::Distinct { input } => {
            let rows = run(catalog, input, snap, tuples, trace.as_deref_mut())?;
            let mut seen = std::collections::HashSet::with_capacity(rows.len());
            let mut out = Vec::new();
            for row in rows {
                *tuples += 1;
                let key: Vec<Value> = row.values().iter().map(normalize_key).collect();
                if seen.insert(key) {
                    out.push(row);
                }
            }
            Ok(out)
        }

        PhysPlan::Limit {
            input,
            limit,
            offset,
        } => {
            let rows = run(catalog, input, snap, tuples, trace)?;
            let start = (*offset as usize).min(rows.len());
            let end = match limit {
                Some(l) => (start + *l as usize).min(rows.len()),
                None => rows.len(),
            };
            Ok(rows[start..end].to_vec())
        }
    }
}

fn eval_filter(filter: &Option<ingot_planner::PhysExpr>, row: &Row) -> Result<bool> {
    match filter {
        Some(f) => f.eval_predicate(row),
        None => Ok(true),
    }
}

/// Format rows as an aligned text table (used by examples and the analyzer's
/// textual reports).
pub fn format_rows(names: &[String], rows: &[Row]) -> String {
    let mut widths: Vec<usize> = names.iter().map(String::len).collect();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            r.values()
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let s = v.to_string();
                    if i < widths.len() {
                        widths[i] = widths[i].max(s.len());
                    }
                    s
                })
                .collect()
        })
        .collect();
    let mut out = String::new();
    let header: Vec<String> = names
        .iter()
        .enumerate()
        .map(|(i, n)| format!("{n:<w$}", w = widths.get(i).copied().unwrap_or(0)))
        .collect();
    out.push_str(&header.join(" | "));
    out.push('\n');
    out.push_str(&"-".repeat(out.len().saturating_sub(1)));
    out.push('\n');
    for row in rendered {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{s:<w$}", w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        out.push_str(&line.join(" | "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_common::{Column, DataType, EngineConfig, Schema, SimClock};
    use ingot_planner::{optimize, Binder, BoundStatement, OptimizerOptions, PlannedStatement};
    use ingot_sql::parse_statement;
    use ingot_storage::StorageEngine;
    use std::sync::Arc;

    fn setup() -> Catalog {
        let cfg = EngineConfig::default();
        let storage = StorageEngine::in_memory(&cfg, SimClock::new());
        let mut c = Catalog::new(Arc::clone(storage.pool()), 4);
        let protein = c
            .create_table(
                "protein",
                Schema::new(vec![
                    Column::not_null("nref_id", DataType::Int),
                    Column::new("name", DataType::Str),
                    Column::new("len", DataType::Int),
                ]),
                vec![0],
            )
            .unwrap();
        let organism = c
            .create_table(
                "organism",
                Schema::new(vec![
                    Column::not_null("nref_id", DataType::Int),
                    Column::new("taxon_id", DataType::Int),
                ]),
                vec![0],
            )
            .unwrap();
        for i in 0..500i64 {
            c.insert_row(
                protein,
                &Row::new(vec![
                    Value::Int(i),
                    Value::Str(format!("p{i}")),
                    Value::Int(i % 10),
                ]),
            )
            .unwrap();
            c.insert_row(organism, &Row::new(vec![Value::Int(i), Value::Int(i % 5)]))
                .unwrap();
        }
        c
    }

    fn query(c: &Catalog, sql: &str) -> QueryResult {
        let (bound, _) = Binder::new(c).bind(&parse_statement(sql).unwrap()).unwrap();
        let BoundStatement::Select(_) = &bound else {
            panic!()
        };
        let PlannedStatement::Query(q) = optimize(c, &bound, OptimizerOptions::default()).unwrap()
        else {
            panic!()
        };
        execute_plan(c, &q.root).unwrap()
    }

    #[test]
    fn point_select() {
        let c = setup();
        let r = query(&c, "select name from protein where nref_id = 42");
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].get(0), &Value::Str("p42".into()));
        assert!(r.tuples >= 500, "seq scan touches every tuple");
    }

    #[test]
    fn join_matches_fk() {
        let c = setup();
        let r = query(
            &c,
            "select p.name, o.taxon_id from protein p \
             join organism o on p.nref_id = o.nref_id where p.nref_id < 10",
        );
        assert_eq!(r.rows.len(), 10);
        for row in &r.rows {
            assert_eq!(row.len(), 2);
        }
    }

    #[test]
    fn aggregation_group_having_order() {
        let c = setup();
        let r = query(
            &c,
            "select taxon_id, count(*) as n from organism \
             group by taxon_id having count(*) > 0 order by taxon_id",
        );
        assert_eq!(r.rows.len(), 5);
        for (i, row) in r.rows.iter().enumerate() {
            assert_eq!(row.get(0), &Value::Int(i as i64));
            assert_eq!(row.get(1), &Value::Int(100));
        }
    }

    #[test]
    fn order_by_hidden_column_is_stripped() {
        let c = setup();
        let r = query(
            &c,
            "select name from protein order by len desc, nref_id limit 3",
        );
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0].len(), 1, "hidden sort column must be stripped");
        // len=9 group, smallest ids: 9, 19, 29.
        assert_eq!(r.rows[0].get(0), &Value::Str("p9".into()));
        assert_eq!(r.rows[1].get(0), &Value::Str("p19".into()));
    }

    #[test]
    fn distinct_and_limit_offset() {
        let c = setup();
        let r = query(
            &c,
            "select distinct taxon_id from organism order by taxon_id",
        );
        assert_eq!(r.rows.len(), 5);
        let r = query(
            &c,
            "select distinct taxon_id from organism order by taxon_id limit 2 offset 1",
        );
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0].get(0), &Value::Int(1));
    }

    #[test]
    fn index_scan_results_match_seq_scan() {
        let mut c = setup();
        let sql = "select name from protein where len = 3 order by name";
        let seq = query(&c, sql);
        let t = c.resolve_table("protein").unwrap();
        c.create_index("protein_len_idx", t, vec![2], false)
            .unwrap();
        c.collect_statistics(t, &[], 0).unwrap();
        let via_index = query(&c, sql);
        assert_eq!(seq.rows, via_index.rows);
    }

    #[test]
    fn tableless_and_arithmetic() {
        let c = setup();
        let r = query(&c, "select 2 + 3 * 4 as x, 'a' + 'b' as y");
        assert_eq!(r.rows[0].get(0), &Value::Int(14));
        assert_eq!(r.rows[0].get(1), &Value::Str("ab".into()));
    }

    #[test]
    fn null_keys_do_not_join() {
        let cfg = EngineConfig::default();
        let storage = StorageEngine::in_memory(&cfg, SimClock::new());
        let mut c = Catalog::new(Arc::clone(storage.pool()), 2);
        let a = c
            .create_table(
                "a",
                Schema::new(vec![Column::new("k", DataType::Int)]),
                vec![],
            )
            .unwrap();
        let b = c
            .create_table(
                "b",
                Schema::new(vec![Column::new("k", DataType::Int)]),
                vec![],
            )
            .unwrap();
        c.insert_row(a, &Row::new(vec![Value::Null])).unwrap();
        c.insert_row(a, &Row::new(vec![Value::Int(1)])).unwrap();
        c.insert_row(b, &Row::new(vec![Value::Null])).unwrap();
        c.insert_row(b, &Row::new(vec![Value::Int(1)])).unwrap();
        let r = query(&c, "select * from a join b on a.k = b.k");
        assert_eq!(r.rows.len(), 1, "NULL = NULL must not match");
    }

    #[test]
    fn count_star_on_empty_group() {
        let c = setup();
        let r = query(&c, "select count(*) from protein where nref_id = -1");
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].get(0), &Value::Int(0));
    }

    #[test]
    fn format_rows_aligns() {
        let names = vec!["id".to_owned(), "name".to_owned()];
        let rows = vec![
            Row::new(vec![Value::Int(1), Value::Str("alpha".into())]),
            Row::new(vec![Value::Int(100), Value::Str("b".into())]),
        ];
        let s = format_rows(&names, &rows);
        assert!(s.contains("id "));
        assert!(s.lines().count() == 4);
    }
}
