#![forbid(unsafe_code)]
//! Offline vendored shim for the `proptest` crate.
//!
//! The Ingot build image has no network access and no cargo registry cache, so
//! external crates are vendored as minimal local shims (see DESIGN.md §10.4).
//! This one implements the subset of proptest that Ingot's property tests
//! use: the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `boxed`, [`Just`](strategy::Just), [`prop_oneof!`], integer / float /
//! string-pattern strategies, tuple and collection strategies,
//! [`arbitrary::any`], [`sample::Index`](sample::Index), and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate that matter:
//!
//! * **No shrinking.** A failing case reports its inputs and case number but
//!   is not minimised. Reproduce by re-running the named test — generation is
//!   deterministic per test name (seeded from an FNV hash of
//!   `module_path::test_name`), so failures replay exactly.
//! * **String "regex" strategies** support the subset Ingot's tests use:
//!   literal characters, `[...]` classes with ranges, the `\PC` printable
//!   class, and `{m}` / `{m,n}` repetition.

pub mod test_runner {
    //! Configuration, error type and the deterministic RNG behind case
    //! generation.

    use std::fmt;

    /// Per-block configuration, set via `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Case count with the `PROPTEST_CASES` environment override, so
        /// torture loops can widen a block's budget without editing it.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|c| c.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single test case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold.
        Fail(String),
        /// The generated input was rejected (treated as failure here; the
        /// shim has no rejection budget).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed property with a message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected input with a message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    /// Deterministic SplitMix64 generator seeding each property run.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test's fully-qualified name.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a so the seed is stable across runs and platforms.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            // `PROPTEST_SEED` perturbs the name-stable stream so repeated
            // CI runs (the wal-torture loop) explore different cases; unset,
            // every run generates the same sequence for reproducibility.
            if let Some(seed) = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
            {
                hash ^= seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            TestRng { state: hash }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform usize in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below: zero bound");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree / shrinking; `generate`
    /// produces one concrete value per call.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Erase the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Type-erased strategy, as returned by [`Strategy::boxed`].
    pub struct BoxedStrategy<V> {
        inner: Box<dyn Strategy<Value = V>>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.generate(rng)
        }
    }

    /// Uniform choice between strategies (backs [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from a non-empty set of equally-weighted options.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "strategy: empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "strategy: empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String pattern strategy: a `&'static str` is interpreted as a small
    /// regex subset (see crate docs) producing `String`s.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }
}

pub mod string {
    //! Generator for the regex subset used by string strategies.

    use crate::test_runner::TestRng;

    struct Atom {
        charset: Vec<char>,
        min: usize,
        max: usize,
    }

    fn printable() -> Vec<char> {
        (0x20u8..=0x7E).map(char::from).collect()
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let charset = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                            for c in lo..=hi {
                                set.push(c);
                            }
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                    i += 1; // consume ']'
                    set
                }
                '\\' => {
                    assert!(
                        i + 2 < chars.len() + 1 && chars.get(i + 1) == Some(&'P'),
                        "unsupported escape in pattern {pattern:?}"
                    );
                    assert!(
                        chars.get(i + 2) == Some(&'C'),
                        "unsupported \\P class in pattern {pattern:?}"
                    );
                    i += 3;
                    printable()
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional {m} / {m,n} repetition (regex semantics: n inclusive).
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(0)),
                    None => {
                        let n = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "bad repetition bounds in pattern {pattern:?}");
            atoms.push(Atom { charset, min, max });
        }
        atoms
    }

    /// Generate one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse(pattern) {
            let n = atom.min + rng.below(atom.max - atom.min + 1);
            for _ in 0..n {
                out.push(atom.charset[rng.below(atom.charset.len())]);
            }
        }
        out
    }
}

pub mod arbitrary {
    //! The [`any`] entry point and [`Arbitrary`] impls for primitives.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Sample one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values spanning a wide magnitude range; the real crate
            // also generates NaN/infinities, which Ingot's tests never rely on.
            (rng.unit_f64() * 2.0 - 1.0) * 1.0e12
        }
    }

    /// Full-domain strategy for an [`Arbitrary`] type.
    pub struct AnyStrategy<T> {
        _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Element-count range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection: empty size range");
            SizeRange {
                min: r.start,
                max_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "collection: empty size range");
            SizeRange {
                min: *r.start(),
                max_incl: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_incl: n,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below(self.max_incl - self.min + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generate vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Duplicates don't grow the set; cap attempts so a domain
            // smaller than the target size still terminates.
            let mut attempts = 0;
            while set.len() < target && attempts < target * 10 + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Generate ordered sets of `element` values.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Index sampling, mirroring `proptest::sample`.

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An opaque index resolvable against any non-empty collection length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `len` elements (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Define property tests: each `fn name(arg in strategy, ..) { .. }` becomes
/// a deterministic multi-case test. Attributes (including `#[test]` and doc
/// comments) are emitted verbatim.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.effective_cases() {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __dbg = format!(
                    concat!("case ", "{}", $(" ", stringify!($arg), "={:?}",)*),
                    __case $(, &$arg)*
                );
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__err) = __result {
                    panic!(
                        "proptest {} failed [{}]: {}",
                        stringify!($name),
                        __dbg,
                        __err
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l != *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l != *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_their_shape() {
        let mut rng = crate::test_runner::TestRng::for_test("string_patterns");
        for _ in 0..200 {
            let ident = crate::string::generate("[a-z][a-z0-9_]{0,10}", &mut rng);
            assert!(!ident.is_empty() && ident.len() <= 11);
            assert!(ident.chars().next().unwrap().is_ascii_lowercase());
            assert!(ident
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let printable = crate::string::generate("\\PC{0,200}", &mut rng);
            assert!(printable.len() <= 200);
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)));

            let lit = crate::string::generate("[a-zA-Z0-9_%' ]{0,24}", &mut rng);
            assert!(lit.len() <= 24);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = prop_oneof![Just(1i64), 10i64..20, 100i64..200];
        let run = || {
            let mut rng = crate::test_runner::TestRng::for_test("det");
            (0..32)
                .map(|_| strat.generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro wires strategies, config and prop_assert together.
        #[test]
        fn macro_end_to_end(
            xs in prop::collection::vec(0i64..100, 1..10),
            flag in any::<bool>(),
            name in "[a-z]{1,8}",
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| (0..100).contains(&x)), "out of range: {:?}", xs);
            prop_assert_eq!(name.is_empty(), false);
            if flag {
                prop_assert_ne!(xs.len(), 0);
            }
        }

        #[test]
        fn sets_respect_target_sizes(keys in prop::collection::btree_set(0u32..5000, 1..50)) {
            prop_assert!(!keys.is_empty() && keys.len() < 50);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Attributes pass through verbatim, so a failing property can be
        /// asserted with `should_panic`.
        #[test]
        #[should_panic(expected = "proptest always_fails failed")]
        fn always_fails(x in 0i64..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
